"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` needs `wheel` to build editable
wheels with this setuptools version; `python setup.py develop` does not.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
