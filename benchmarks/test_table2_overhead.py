"""Bench: Table 2 — NUcache hardware overhead budget."""

from conftest import run_once

from repro.experiments import table2_overhead


def test_table2_overhead(benchmark):
    result = run_once(benchmark, table2_overhead.run)
    # Shape target: small single-digit percentage of LLC capacity.
    assert all(row["pct_of_llc"] < 5.0 for row in result.rows)
    print()
    print(result.to_text())
