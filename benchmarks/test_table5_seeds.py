"""Bench: Table 5 — seed sensitivity of the headline (extension)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import table5_seeds


def test_table5_seeds(benchmark):
    result = run_once(
        benchmark, table5_seeds.run,
        accesses=BENCH_ACCESSES, num_seeds=3,
    )
    summary = result.summary
    # Shape targets: positive under every seed, modest spread.
    assert summary["min"] > 0.0
    assert summary["std"] < max(0.05, 0.5 * summary["mean"])
    print()
    print(result.to_text())
