"""Bench: Fig. 8 — NUcache vs UCP / PIPP / TADIP-F."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig8_vs_partitioning


def test_fig8_vs_partitioning(benchmark):
    result = run_once(benchmark, fig8_vs_partitioning.run, accesses=BENCH_ACCESSES)
    summary = result.summary
    # Shape target: NUcache's average improvement tops every other
    # scheme's (small tolerance for scaled-trace noise).
    nucache = summary["gmean_nucache_vs_lru"]
    assert nucache > 0.05
    for policy in ("ucp", "pipp", "tadip"):
        assert nucache >= summary[f"gmean_{policy}_vs_lru"] - 0.01, policy
    print()
    print(result.to_text())
