"""Bench: Fig. 10 — hardware-realism ablations (extension)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig10_hardware_ablations


def test_fig10_hardware_ablations(benchmark):
    result = run_once(
        benchmark, fig10_hardware_ablations.run, accesses=BENCH_ACCESSES
    )
    sampling = [row for row in result.rows if row["ablation"] == "sampling"]
    # Shape target: 1-in-8 sampling keeps most of the exact gain.
    for row in sampling:
        exact_gain = row["1/1"] - 1.0
        sampled_gain = row["1/8"] - 1.0
        if exact_gain > 0.05:
            assert sampled_gain > 0.4 * exact_gain, row["benchmark"]
    print()
    print(result.to_text())
