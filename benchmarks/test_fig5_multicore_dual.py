"""Bench: Fig. 5 — dual-core weighted speedup (paper: +9.6%)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments.fig567_multicore import run_fig5


def test_fig5_multicore_dual(benchmark):
    result = run_once(benchmark, run_fig5, accesses=BENCH_ACCESSES)
    # Shape target: positive average improvement over LRU.
    assert result.summary["gmean_improvement"] > 0.02
    print()
    print(result.to_text())
