"""Bench: Fig. 4 — DeliWay-count sensitivity."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig4_deliway_sweep


def test_fig4_deliway_sweep(benchmark):
    # Like fig3/fig15: the friendly controls are low-MPKI, so the
    # selection-bootstrap transient dominates short traces; use double
    # length for stable parity cells.
    result = run_once(benchmark, fig4_deliway_sweep.run, accesses=2 * BENCH_ACCESSES)
    gmean = result.rows[-1]
    assert gmean["benchmark"] == "gmean"
    # Shape targets: D=0 is LRU (ratio ~1); the default split already
    # delivers a solid gain; friendly controls never fall far from
    # parity at any split.
    assert abs(gmean["D=0"] - 1.0) < 0.02
    assert gmean["D=8"] > 1.1
    # Friendly-control parity: full-scale runs sit within 0.5% of LRU
    # at every split up to D=12 and within ~5% at the extreme D=14
    # split (only 2 MainWays), see EXPERIMENTS.md.
    friendly = {row["benchmark"]: row for row in result.rows
                if row["benchmark"] in ("twolf_like", "gcc_like")}
    for name, row in friendly.items():
        for deli in (2, 4, 6, 8, 10, 12):
            assert row[f"D={deli}"] > 0.95, (name, deli)
        assert row["D=14"] > 0.92, name
    print()
    print(result.to_text())
