"""Bench: Fig. 7 — eight-core weighted speedup (paper: +33%)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments.fig567_multicore import run_fig7


def test_fig7_multicore_eight(benchmark):
    result = run_once(benchmark, run_fig7, accesses=BENCH_ACCESSES)
    assert result.summary["gmean_improvement"] > 0.05
    print()
    print(result.to_text())
