"""Bench: Fig. 12 — NUcache under hardware prefetching (extension)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig12_prefetch


def test_fig12_prefetch(benchmark):
    result = run_once(benchmark, fig12_prefetch.run, accesses=BENCH_ACCESSES)
    rows = {row["benchmark"]: row for row in result.rows}
    # Without prefetching the delinquent gains are there...
    assert rows["art_like"]["none:gain"] > 0.15
    # ...a stride prefetcher absorbs art's strided loop (gain shrinks)...
    assert rows["art_like"]["stride:gain"] < rows["art_like"]["none:gain"]
    # ...and prefetching never makes NUcache meaningfully harmful
    # (a few percent of noise on the irregular benchmarks is expected;
    # full-scale numbers are in EXPERIMENTS.md).
    for row in rows.values():
        for prefetcher in ("none", "nextline", "stride", "stream"):
            assert row[f"{prefetcher}:gain"] > -0.08, (row["benchmark"], prefetcher)
    print()
    print(result.to_text())
