"""Bench: Table 1 — system configuration rendering."""

from conftest import run_once

from repro.experiments import table1_config


def test_table1_config(benchmark):
    result = run_once(benchmark, table1_config.run)
    assert len(result.rows) == 4
    assert result.rows[-1]["cores"] == 8
    print()
    print(result.to_text())
