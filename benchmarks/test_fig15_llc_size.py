"""Bench: Fig. 15 — LLC-capacity sensitivity (extension)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig15_llc_size


def test_fig15_llc_size(benchmark):
    # Longer traces than most benches: the 512KB+ points are dominated
    # by selection-bootstrap transients at short lengths (full scale is
    # parity there; see EXPERIMENTS.md).
    result = run_once(benchmark, fig15_llc_size.run, accesses=2 * BENCH_ACCESSES)
    gmean = result.rows[-1]
    # Shape targets: the calibrated size shows the peak gain; both the
    # too-small and the plenty-big end show (much) less; nothing is
    # meaningfully below 1.0 anywhere.
    assert gmean["256KB"] > 1.1
    assert gmean["256KB"] >= gmean["128KB"] - 0.02
    assert gmean["256KB"] >= gmean["1024KB"] - 0.02
    for row in result.rows[:-1]:
        for size in ("128KB", "256KB", "512KB", "1024KB"):
            assert row[size] > 0.93, (row["benchmark"], size)
    print()
    print(result.to_text())
