"""Bench: Fig. 6 — quad-core weighted speedup (paper: +30%)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments.fig567_multicore import run_fig6


def test_fig6_multicore_quad(benchmark):
    result = run_once(benchmark, run_fig6, accesses=BENCH_ACCESSES)
    assert result.summary["gmean_improvement"] > 0.05
    print()
    print(result.to_text())
