"""Benchmark-harness configuration.

Each benchmark regenerates one table/figure of the paper at a reduced
trace length (so the whole harness completes in minutes) and asserts the
*shape* targets from DESIGN.md.  Full-scale numbers are recorded in
EXPERIMENTS.md; rerun with ``REPRO_BENCH_ACCESSES`` raised to reproduce
them.
"""

from __future__ import annotations

import os

import pytest

#: Per-core trace length used by the benchmark harness.
BENCH_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "60000"))

#: Worker processes the benchmark runs schedule simulations across.
#: Defaults to serial so timing numbers stay comparable; raise it to
#: exercise (and time) the parallel scheduler path.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(autouse=True, scope="session")
def _scheduler_isolation(tmp_path_factory):
    """Run every benchmark through the scheduler against a fresh store.

    ``REPRO_CACHE_DIR`` is pointed at a per-session tmpdir so timings
    measure real simulation work (no cross-run cache pollution) while
    within-session reuse — e.g. alone baselines shared between figures —
    still flows through the store, as in production.
    """
    from repro.exec import STORE_ENV_VAR
    from repro.exec import context as exec_context

    previous = os.environ.get(STORE_ENV_VAR)
    os.environ[STORE_ENV_VAR] = str(tmp_path_factory.mktemp("bench-store"))
    exec_context.reset()
    exec_context.configure(jobs=BENCH_JOBS)
    yield
    if previous is None:
        os.environ.pop(STORE_ENV_VAR, None)
    else:
        os.environ[STORE_ENV_VAR] = previous
    exec_context.reset()


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
