"""Benchmark-harness configuration.

Each benchmark regenerates one table/figure of the paper at a reduced
trace length (so the whole harness completes in minutes) and asserts the
*shape* targets from DESIGN.md.  Full-scale numbers are recorded in
EXPERIMENTS.md; rerun with ``REPRO_BENCH_ACCESSES`` raised to reproduce
them.
"""

from __future__ import annotations

import os

#: Per-core trace length used by the benchmark harness.
BENCH_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "60000"))


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
