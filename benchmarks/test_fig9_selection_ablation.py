"""Bench: Fig. 9 — selection and epoch-length ablations."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig9_selection_ablation


def test_fig9_selection_ablation(benchmark):
    result = run_once(benchmark, fig9_selection_ablation.run, accesses=BENCH_ACCESSES)
    selector_rows = [row for row in result.rows if row["ablation"] == "selector"]
    # Shape targets: cost-benefit (greedy) tracks the oracle and beats
    # the topk strawman where it matters (art_like).
    art = next(row for row in selector_rows if row["benchmark"] == "art_like")
    assert art["greedy"] > art["topk"] + 0.05
    for row in selector_rows:
        assert row["greedy"] >= 0.9 * row["oracle"], row["benchmark"]
    print()
    print(result.to_text())
