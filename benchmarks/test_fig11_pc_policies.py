"""Bench: Fig. 11 — NUcache vs later PC-based policies (extension)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig11_pc_policies


def test_fig11_pc_policies(benchmark):
    result = run_once(benchmark, fig11_pc_policies.run, accesses=BENCH_ACCESSES)
    summary = result.summary
    # Shape target: the PC-based schemes lead the PC-blind ones.
    pc_based = max(summary["gmean_ship_vs_lru"], summary["gmean_nucache_vs_lru"])
    assert pc_based >= summary["gmean_drrip_vs_lru"] - 0.01
    assert summary["gmean_nucache_vs_lru"] > 0.05
    print()
    print(result.to_text())
