"""Bench: Table 4 — simulator throughput by organization (extension).

Not a paper artifact: measures this reproduction's own simulation speed
(accesses/second through the full L1/L2/LLC hierarchy) per LLC
organization, so regressions in the hot path show up in CI.
"""

import time

from repro.sim.runner import run_single


POLICIES = ("lru", "dip", "drrip", "ship", "ucp", "pipp", "nucache")
ACCESSES = 30_000


def test_table4_throughput(benchmark):
    def measure():
        rows = []
        for policy in POLICIES:
            start = time.perf_counter()
            run_single("art_like", policy, ACCESSES)
            elapsed = time.perf_counter() - start
            rows.append((policy, ACCESSES / elapsed))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'policy':<10} {'accesses/sec':>14}")
    for policy, rate in rows:
        print(f"{policy:<10} {rate:>14,.0f}")
        # Guard: even the heaviest organization should sustain >5k acc/s.
        assert rate > 5_000, policy
