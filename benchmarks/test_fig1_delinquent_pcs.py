"""Bench: Fig. 1 — miss concentration in delinquent PCs."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig1_delinquent_pcs


def test_fig1_delinquent_pcs(benchmark):
    result = run_once(benchmark, fig1_delinquent_pcs.run, accesses=BENCH_ACCESSES)
    # Shape target: few PCs cover most misses, on every benchmark.
    covered = [row["top8"] for row in result.rows if row["total_misses"] > 0]
    assert covered, "no benchmark produced LLC misses"
    assert min(covered) > 0.6
    assert result.summary["mean_top8_coverage"] > 0.85
    print()
    print(result.to_text())
