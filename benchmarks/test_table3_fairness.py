"""Bench: Table 3 — fairness metrics (extension)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import table3_fairness


def test_table3_fairness(benchmark):
    result = run_once(benchmark, table3_fairness.run, accesses=BENCH_ACCESSES)
    # Shape target: ANTT improved or equal on a clear majority of mixes,
    # and fairness never collapses under NUcache.
    improved = result.summary["mixes_with_antt_improved_or_equal"]
    total = result.summary["mixes_total"]
    assert improved >= 0.6 * total
    for row in result.rows:
        assert row["nucache:fairness"] > 0.5 * row["lru:fairness"], row["mix"]
    print()
    print(result.to_text())
