"""Bench: Fig. 3 — single-core NUcache vs LRU."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig3_single_core


def test_fig3_single_core(benchmark):
    # Fig. 3 needs longer traces than the other benches: the near-LLC-
    # capacity benchmarks take several reuse rounds to converge, and at
    # short lengths that transient dominates their tiny miss counts.
    result = run_once(benchmark, fig3_single_core.run, accesses=2 * BENCH_ACCESSES)
    by_class = {}
    for row in result.rows:
        by_class.setdefault(row["class"], []).append(row["speedup"])
    # Shape targets: clear wins on the delinquent class...
    assert max(by_class["delinquent"]) > 1.15
    assert min(by_class["delinquent"]) > 0.98
    # ...and no significant degradation anywhere else.
    for klass in ("friendly", "streaming", "partition"):
        assert min(by_class[klass]) > 0.93, (klass, by_class[klass])
    assert result.summary["gmean_speedup"] > 1.0
    print()
    print(result.to_text())
