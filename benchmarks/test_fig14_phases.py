"""Bench: Fig. 14 — phase adaptivity (extension)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig14_phases


def test_fig14_phases(benchmark):
    # Phases need enough length each for two selection epochs.
    result = run_once(benchmark, fig14_phases.run, accesses=2 * BENCH_ACCESSES)
    rows = {row["configuration"]: row for row in result.rows}
    adaptive = rows["nucache (default epochs)"]["vs_lru"]
    frozen = rows["nucache (selection frozen)"]["vs_lru"]
    # Shape targets: adaptation beats LRU and clearly beats staleness.
    assert adaptive > 1.05
    assert result.summary["adaptive_vs_frozen"] > 1.05
    assert frozen < adaptive
    print()
    print(result.to_text())
