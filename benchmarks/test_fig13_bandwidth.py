"""Bench: Fig. 13 — bandwidth-contention sensitivity (extension)."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig13_bandwidth


def test_fig13_bandwidth(benchmark):
    result = run_once(benchmark, fig13_bandwidth.run, accesses=BENCH_ACCESSES)
    summary = result.summary
    # Shape target: removing misses pays at least as much when memory
    # queues as when it does not.
    assert summary["gmean_gain_bandwidth"] >= summary["gmean_gain_fixed"] - 0.02
    assert summary["gmean_gain_fixed"] > 0.03
    print()
    print(result.to_text())
