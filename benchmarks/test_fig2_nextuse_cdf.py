"""Bench: Fig. 2 — Next-Use distance CDF."""

from conftest import BENCH_ACCESSES, run_once

from repro.experiments import fig2_nextuse_cdf
from repro.workloads.spec_like import benchmark_class


def test_fig2_nextuse_cdf(benchmark):
    result = run_once(benchmark, fig2_nextuse_cdf.run, accesses=BENCH_ACCESSES)
    rows = {row["benchmark"]: row for row in result.rows}
    # Shape target: delinquent benchmarks have plenty of reuse events
    # and most of the mass within the default DeliWay capacity (2048).
    for name, row in rows.items():
        if benchmark_class(name) == "delinquent":
            assert row["events"] > 100, name
            assert row["<= 2048"] > 0.5, name
    # Streaming benchmarks have (nearly) no short-distance reuse events.
    for name, row in rows.items():
        if benchmark_class(name) == "streaming":
            assert row["events"] < rows["art_like"]["events"], name
    print()
    print(result.to_text())
