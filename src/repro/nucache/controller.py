"""Epoch controller: candidate tracking, profiling and selection.

The controller owns everything about NUcache that is *not* the way
organization: the delinquent-PC candidate table, the Next-Use profiler,
the per-epoch miss accounting and the end-of-epoch selection.  The
:class:`~repro.nucache.organization.NUCache` calls into it from its
access path and asks it two questions on that path: "which candidate
slot does this (core, PC) map to?" and "is this slot selected?".

Epoch protocol (lengths measured in LLC misses, as in the paper):

1. During an epoch, misses are attributed to (core, PC) pairs and the
   profiler accumulates Next-Use events for the *current* candidates.
2. At the boundary, the configured selector picks the PC subset from the
   epoch's profile, the candidate table is rebuilt as
   ``selected PCs ∪ top miss PCs`` (keeping selected PCs ensures a PC
   that stopped missing *because* it is selected is not forgotten), and
   the cache is asked to remap the per-line slot annotations.
3. The first epoch is shortened (``WARMUP_FRACTION``) so the cache does
   not run an entire full-length epoch with nothing selected.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.common.config import NUcacheConfig
from repro.nucache.nextuse import EpochProfile, NextUseProfiler
from repro.nucache.selection import SELECTORS

#: Fraction of a full epoch used for the bootstrap epochs (candidate
#: discovery and first profiling pass).  Kept short so that low-MPKI
#: programs, whose miss-driven epochs tick slowly, still get a selection
#: in place shortly after their cold misses.
WARMUP_FRACTION = 0.1

#: Selection hysteresis: keep the previous PC set unless the newly
#: computed one is estimated to capture at least this factor more hits.
#: Switching selections evicts the retained population (one full reuse
#: round of misses), so near-ties must not flip the selection — without
#: this, two equally-delinquent PCs that fit the DeliWays only one at a
#: time make the selector oscillate and capture almost nothing.
SWITCH_BENEFIT_FACTOR = 1.10

#: A (core, program-counter) pair — the identity of a static access site.
PCKey = Tuple[int, int]


class NUcacheController:
    """Candidate table + profiler + selector for one NUcache instance."""

    def __init__(self, config: NUcacheConfig, deli_capacity: int) -> None:
        self.config = config
        self.deli_capacity = deli_capacity
        self.profiler = NextUseProfiler(config.history_capacity, config.sample_period)
        self._selector: Callable = SELECTORS[config.selector]
        self._slot_of: Dict[PCKey, int] = {}
        self._slot_keys: List[Optional[PCKey]] = []
        self._selected: FrozenSet[int] = frozenset()
        self._miss_counts: Dict[PCKey, int] = {}
        self._misses_this_epoch = 0
        self._accesses_this_epoch = 0
        self._epoch_target = max(1, int(config.epoch_misses * WARMUP_FRACTION))
        self._access_target = max(
            1, int(config.effective_epoch_accesses * WARMUP_FRACTION)
        )
        self.epochs_completed = 0
        self.last_profile: Optional[EpochProfile] = None
        #: When True, every epoch's profile is appended to
        #: :attr:`profile_history` (used by the characterization figures;
        #: off by default to keep memory flat on long runs).
        self.keep_profiles = False
        self.profile_history: List[EpochProfile] = []
        self.profiler.begin_epoch(0)

    # ------------------------------------------------------------------
    # Hot-path queries
    # ------------------------------------------------------------------

    def slot_of(self, core: int, pc: int) -> int:
        """Candidate slot for a filling access, or -1 if not a candidate."""
        return self._slot_of.get((core, pc), -1)

    def is_selected(self, pc_slot: int) -> bool:
        """Whether lines from this candidate slot may enter the DeliWays."""
        return pc_slot in self._selected

    @property
    def selected_slots(self) -> FrozenSet[int]:
        """The currently selected candidate slots."""
        return self._selected

    def selected_keys(self) -> List[PCKey]:
        """The currently selected (core, PC) pairs, for reporting."""
        return [key for key, slot in self._slot_of.items() if slot in self._selected]

    # ------------------------------------------------------------------
    # Hot-path notifications
    # ------------------------------------------------------------------

    def note_miss(self, core: int, pc: int) -> None:
        """Account one LLC miss against its (core, PC)."""
        key = (core, pc)
        self._miss_counts[key] = self._miss_counts.get(key, 0) + 1
        self._misses_this_epoch += 1

    def note_access(self) -> bool:
        """Account one LLC access; returns True when the epoch just ended.

        Epochs end on whichever comes first: the miss quota (the paper's
        primary trigger) or the access cap (so low-MPKI phases still
        re-select).  The caller must invoke :meth:`rotate` promptly when
        this returns True (kept separate so the cache can pass itself in
        for slot remapping).
        """
        self._accesses_this_epoch += 1
        return (
            self._misses_this_epoch >= self._epoch_target
            or self._accesses_this_epoch >= self._access_target
        )

    def on_main_eviction(self, set_index: int, block_addr: int, pc_slot: int) -> None:
        """Forward a MainWay eviction to the profiler."""
        self.profiler.on_eviction(set_index, block_addr, pc_slot)

    def on_possible_reuse(self, set_index: int, block_addr: int) -> None:
        """Forward a non-MainWay-hit access to the profiler."""
        self.profiler.on_reuse(set_index, block_addr)

    # ------------------------------------------------------------------
    # Epoch boundary
    # ------------------------------------------------------------------

    def rotate(self, remap: Callable[[Dict[PCKey, int]], None]) -> FrozenSet[int]:
        """Close the epoch: select PCs, rebuild candidates, start anew.

        Args:
            remap: callback invoked with the *new* ``(core, pc) -> slot``
                table; the cache uses it to rewrite the slot annotation
                of every resident line so stale slots never leak across
                epochs.

        Returns:
            The new selected slot set (primarily for tests/telemetry).
        """
        profile = self.profiler.finish_epoch()
        self.last_profile = profile
        if self.keep_profiles:
            self.profile_history.append(profile)
        selected_old_slots = self._selector(
            profile, self.deli_capacity, self.config.max_selected_pcs
        )
        if self._selected and selected_old_slots != self._selected:
            new_mask = np.zeros(profile.num_slots, dtype=bool)
            new_mask[list(selected_old_slots)] = True
            old_mask = np.zeros(profile.num_slots, dtype=bool)
            old_mask[list(self._selected)] = True
            new_hits = profile.captured_hits(new_mask, self.deli_capacity)
            old_hits = profile.captured_hits(old_mask, self.deli_capacity)
            # The +1 keeps the previous selection on zero-evidence epochs
            # (a selected PC whose lines stopped leaving the MainWays
            # produces no events; that is success, not failure).
            if new_hits < old_hits * SWITCH_BENEFIT_FACTOR + 1:
                selected_old_slots = self._selected
        selected_keys = {
            self._slot_keys[slot]
            for slot in selected_old_slots
            if self._slot_keys[slot] is not None
        }

        new_table: Dict[PCKey, int] = {}
        keys_in_order: List[Optional[PCKey]] = []
        for key in sorted(selected_keys):  # type: ignore[type-var]
            new_table[key] = len(keys_in_order)
            keys_in_order.append(key)
        for key, _count in sorted(
            self._miss_counts.items(), key=lambda item: item[1], reverse=True
        ):
            if len(keys_in_order) >= self.config.num_candidate_pcs:
                break
            if key not in new_table:
                new_table[key] = len(keys_in_order)
                keys_in_order.append(key)

        self._slot_of = new_table
        self._slot_keys = keys_in_order
        self._selected = frozenset(new_table[key] for key in selected_keys)
        remap(new_table)

        self._miss_counts = {}
        self._misses_this_epoch = 0
        self._accesses_this_epoch = 0
        self.epochs_completed += 1
        # The first full selection only happens after one epoch of
        # candidate discovery plus one of profiling, so keep both of
        # those short; thereafter run full-length epochs.
        if self.epochs_completed >= 2:
            fraction = 1.0
        else:
            fraction = WARMUP_FRACTION
        self._epoch_target = max(1, int(self.config.epoch_misses * fraction))
        self._access_target = max(
            1, int(self.config.effective_epoch_accesses * fraction)
        )
        self.profiler.begin_epoch(len(keys_in_order))
        return self._selected
