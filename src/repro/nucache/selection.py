"""Cost-benefit PC selection.

Given an :class:`~repro.nucache.nextuse.EpochProfile` and the DeliWay
capacity ``B`` (total line slots), the selector chooses the subset of
candidate delinquent PCs whose retained lines maximize captured hits.

Three selectors are provided:

* :func:`greedy_select` — the paper's mechanism: iteratively add the PC
  with the largest *marginal* benefit, re-evaluating the full
  cost-benefit at each step (adding a PC both captures its reuses and
  pushes everyone else's lines out of the DeliWays faster, so marginal
  benefit can be negative; the greedy loop stops when it is).
* :func:`oracle_select` — exhaustive subset search, exponential in the
  candidate count; the quality upper bound used by the Fig. 9 ablation.
* :func:`topk_select` — the strawman: pick the ``k`` largest miss
  producers regardless of next-use behaviour; the paper's argument is
  precisely that this is *not* good enough.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Sequence

import numpy as np

from repro.nucache.nextuse import EpochProfile


def evaluate_subset(profile: EpochProfile, slots: Sequence[int], deli_capacity: int) -> int:
    """Captured hits for an explicit candidate subset."""
    mask = np.zeros(profile.num_slots, dtype=bool)
    for slot in slots:
        mask[slot] = True
    return profile.captured_hits(mask, deli_capacity)


def greedy_select(
    profile: EpochProfile, deli_capacity: int, max_selected: int
) -> FrozenSet[int]:
    """The paper's greedy cost-benefit selection.

    Starts from the empty set and adds, at each step, the candidate with
    the highest resulting total captured-hit count, stopping when no
    addition improves the total or ``max_selected`` is reached.
    """
    if profile.num_events == 0 or max_selected <= 0:
        return frozenset()
    mask = np.zeros(profile.num_slots, dtype=bool)
    best_total = 0
    selected: List[int] = []
    while len(selected) < max_selected:
        best_slot = -1
        best_candidate_total = best_total
        for slot in range(profile.num_slots):
            if mask[slot]:
                continue
            mask[slot] = True
            total = profile.captured_hits(mask, deli_capacity)
            mask[slot] = False
            if total > best_candidate_total:
                best_candidate_total = total
                best_slot = slot
        if best_slot < 0:
            break
        mask[best_slot] = True
        selected.append(best_slot)
        best_total = best_candidate_total
    return frozenset(selected)


def oracle_select(
    profile: EpochProfile, deli_capacity: int, max_selected: int
) -> FrozenSet[int]:
    """Exhaustive best subset of size at most ``max_selected``.

    Exponential in ``profile.num_slots``; intended for candidate pools
    of at most ~16 PCs (tests and the selection-quality ablation).
    """
    if profile.num_events == 0:
        return frozenset()
    slots = range(profile.num_slots)
    best_subset: FrozenSet[int] = frozenset()
    best_total = 0
    for size in range(1, min(max_selected, profile.num_slots) + 1):
        for subset in combinations(slots, size):
            total = evaluate_subset(profile, subset, deli_capacity)
            if total > best_total:
                best_total = total
                best_subset = frozenset(subset)
    return best_subset


def all_select(
    profile: EpochProfile, deli_capacity: int, max_selected: int
) -> FrozenSet[int]:
    """Indiscriminate retention: select every candidate with traffic.

    Turns the DeliWays into a plain PC-blind victim buffer — the
    ablation showing that *selection* (not merely extra retention
    capacity) is what makes NUcache work.  ``max_selected`` is ignored
    on purpose: a victim buffer admits everyone.
    """
    return frozenset(
        slot for slot, evictions in enumerate(profile.evictions_per_slot)
        if evictions > 0
    )


def topk_select(
    profile: EpochProfile, deli_capacity: int, max_selected: int
) -> FrozenSet[int]:
    """Naive selection: the ``k`` candidates with the most evictions.

    ``deli_capacity`` is accepted for signature compatibility; the whole
    point of the strawman is that it ignores capacity.
    """
    order = np.argsort(profile.evictions_per_slot)[::-1]
    chosen = [int(slot) for slot in order[:max_selected]
              if profile.evictions_per_slot[int(slot)] > 0]
    return frozenset(chosen)


#: Registry used by the controller and the CLI.
SELECTORS = {
    "greedy": greedy_select,
    "oracle": oracle_select,
    "topk": topk_select,
    "all": all_select,
}
