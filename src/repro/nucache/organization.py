"""The NUcache way organization: MainWays + DeliWays.

Each set's ways are split into ``M`` MainWays and ``D`` DeliWays:

* Every fill enters the MainWays, which run plain LRU among themselves.
* When the MainWay LRU victim was filled by a currently *selected*
  delinquent PC, it is retained in the DeliWays instead of leaving the
  cache; the DeliWays form a FIFO, so retaining into full DeliWays
  evicts the oldest retained line.
* A DeliWay hit promotes the line back to MRU of the MainWays (the
  paper's behaviour; the ``deli_replacement="lru"`` ablation refreshes
  the line inside the DeliWays instead).

Selection and profiling live in
:class:`~repro.nucache.controller.NUcacheController`; this module is
purely the data path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

from repro.cache.cache import LastLevelCache
from repro.cache.line import CacheLine
from repro.cache.replacement.basic import LRUPolicy
from repro.common.config import CacheGeometry, NUcacheConfig
from repro.common.stats import AccessStats
from repro.common.errors import ConfigError
from repro.nucache.controller import NUcacheController, PCKey


class _DeliEntry:
    """A line resident in the DeliWays (tag is the OrderedDict key).

    ``seq`` is the global retention sequence number assigned when the
    line entered the DeliWays.  Under the paper's FIFO replacement the
    entries of a set are therefore strictly increasing in ``seq`` — an
    invariant :mod:`repro.check.invariants` verifies (the ``lru``
    ablation re-inserts hit entries at MRU, which legitimately breaks
    the ordering, so the check is FIFO-mode only).
    """

    __slots__ = ("core", "pc", "pc_slot", "dirty", "seq")

    def __init__(
        self, core: int, pc: int, pc_slot: int, dirty: bool, seq: int = 0
    ) -> None:
        self.core = core
        self.pc = pc
        self.pc_slot = pc_slot
        self.dirty = dirty
        self.seq = seq


class _NUcacheSet:
    """One set: M MainWays under LRU plus a D-entry DeliWay FIFO."""

    __slots__ = ("main_lines", "main_policy", "main_tag_to_way", "free_ways", "deli")

    def __init__(self, main_ways: int) -> None:
        self.main_lines = [CacheLine() for _ in range(main_ways)]
        self.main_policy = LRUPolicy(main_ways)
        self.main_tag_to_way: Dict[int, int] = {}
        self.free_ways = list(range(main_ways - 1, -1, -1))
        # tag -> _DeliEntry, insertion-ordered (FIFO head = oldest).
        self.deli: "OrderedDict[int, _DeliEntry]" = OrderedDict()


class NUCache(LastLevelCache):
    """Shared LLC with the NUcache organization.

    Exposes the standard :class:`LastLevelCache` interface; all NUcache
    machinery (profiling, selection, epochs) is internal.
    """

    name = "nucache"

    def __init__(self, geometry: CacheGeometry, config: NUcacheConfig) -> None:
        super().__init__(geometry)
        if config.deli_ways >= geometry.ways:
            raise ConfigError(
                f"deli_ways ({config.deli_ways}) must leave at least one MainWay "
                f"in a {geometry.ways}-way cache"
            )
        self.config = config
        self.main_ways = geometry.ways - config.deli_ways
        self.deli_ways = config.deli_ways
        self.controller = NUcacheController(
            config, deli_capacity=config.deli_ways * geometry.num_sets
        )
        self.sets = [_NUcacheSet(self.main_ways) for _ in range(geometry.num_sets)]
        self._set_mask = geometry.num_sets - 1
        self._index_bits = geometry.num_sets.bit_length() - 1
        #: Hits serviced by the DeliWays (the quantity selection maximizes).
        self.deli_hits = 0
        #: Lines retained into the DeliWays.
        self.retentions = 0
        #: DeliWay hits promoted back into the MainWays (stays 0 under
        #: the ``deli_replacement="lru"`` ablation, which refreshes the
        #: line in place instead).
        self.promotions = 0
        #: Retained lines pushed out by DeliWay FIFO overflow.  Closes
        #: the retention conservation law the sanitizer checks:
        #: ``retentions == promotions + deli_evictions + resident``.
        self.deli_evictions = 0

    # ------------------------------------------------------------------
    # LastLevelCache interface
    # ------------------------------------------------------------------

    def access(self, block_addr: int, core: int, pc: int, is_write: bool) -> bool:
        # MainWay-hit fast path: the LRU promotion (main_policy is
        # always plain LRU) and SharedCacheStats.record are inlined —
        # this branch services the overwhelming majority of LLC hits.
        set_index = block_addr & self._set_mask
        tag = block_addr >> self._index_bits
        nu_set = self.sets[set_index]

        way = nu_set.main_tag_to_way.get(tag, -1)
        if way >= 0:
            stack = nu_set.main_policy.stack
            if stack[0] != way:
                stack.remove(way)
                stack.insert(0, way)
            if is_write:
                nu_set.main_lines[way].dirty = True
            stats = self.stats
            stats.total.hits += 1
            per_core = stats.per_core.get(core)
            if per_core is None:
                per_core = stats.per_core.setdefault(core, AccessStats())
            per_core.hits += 1
            if self.controller.note_access():
                self.controller.rotate(self._remap_slots)
            return True

        # Not in the MainWays: this access is a potential "next use" of a
        # previously evicted line, whether it hits the DeliWays or not.
        self.controller.on_possible_reuse(set_index, block_addr)

        entry = nu_set.deli.pop(tag, None)
        if entry is not None:
            self.deli_hits += 1
            self.stats.record(core, hit=True)
            if is_write:
                entry.dirty = True
            if self.config.deli_replacement == "lru":
                # Ablation: keep the line in the DeliWays at MRU instead
                # of promoting it back to the MainWays.
                nu_set.deli[tag] = entry
            else:
                self.promotions += 1
                self._fill_main(
                    nu_set, set_index, tag, entry.core, entry.pc, entry.pc_slot, entry.dirty
                )
            if self.controller.note_access():
                self.controller.rotate(self._remap_slots)
            return True

        self.stats.record(core, hit=False)
        self._fill_main(
            nu_set, set_index, tag, core, pc,
            self.controller.slot_of(core, pc), is_write,
        )
        self.controller.note_miss(core, pc)
        if self.controller.note_access():
            self.controller.rotate(self._remap_slots)
        return False

    def end_of_interval(self) -> None:
        """Epochs are miss-driven; nothing to do on engine intervals."""

    def occupancy_by_core(self) -> dict:
        counts: dict = {}
        for nu_set in self.sets:
            for line in nu_set.main_lines:
                if line.valid:
                    counts[line.core] = counts.get(line.core, 0) + 1
            for entry in nu_set.deli.values():
                counts[entry.core] = counts.get(entry.core, 0) + 1
        return counts

    def snapshot_counters(self) -> dict:
        """Base counters plus the DeliWay retention/promotion counters."""
        counters = super().snapshot_counters()
        counters["fills"] = self.stats.total.misses  # every miss fills
        counters["deli_hits"] = self.deli_hits
        counters["retentions"] = self.retentions
        counters["promotions"] = self.promotions
        counters["deli_evictions"] = self.deli_evictions
        counters["epochs"] = self.controller.epochs_completed
        return counters

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fill_main(self, nu_set: _NUcacheSet, set_index: int, tag: int,
                   core: int, pc: int, pc_slot: int, dirty: bool) -> None:
        """Install a line at MRU of the MainWays, evicting if needed.

        main_policy is always plain LRU, so its victim (stack bottom)
        and insert (move to MRU) are inlined as direct stack operations.
        """
        stack = nu_set.main_policy.stack
        if nu_set.free_ways:
            way = nu_set.free_ways.pop()
            stack.remove(way)
        else:
            way = stack[-1]
            self._evict_main(nu_set, set_index, way)
            del stack[-1]
        stack.insert(0, way)
        line = nu_set.main_lines[way]
        line.fill(tag, core, pc, dirty)
        line.pc_slot = pc_slot
        nu_set.main_tag_to_way[tag] = way

    def _evict_main(self, nu_set: _NUcacheSet, set_index: int, way: int) -> None:
        """Handle the MainWay victim: retain in DeliWays or evict."""
        victim = nu_set.main_lines[way]
        victim_addr = (victim.tag << self._index_bits) | set_index
        del nu_set.main_tag_to_way[victim.tag]
        self.controller.on_main_eviction(set_index, victim_addr, victim.pc_slot)
        if self.deli_ways > 0 and self.controller.is_selected(victim.pc_slot):
            nu_set.deli[victim.tag] = _DeliEntry(
                victim.core, victim.pc, victim.pc_slot, victim.dirty,
                seq=self.retentions,
            )
            self.retentions += 1
            if len(nu_set.deli) > self.deli_ways:
                _old_tag, old_entry = nu_set.deli.popitem(last=False)
                self.deli_evictions += 1
                self._count_eviction(old_entry.dirty)
        else:
            self._count_eviction(victim.dirty)

    def _count_eviction(self, dirty: bool) -> None:
        self.stats.total.evictions += 1
        if dirty:
            self.stats.total.writebacks += 1

    def _remap_slots(self, new_table: Dict[PCKey, int]) -> None:
        """Rewrite every resident line's slot for a new candidate table.

        Software-simulator luxury: hardware would let slots go stale for
        one epoch; the remap keeps the model exact (DESIGN.md ablations).
        """
        for nu_set in self.sets:
            for line in nu_set.main_lines:
                if line.valid:
                    line.pc_slot = new_table.get((line.core, line.pc), -1)
            for entry in nu_set.deli.values():
                entry.pc_slot = new_table.get((entry.core, entry.pc), -1)

    # ------------------------------------------------------------------
    # Introspection (tests, reports)
    # ------------------------------------------------------------------

    def set_of(self, block_addr: int) -> _NUcacheSet:
        """The set a block maps to."""
        return self.sets[block_addr & self._set_mask]

    def split_address(self, block_addr: int) -> Tuple[int, int]:
        """Return ``(set_index, tag)`` for a block address."""
        return block_addr & self._set_mask, block_addr >> self._index_bits

    def resident_blocks(self) -> Iterator[Tuple[int, bool]]:
        """Iterate ``(block_addr, in_deliways)`` over all resident lines."""
        for set_index, nu_set in enumerate(self.sets):
            for line in nu_set.main_lines:
                if line.valid:
                    yield (line.tag << self._index_bits) | set_index, False
            for tag in nu_set.deli:
                yield (tag << self._index_bits) | set_index, True

    @property
    def occupancy(self) -> int:
        """Total resident lines (MainWays + DeliWays)."""
        return sum(
            len(nu_set.main_tag_to_way) + len(nu_set.deli) for nu_set in self.sets
        )

    def selection_report(self) -> List[PCKey]:
        """Currently selected (core, PC) pairs."""
        return self.controller.selected_keys()
