"""NUcache: the paper's contribution — organization, profiling, selection."""

from repro.nucache.controller import NUcacheController, PCKey, WARMUP_FRACTION
from repro.nucache.nextuse import EpochProfile, NextUseEvent, NextUseProfiler
from repro.nucache.organization import NUCache
from repro.nucache.partitioned import PartitionedNUCache
from repro.nucache.selection import (
    SELECTORS,
    all_select,
    evaluate_subset,
    greedy_select,
    oracle_select,
    topk_select,
)

__all__ = [
    "EpochProfile",
    "NUCache",
    "NUcacheController",
    "PartitionedNUCache",
    "NextUseEvent",
    "NextUseProfiler",
    "PCKey",
    "SELECTORS",
    "WARMUP_FRACTION",
    "all_select",
    "evaluate_subset",
    "greedy_select",
    "oracle_select",
    "topk_select",
]
