"""Partitioned NUcache — the paper's future-work hybrid (extension).

NUcache and UCP attack different failure modes: UCP stops *inter-core*
capacity theft with way quotas, NUcache rescues *post-eviction reuse*
of selected PCs.  The hybrid applies both: the MainWays are way-
partitioned among cores by UMON + lookahead (exactly as in
:mod:`repro.partition.ucp`), while the DeliWays keep NUcache's
cost-benefit PC retention across cores.

Concretely, the only change to NUcache's data path is MainWay victim
choice: instead of global LRU, pick the LRU line of an over-quota core
(or of the requester when nobody is over).  Everything downstream —
retention of selected victims, the profiler, selection epochs — is
inherited unchanged.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import CacheGeometry, NUcacheConfig
from repro.nucache.organization import NUCache, _NUcacheSet
from repro.partition.lookahead import lookahead_partition
from repro.partition.umon import UtilityMonitor


class PartitionedNUCache(NUCache):
    """UCP-partitioned MainWays + NUcache DeliWays."""

    name = "nucache-ucp"

    def __init__(
        self,
        geometry: CacheGeometry,
        config: NUcacheConfig,
        num_cores: int,
        repartition_period: int = 50_000,
        umon_sample_period: int = 32,
    ) -> None:
        super().__init__(geometry, config)
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        if self.main_ways < num_cores:
            raise ValueError(
                f"{self.main_ways} MainWays cannot guarantee a way to "
                f"{num_cores} cores"
            )
        self.num_cores = num_cores
        self.repartition_period = repartition_period
        self.monitors = [
            UtilityMonitor(geometry, umon_sample_period) for _ in range(num_cores)
        ]
        base = self.main_ways // num_cores
        self.allocation = [base] * num_cores
        self._accesses_since_repartition = 0
        self.repartitions = 0

    def access(self, block_addr: int, core: int, pc: int, is_write: bool) -> bool:
        self.monitors[core].observe(block_addr)
        self._accesses_since_repartition += 1
        if self._accesses_since_repartition >= self.repartition_period:
            self.repartition()
        return super().access(block_addr, core, pc, is_write)

    def repartition(self) -> List[int]:
        """Recompute MainWay quotas from the UMON curves.

        The UMON curves describe utility up to the *total* associativity;
        they are truncated to the MainWay count since that is what is
        being partitioned (the DeliWays are governed by PC selection,
        not by core quotas).
        """
        curves = [
            monitor.utility_curve()[: self.main_ways + 1]
            for monitor in self.monitors
        ]
        self.allocation = lookahead_partition(curves, self.main_ways, min_ways=1)
        for monitor in self.monitors:
            monitor.decay()
        self._accesses_since_repartition = 0
        self.repartitions += 1
        return self.allocation

    def _fill_main(self, nu_set: _NUcacheSet, set_index: int, tag: int,
                   core: int, pc: int, pc_slot: int, dirty: bool) -> None:
        """Quota-aware MainWay fill (overrides global-LRU victim choice)."""
        if nu_set.free_ways:
            way = nu_set.free_ways.pop()
        else:
            way = self._choose_victim(nu_set, core)
            self._evict_main(nu_set, set_index, way)
        line = nu_set.main_lines[way]
        line.fill(tag, core, pc, dirty)
        line.pc_slot = pc_slot
        nu_set.main_tag_to_way[tag] = way
        nu_set.main_policy.insert(way, core, pc)

    def _choose_victim(self, nu_set: _NUcacheSet, requester: int) -> int:
        """UCP-style replacement-based enforcement over the MainWays."""
        counts = [0] * self.num_cores
        for line in nu_set.main_lines:
            if line.valid and 0 <= line.core < self.num_cores:
                counts[line.core] += 1
        over = self._lru_way_matching(
            nu_set,
            lambda line: (
                line.core != requester
                and 0 <= line.core < self.num_cores
                and counts[line.core] > self.allocation[line.core]
            ),
        )
        if over is not None:
            return over
        own = self._lru_way_matching(nu_set, lambda line: line.core == requester)
        if own is not None:
            return own
        return nu_set.main_policy.victim()

    def _lru_way_matching(self, nu_set: _NUcacheSet, predicate) -> Optional[int]:
        for way in reversed(nu_set.main_policy.stack):
            line = nu_set.main_lines[way]
            if line.valid and predicate(line):
                return way
        return None
