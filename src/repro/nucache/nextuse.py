"""Next-Use distance profiling.

The *Next-Use distance* of a line, with respect to a set ``S`` of
delinquent PCs, is the number of MainWay evictions of lines filled by
PCs in ``S`` that occur between the line's own MainWay eviction and its
next use.  If the DeliWays hold ``B`` lines in total and only PCs in
``S`` are allowed to retain victims there, a retained line survives
exactly until ``B`` further retentions — so its reuse is captured iff
its Next-Use distance w.r.t. ``S`` is at most ``B``.

The profiler below records, for every reuse of a recently-evicted line,
the *per-candidate-PC eviction delta vector*: how many MainWay evictions
each candidate PC contributed while the line was out of the MainWays.
From those event vectors the distance w.r.t. *any* candidate subset is a
dot product, which is what makes the cost-benefit selection in
:mod:`repro.nucache.selection` exact rather than heuristic.

Hardware realism: the paper's monitor is a FIFO of evicted tags plus
per-PC counters; this is the same structure.  ``history_capacity``
bounds the FIFO (reuses farther than the capacity are invisible, exactly
as in hardware), and ``sample_period`` optionally restricts profiling to
every Nth set (the hardware-friendly variant, evaluated as an ablation).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass
class NextUseEvent:
    """One observed reuse of a previously-evicted line.

    Attributes:
        pc_slot: candidate slot of the PC that had filled the line.
        deltas: per-candidate eviction counts accumulated between the
            line's eviction and this reuse (length = number of candidate
            slots).
    """

    pc_slot: int
    deltas: Tuple[int, ...]


#: Above this many events, selection works on a systematic subsample
#: (every k-th event) and scales counts back up — the selector only needs
#: relative benefit estimates, and this bounds its cost per epoch.
MAX_SELECTION_EVENTS = 4096


class EpochProfile:
    """Everything the selector needs about one profiling epoch."""

    def __init__(self, num_slots: int, events: List[NextUseEvent],
                 evictions_per_slot: List[int], sample_period: int,
                 max_selection_events: int = MAX_SELECTION_EVENTS) -> None:
        self.num_slots = num_slots
        self.sample_period = sample_period
        self.evictions_per_slot = list(evictions_per_slot)
        if events:
            self.event_pc = np.fromiter(
                (event.pc_slot for event in events), dtype=np.int64, count=len(events)
            )
            self.event_deltas = np.array([event.deltas for event in events], dtype=np.int64)
        else:
            self.event_pc = np.zeros(0, dtype=np.int64)
            self.event_deltas = np.zeros((0, num_slots), dtype=np.int64)
        if max_selection_events <= 0:
            raise ValueError(
                f"max_selection_events must be positive, got {max_selection_events}"
            )
        stride = max(1, -(-len(self.event_pc) // max_selection_events))  # ceil div
        self._selection_stride = stride
        self._sel_pc = self.event_pc[::stride]
        self._sel_deltas = self.event_deltas[::stride]

    @property
    def num_events(self) -> int:
        """Number of reuse events observed this epoch."""
        return int(self.event_pc.shape[0])

    def captured_hits(self, selected_slots: np.ndarray, deli_capacity: int) -> int:
        """Hits the DeliWays would capture for a candidate subset.

        Args:
            selected_slots: boolean mask over candidate slots.
            deli_capacity: total DeliWay line slots ``B``.  When the
                profile was sampled (``sample_period > 1``) the caller
                passes the *full* capacity; the scaling to sampled
                evictions happens here.

        Returns:
            The (subsample-scaled) number of reuse events from selected
            PCs whose Next-Use distance w.r.t. the selected set is
            within capacity.
        """
        if self.num_events == 0:
            return 0
        effective_capacity = deli_capacity // self.sample_period
        distances = self._sel_deltas @ selected_slots.astype(np.int64)
        from_selected = selected_slots[self._sel_pc]
        captured = int(np.count_nonzero(from_selected & (distances <= effective_capacity)))
        return captured * self._selection_stride

    def distance_histogram(self, bucket_edges: List[int]) -> Dict[int, np.ndarray]:
        """Per-PC histogram of all-candidate Next-Use distances.

        Used by the Fig. 2 characterization: distances are measured
        w.r.t. *all* candidates (the delinquent-PC eviction stream).
        Returns ``{pc_slot: counts_per_bucket}`` with a final overflow
        bucket.
        """
        histograms: Dict[int, np.ndarray] = {}
        if self.num_events == 0:
            return histograms
        distances = self.event_deltas.sum(axis=1)
        for slot in np.unique(self.event_pc):
            slot_distances = distances[self.event_pc == slot]
            counts = np.zeros(len(bucket_edges) + 1, dtype=np.int64)
            previous = 0
            for bucket, edge in enumerate(bucket_edges):
                counts[bucket] = np.count_nonzero(
                    (slot_distances >= previous) & (slot_distances < edge)
                )
                previous = edge
            counts[-1] = np.count_nonzero(slot_distances >= previous)
            histograms[int(slot)] = counts
        return histograms


class NextUseProfiler:
    """Online Next-Use monitor fed by the NUcache eviction stream.

    Usage per epoch::

        profiler.begin_epoch(num_slots)
        ... profiler.on_eviction(set_index, block_addr, pc_slot) ...
        ... profiler.on_reuse(set_index, block_addr) ...
        profile = profiler.finish_epoch()
    """

    def __init__(self, history_capacity: int, sample_period: int = 1) -> None:
        if history_capacity <= 0:
            raise ValueError(f"history_capacity must be positive, got {history_capacity}")
        if sample_period <= 0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        self.history_capacity = history_capacity
        self.sample_period = sample_period
        self._num_slots = 0
        self._evictions: List[int] = []
        # block_addr -> (pc_slot, eviction-counter snapshot)
        self._history: "OrderedDict[int, Tuple[int, Tuple[int, ...]]]" = OrderedDict()
        self._events: List[NextUseEvent] = []

    def begin_epoch(self, num_slots: int) -> None:
        """Reset for a new epoch with ``num_slots`` candidate PCs."""
        self._num_slots = num_slots
        self._evictions = [0] * num_slots
        self._history.clear()
        self._events = []

    def sampled(self, set_index: int) -> bool:
        """Whether evictions from this set are profiled."""
        return set_index % self.sample_period == 0

    def on_eviction(self, set_index: int, block_addr: int, pc_slot: int) -> None:
        """Record a MainWay eviction of a line filled by slot ``pc_slot``.

        Lines from non-candidate PCs (``pc_slot < 0``) neither count as
        eviction traffic nor enter the history: they could never be
        retained, so they are invisible to the cost-benefit model.
        """
        if pc_slot < 0 or not self.sampled(set_index):
            return
        self._evictions[pc_slot] += 1
        self._history[block_addr] = (pc_slot, tuple(self._evictions))
        self._history.move_to_end(block_addr)
        if len(self._history) > self.history_capacity:
            self._history.popitem(last=False)

    def on_reuse(self, set_index: int, block_addr: int) -> Optional[NextUseEvent]:
        """Record an access to a line that may be in the eviction history.

        Returns the event when the block was found (mainly for tests).
        """
        if not self.sampled(set_index):
            return None
        entry = self._history.pop(block_addr, None)
        if entry is None:
            return None
        pc_slot, snapshot = entry
        deltas = tuple(
            current - past for current, past in zip(self._evictions, snapshot)
        )
        event = NextUseEvent(pc_slot, deltas)
        self._events.append(event)
        return event

    def finish_epoch(self) -> EpochProfile:
        """Freeze the epoch's observations into an :class:`EpochProfile`."""
        return EpochProfile(
            self._num_slots, self._events, self._evictions, self.sample_period
        )

    @property
    def pending_evictions(self) -> int:
        """Evicted lines currently awaiting their next use."""
        return len(self._history)
