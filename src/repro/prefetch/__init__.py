"""Prefetcher models for the prefetch-interaction extension study."""

from repro.prefetch.prefetchers import (
    PREFETCH_PC,
    PREFETCHERS,
    NextLinePrefetcher,
    NoPrefetcher,
    Prefetcher,
    StreamPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)

__all__ = [
    "NextLinePrefetcher",
    "NoPrefetcher",
    "PREFETCHERS",
    "PREFETCH_PC",
    "Prefetcher",
    "StreamPrefetcher",
    "StridePrefetcher",
    "make_prefetcher",
]
