"""Hardware prefetcher models.

The paper's machine, like any real CMP, runs with prefetching on; a
credible LLC-policy study must show its mechanism survives prefetch
traffic (prefetches dilute the PC signal — a prefetched fill has no
delinquent PC — and add stream pressure on the DeliWays).  These models
sit between a core's L2 and the shared LLC: on every demand access they
may emit additional *prefetch* block addresses which the core model
issues to the LLC with a reserved prefetch PC.

Models, in increasing smarts:

* :class:`NextLinePrefetcher` — on a miss, fetch the next ``degree``
  sequential blocks.
* :class:`StridePrefetcher` — classic PC-indexed stride table
  (reference prediction): detects a per-PC constant stride after
  ``confidence_threshold`` confirmations and then runs ``degree`` ahead.
* :class:`StreamPrefetcher` — region-based stream detector: tracks up to
  ``num_streams`` active regions, each with a direction, and prefetches
  ``degree`` ahead once a region sees ``train_length`` sequential hits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional

#: PC value attached to prefetch fills (no real instruction issued them).
PREFETCH_PC = -1


class Prefetcher(ABC):
    """Interface: observe a demand access, propose prefetch blocks."""

    name = "abstract"

    def __init__(self) -> None:
        self.issued = 0

    @abstractmethod
    def observe(self, block_addr: int, pc: int, was_miss: bool) -> List[int]:
        """Process one demand access; returns block addresses to prefetch."""

    def _account(self, candidates: List[int]) -> List[int]:
        self.issued += len(candidates)
        return candidates


class NoPrefetcher(Prefetcher):
    """The disabled prefetcher (keeps call sites branch-free)."""

    name = "none"

    def observe(self, block_addr: int, pc: int, was_miss: bool) -> List[int]:
        return []


class NextLinePrefetcher(Prefetcher):
    """Fetch the next ``degree`` sequential blocks on every miss."""

    name = "nextline"

    def __init__(self, degree: int = 1) -> None:
        super().__init__()
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        self.degree = degree

    def observe(self, block_addr: int, pc: int, was_miss: bool) -> List[int]:
        if not was_miss:
            return []
        return self._account([block_addr + offset for offset in range(1, self.degree + 1)])


class _StrideEntry:
    """One PC's stride-table state."""

    __slots__ = ("last_block", "stride", "confidence")

    def __init__(self, block_addr: int) -> None:
        self.last_block = block_addr
        self.stride = 0
        self.confidence = 0


class StridePrefetcher(Prefetcher):
    """PC-indexed reference-prediction-table prefetcher."""

    name = "stride"

    def __init__(self, degree: int = 2, table_size: int = 64,
                 confidence_threshold: int = 2) -> None:
        super().__init__()
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        if table_size <= 0:
            raise ValueError(f"table_size must be positive, got {table_size}")
        if confidence_threshold <= 0:
            raise ValueError(
                f"confidence_threshold must be positive, got {confidence_threshold}"
            )
        self.degree = degree
        self.table_size = table_size
        self.confidence_threshold = confidence_threshold
        self._table: "Dict[int, _StrideEntry]" = {}

    def observe(self, block_addr: int, pc: int, was_miss: bool) -> List[int]:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                # Evict an arbitrary (oldest-inserted) entry.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _StrideEntry(block_addr)
            return []
        stride = block_addr - entry.last_block
        entry.last_block = block_addr
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 2 * self.confidence_threshold)
        else:
            entry.stride = stride
            entry.confidence = 1
            return []
        if entry.confidence < self.confidence_threshold:
            return []
        return self._account(
            [block_addr + entry.stride * ahead for ahead in range(1, self.degree + 1)]
        )


class _StreamEntry:
    """One tracked region of a stream prefetcher."""

    __slots__ = ("region", "last_block", "direction", "trained")

    def __init__(self, region: int, block_addr: int) -> None:
        self.region = region
        self.last_block = block_addr
        self.direction = 0
        self.trained = 0


class StreamPrefetcher(Prefetcher):
    """Region-based stream detector with direction training."""

    name = "stream"

    def __init__(self, degree: int = 4, num_streams: int = 8,
                 region_blocks: int = 64, train_length: int = 3) -> None:
        super().__init__()
        if degree <= 0 or num_streams <= 0 or region_blocks <= 0 or train_length <= 0:
            raise ValueError("all stream-prefetcher parameters must be positive")
        self.degree = degree
        self.num_streams = num_streams
        self.region_blocks = region_blocks
        self.train_length = train_length
        self._streams: "Dict[int, _StreamEntry]" = {}

    def observe(self, block_addr: int, pc: int, was_miss: bool) -> List[int]:
        region = block_addr // self.region_blocks
        entry = self._find(region)
        if entry is None:
            if len(self._streams) >= self.num_streams:
                self._streams.pop(next(iter(self._streams)))
            self._streams[region] = _StreamEntry(region, block_addr)
            return []
        step = block_addr - entry.last_block
        entry.last_block = block_addr
        direction = 1 if step > 0 else -1 if step < 0 else 0
        if direction == 0:
            return []
        if direction == entry.direction:
            entry.trained = min(entry.trained + 1, 2 * self.train_length)
        else:
            entry.direction = direction
            entry.trained = 1
            return []
        if entry.trained < self.train_length:
            return []
        return self._account(
            [block_addr + direction * ahead for ahead in range(1, self.degree + 1)]
        )

    def _find(self, region: int) -> Optional[_StreamEntry]:
        # A stream may cross a region boundary; accept neighbours.
        for candidate in (region, region - 1, region + 1):
            entry = self._streams.get(candidate)
            if entry is not None:
                if candidate != region:
                    self._streams[region] = self._streams.pop(candidate)
                    entry.region = region
                return entry
        return None


#: Factory registry for the CLI/experiments.
PREFETCHERS = {
    "none": NoPrefetcher,
    "nextline": NextLinePrefetcher,
    "stride": StridePrefetcher,
    "stream": StreamPrefetcher,
}


def make_prefetcher(name: str, **kwargs: object) -> Prefetcher:
    """Build a prefetcher by name."""
    try:
        factory = PREFETCHERS[name]
    except KeyError:
        raise ValueError(
            f"unknown prefetcher {name!r}; known: {', '.join(sorted(PREFETCHERS))}"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]
