"""Exact reuse-distance analysis.

The *reuse distance* (LRU stack distance) of an access is the number of
distinct blocks touched since the previous access to the same block.
It fully determines LRU behaviour: with a fully-associative LRU cache of
``C`` lines, an access hits iff its reuse distance is < ``C``.  The
histogram therefore gives LRU miss ratios for *every* capacity in one
pass — the analytical backbone for sizing the synthetic workloads and a
ground truth the UMON monitors are validated against.

The implementation is the classic Bennett–Kruskal algorithm: a Fenwick
tree over access timestamps counts, for each access, how many
previously-accessed blocks have been touched since the current block's
last access.  O(n log n) time, O(n) space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

#: Distance assigned to cold (first-touch) accesses.
COLD_DISTANCE = -1


class _FenwickTree:
    """Binary indexed tree over prefix sums of 0/1 marks."""

    __slots__ = ("size", "_tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at 0-based ``index``."""
        position = index + 1
        while position <= self.size:
            self._tree[position] += delta
            position += position & (-position)

    def prefix_sum(self, index: int) -> int:
        """Sum of marks at positions ``0 .. index`` (0-based, inclusive)."""
        position = index + 1
        total = 0
        while position > 0:
            total += self._tree[position]
            position -= position & (-position)
        return total


def reuse_distances(blocks: Sequence[int]) -> np.ndarray:
    """Exact reuse distance of every access.

    Args:
        blocks: block addresses in access order.

    Returns:
        int64 array; cold accesses get :data:`COLD_DISTANCE`.
    """
    n = len(blocks)
    distances = np.empty(n, dtype=np.int64)
    tree = _FenwickTree(n)
    last_seen: Dict[int, int] = {}
    for time, block in enumerate(blocks):
        previous = last_seen.get(block)
        if previous is None:
            distances[time] = COLD_DISTANCE
        else:
            # Marks strictly after the previous touch = distinct blocks
            # touched in between (each block is marked only at its most
            # recent access).
            distances[time] = tree.prefix_sum(time - 1) - tree.prefix_sum(previous)
            tree.add(previous, -1)
        tree.add(time, 1)
        last_seen[block] = time
    return distances


@dataclass
class ReuseProfile:
    """Reuse-distance histogram plus derived LRU miss ratios."""

    distances: np.ndarray

    @property
    def accesses(self) -> int:
        """Number of accesses analyzed."""
        return int(self.distances.shape[0])

    @property
    def cold_misses(self) -> int:
        """First-touch accesses."""
        return int(np.count_nonzero(self.distances == COLD_DISTANCE))

    @property
    def footprint(self) -> int:
        """Distinct blocks touched (equals cold misses)."""
        return self.cold_misses

    def miss_ratio(self, capacity_lines: int) -> float:
        """LRU miss ratio of a fully-associative cache of this capacity."""
        if capacity_lines <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_lines}")
        if self.accesses == 0:
            return 0.0
        hits = np.count_nonzero(
            (self.distances >= 0) & (self.distances < capacity_lines)
        )
        return 1.0 - hits / self.accesses

    def miss_ratio_curve(self, capacities: Iterable[int]) -> List[float]:
        """Miss ratios for several capacities (one histogram pass each)."""
        return [self.miss_ratio(capacity) for capacity in capacities]

    def histogram(self, bucket_edges: Sequence[int]) -> np.ndarray:
        """Counts per bucket ``[0, e0), [e0, e1), ..., [e_last, inf)``,
        with a leading cold bucket."""
        warm = self.distances[self.distances >= 0]
        counts = np.zeros(len(bucket_edges) + 2, dtype=np.int64)
        counts[0] = self.cold_misses
        previous = 0
        for index, edge in enumerate(bucket_edges):
            counts[index + 1] = np.count_nonzero((warm >= previous) & (warm < edge))
            previous = edge
        counts[-1] = np.count_nonzero(warm >= previous)
        return counts

    def percentile(self, q: float) -> Optional[int]:
        """q-th percentile of warm reuse distances (None if no reuse)."""
        warm = self.distances[self.distances >= 0]
        if warm.size == 0:
            return None
        return int(np.percentile(warm, q))


def analyze(blocks: Sequence[int]) -> ReuseProfile:
    """Convenience: compute the full reuse profile of a block stream."""
    return ReuseProfile(reuse_distances(blocks))
