"""Workload characterization built on the reuse-distance analyzer.

Produces the per-benchmark summary used by the exploration example and
by the workload-calibration tests: footprints, LRU miss-ratio curves at
cache-relevant capacities, per-PC miss attribution and stream breakdown.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.reuse import ReuseProfile, analyze
from repro.common.rng import DEFAULT_SEED
from repro.workloads.spec_like import benchmark
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Trace

#: Capacities (in 64 B lines) the characterization reports miss ratios
#: at: L1, L2, LLC MainWays share, LLC per-core slice, 2x slice.
STANDARD_CAPACITIES = (128, 1024, 2048, 4096, 8192)


@dataclass
class WorkloadCharacter:
    """Summary of one benchmark's memory behaviour."""

    name: str
    accesses: int
    footprint_blocks: int
    unique_pcs: int
    write_fraction: float
    miss_ratio_curve: Dict[int, float]
    median_reuse_distance: int
    pc_access_shares: List[Tuple[int, float]] = field(default_factory=list)

    def describe(self) -> str:
        """Multi-line human summary."""
        curve = ", ".join(
            f"{capacity}: {ratio:.2f}" for capacity, ratio in self.miss_ratio_curve.items()
        )
        return (
            f"{self.name}: {self.accesses} accesses over "
            f"{self.footprint_blocks} blocks, {self.unique_pcs} PCs, "
            f"{self.write_fraction:.0%} writes\n"
            f"  LRU miss ratio by capacity (lines): {curve}\n"
            f"  median reuse distance: {self.median_reuse_distance}"
        )


def characterize_trace(trace: Trace, block_bytes: int = 64) -> WorkloadCharacter:
    """Characterize an existing trace."""
    blocks = trace.block_addresses(block_bytes).tolist()
    profile = analyze(blocks)
    pc_counter = Counter(trace.pcs.tolist())
    total = len(trace)
    shares = [(pc, count / total) for pc, count in pc_counter.most_common(8)]
    median = profile.percentile(50)
    return WorkloadCharacter(
        name=trace.name,
        accesses=total,
        footprint_blocks=profile.footprint,
        unique_pcs=trace.unique_pcs(),
        write_fraction=float(trace.is_write.mean()),
        miss_ratio_curve={
            capacity: profile.miss_ratio(capacity)
            for capacity in STANDARD_CAPACITIES
        },
        median_reuse_distance=-1 if median is None else median,
        pc_access_shares=shares,
    )


def characterize_benchmark(
    name: str, accesses: int = 50_000, seed: int = DEFAULT_SEED
) -> WorkloadCharacter:
    """Generate and characterize one catalog benchmark."""
    return characterize_trace(generate_trace(benchmark(name), accesses, seed))


def lru_capacity_for_hit_ratio(
    profile: ReuseProfile, target_hit_ratio: float, max_capacity: int = 1 << 20
) -> int:
    """Smallest LRU capacity achieving a target hit ratio.

    Binary search over the (monotone) miss-ratio curve; returns
    ``max_capacity`` when the target is unreachable (e.g. streams).
    """
    if not 0.0 < target_hit_ratio <= 1.0:
        raise ValueError(f"target hit ratio must be in (0, 1], got {target_hit_ratio}")
    low, high = 1, max_capacity
    if 1.0 - profile.miss_ratio(max_capacity) < target_hit_ratio:
        return max_capacity
    while low < high:
        mid = (low + high) // 2
        if 1.0 - profile.miss_ratio(mid) >= target_hit_ratio:
            high = mid
        else:
            low = mid + 1
    return low
