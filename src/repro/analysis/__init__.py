"""Offline analysis: exact reuse distances, workload characterization."""

from repro.analysis.characterize import (
    STANDARD_CAPACITIES,
    WorkloadCharacter,
    characterize_benchmark,
    characterize_trace,
    lru_capacity_for_hit_ratio,
)
from repro.analysis.reuse import COLD_DISTANCE, ReuseProfile, analyze, reuse_distances

__all__ = [
    "COLD_DISTANCE",
    "ReuseProfile",
    "STANDARD_CAPACITIES",
    "WorkloadCharacter",
    "analyze",
    "characterize_benchmark",
    "characterize_trace",
    "lru_capacity_for_hit_ratio",
    "reuse_distances",
]
