"""Parallel simulation scheduling with a content-addressed result store.

The evaluation is an embarrassingly parallel grid of independent,
deterministic simulations.  This package gives that shape first-class
treatment:

* :class:`~repro.exec.job.SimJob` — a frozen, hashable spec of one
  simulation with a stable content hash (:meth:`~repro.exec.job.SimJob.key`).
* :mod:`~repro.exec.stores` — pluggable result-store backends
  (filesystem and sqlite) behind one abstract interface: results are
  persisted by content hash so repeated runs are incremental across
  invocations, every read is invariant-checked with bad entries
  quarantined, writes are atomic and fsync-durable, and cross-process
  compute leases arbitrate single-flight execution.  Select with
  ``REPRO_STORE=fs|sqlite`` or ``run --store``.
* :class:`~repro.exec.scheduler.Scheduler` — dedups a batch, serves
  cache hits, fans misses across a process pool with retry, backoff, a
  progress hook, and graceful SIGINT/SIGTERM draining; concurrent
  schedulers sharing a store compute each missed job exactly once, and
  a store that fails mid-run degrades to compute-without-cache instead
  of aborting the batch.
* :mod:`~repro.exec.journal` — an append-only JSONL manifest per run,
  enabling ``run --resume`` and ``runs list/show``.
* :mod:`~repro.exec.validate` — the engine invariants every result must
  satisfy before it is served or persisted.
* :mod:`~repro.exec.faults` — deterministic fault injection (crashes,
  hangs, flakes, store corruption) for chaos testing.
* :mod:`~repro.exec.context` — process-wide defaults
  (``run --jobs N --no-cache``, ``REPRO_JOBS``) and :func:`run_jobs`,
  the entry point the experiment drivers use.

See ``docs/execution.md`` for the full model.
"""

from repro.common.errors import RunInterrupted, ValidationError
from repro.exec.context import (
    ExecConfig,
    active_journal,
    configure,
    current,
    get_scheduler,
    reset,
    reset_totals,
    resolve_store,
    run_jobs,
    set_journal,
    totals,
)
from repro.exec.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultyExecute,
    FaultyStore,
    InjectedFault,
)
from repro.exec.job import ENGINE_VERSION, SimJob, execute_job
from repro.exec.journal import RunJournal, RunSummary, find_run, list_runs
from repro.exec.scheduler import BatchReport, Scheduler
from repro.exec.store import STORE_ENV_VAR, ResultStore, StoreStats
from repro.exec.stores import (
    AbstractResultStore,
    FileResultStore,
    Lease,
    STORE_BACKEND_ENV_VAR,
    SqliteResultStore,
    StoreError,
    from_url,
    make_store,
)
from repro.exec.validate import check_result, validate_result

__all__ = [
    "AbstractResultStore",
    "BatchReport",
    "ENGINE_VERSION",
    "ExecConfig",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultyExecute",
    "FaultyStore",
    "FileResultStore",
    "InjectedFault",
    "Lease",
    "ResultStore",
    "RunInterrupted",
    "RunJournal",
    "RunSummary",
    "STORE_BACKEND_ENV_VAR",
    "STORE_ENV_VAR",
    "Scheduler",
    "SimJob",
    "SqliteResultStore",
    "StoreError",
    "StoreStats",
    "ValidationError",
    "from_url",
    "make_store",
    "active_journal",
    "check_result",
    "configure",
    "current",
    "execute_job",
    "find_run",
    "get_scheduler",
    "list_runs",
    "reset",
    "reset_totals",
    "resolve_store",
    "run_jobs",
    "set_journal",
    "totals",
    "validate_result",
]
