"""Parallel simulation scheduling with a content-addressed result store.

The evaluation is an embarrassingly parallel grid of independent,
deterministic simulations.  This package gives that shape first-class
treatment:

* :class:`~repro.exec.job.SimJob` — a frozen, hashable spec of one
  simulation with a stable content hash (:meth:`~repro.exec.job.SimJob.key`).
* :class:`~repro.exec.store.ResultStore` — persists results by content
  hash on disk, so repeated runs are incremental across invocations.
* :class:`~repro.exec.scheduler.Scheduler` — dedups a batch, serves
  cache hits, fans misses across a process pool with retry and a
  progress hook.
* :mod:`~repro.exec.context` — process-wide defaults
  (``run --jobs N --no-cache``, ``REPRO_JOBS``) and :func:`run_jobs`,
  the entry point the experiment drivers use.

See ``docs/execution.md`` for the full model.
"""

from repro.exec.context import (
    ExecConfig,
    configure,
    current,
    get_scheduler,
    reset,
    reset_totals,
    resolve_store,
    run_jobs,
    totals,
)
from repro.exec.job import ENGINE_VERSION, SimJob, execute_job
from repro.exec.scheduler import BatchReport, Scheduler
from repro.exec.store import STORE_ENV_VAR, ResultStore, StoreStats

__all__ = [
    "BatchReport",
    "ENGINE_VERSION",
    "ExecConfig",
    "ResultStore",
    "STORE_ENV_VAR",
    "Scheduler",
    "SimJob",
    "StoreStats",
    "configure",
    "current",
    "execute_job",
    "get_scheduler",
    "reset",
    "reset_totals",
    "resolve_store",
    "run_jobs",
    "totals",
]
