"""Simulation job specs: frozen, hashable, content-addressed.

A :class:`SimJob` is a complete description of one deterministic
simulation — everything :func:`repro.sim.runner.run_workload` or
:func:`~repro.sim.runner.run_single` needs to reproduce it bit-for-bit.
Because the simulator is a pure function of this spec, the job's content
hash (:meth:`SimJob.key`) can address a persistent result store: two
invocations that build the same job get the same result without
re-simulating.

Keys are versioned with :data:`ENGINE_VERSION`; bump it whenever a
change to the simulator alters results for an unchanged spec, and every
stale store entry is invalidated at once (old versions live in separate
subdirectories the ``cache prune``/``clear`` ops can sweep).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.common.errors import ExecError

#: Bump when simulator semantics change so stored results are invalidated.
ENGINE_VERSION = 1

#: Scalar types allowed in NUcache overrides (must survive a JSON round
#: trip exactly for keys to be stable).
_SCALAR_TYPES = (bool, int, float, str)

_KINDS = ("workload", "single")


def _normalized_overrides(
    overrides: Dict[str, object]
) -> Tuple[Tuple[str, object], ...]:
    for name, value in overrides.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise ExecError(
                f"override {name}={value!r} is not a scalar; jobs only "
                f"accept {', '.join(t.__name__ for t in _SCALAR_TYPES)}"
            )
    return tuple(sorted(overrides.items()))


@dataclass(frozen=True)
class SimJob:
    """One simulation, fully specified.

    Attributes:
        kind: ``"workload"`` (one trace per member against a shared LLC
            sized for ``len(members)`` cores) or ``"single"`` (an alone
            run: one benchmark monopolizing an LLC sized for
            ``capacity_cores`` cores).
        members: benchmark names, one per core (exactly one for
            ``"single"`` jobs).
        policy: LLC policy name (see :func:`repro.sim.policies.make_llc`).
        accesses: trace length per core.
        seed: root RNG seed.
        warmup_fraction: fraction of each trace used to warm caches.
        prefetcher: per-core prefetcher name, ``"none"`` to disable.
        memory_model: ``"fixed"`` or ``"bandwidth"`` (workload jobs only).
        capacity_cores: single jobs: core count the LLC is sized for.
        overrides: sorted ``(name, value)`` NUcache config overrides.
    """

    members: Tuple[str, ...]
    policy: str
    accesses: int
    seed: int
    kind: str = "workload"
    warmup_fraction: float = 0.25
    prefetcher: str = "none"
    memory_model: str = "fixed"
    capacity_cores: int = 1
    overrides: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ExecError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not self.members:
            raise ExecError("a job needs at least one benchmark member")
        if self.kind == "single" and len(self.members) != 1:
            raise ExecError(
                f"single jobs take exactly one member, got {self.members!r}"
            )
        if self.accesses <= 0:
            raise ExecError(f"accesses must be positive, got {self.accesses}")
        if self.capacity_cores <= 0:
            raise ExecError(
                f"capacity_cores must be positive, got {self.capacity_cores}"
            )
        # Normalize so construction order of overrides never changes the key.
        object.__setattr__(self, "members", tuple(self.members))
        object.__setattr__(
            self, "overrides", tuple(sorted(tuple(pair) for pair in self.overrides))
        )

    # ------------------------------------------------------------------
    # Constructors mirroring the runner's public helpers
    # ------------------------------------------------------------------

    @classmethod
    def workload(
        cls,
        members: Sequence[str],
        policy: str,
        accesses: int,
        seed: Optional[int] = None,
        warmup_fraction: Optional[float] = None,
        prefetcher: str = "none",
        memory_model: str = "fixed",
        **overrides: object,
    ) -> "SimJob":
        """Job equivalent of :func:`repro.sim.runner.run_workload`."""
        from repro.common.rng import DEFAULT_SEED
        from repro.sim.runner import DEFAULT_WARMUP_FRACTION

        return cls(
            members=tuple(members),
            policy=policy,
            accesses=accesses,
            seed=DEFAULT_SEED if seed is None else seed,
            kind="workload",
            warmup_fraction=(
                DEFAULT_WARMUP_FRACTION if warmup_fraction is None else warmup_fraction
            ),
            prefetcher=prefetcher,
            memory_model=memory_model,
            overrides=_normalized_overrides(overrides),
        )

    @classmethod
    def mix(
        cls,
        mix_name: str,
        policy: str,
        accesses: int,
        seed: Optional[int] = None,
        **kwargs: object,
    ) -> "SimJob":
        """Job equivalent of :func:`repro.sim.runner.run_mix`."""
        from repro.workloads.mixes import mix_members

        return cls.workload(mix_members(mix_name), policy, accesses, seed, **kwargs)

    @classmethod
    def single(
        cls,
        benchmark_name: str,
        policy: str,
        accesses: int,
        seed: Optional[int] = None,
        capacity_cores: int = 1,
        warmup_fraction: Optional[float] = None,
        prefetcher: str = "none",
        **overrides: object,
    ) -> "SimJob":
        """Job equivalent of :func:`repro.sim.runner.run_single`."""
        from repro.common.rng import DEFAULT_SEED
        from repro.sim.runner import DEFAULT_WARMUP_FRACTION

        return cls(
            members=(benchmark_name,),
            policy=policy,
            accesses=accesses,
            seed=DEFAULT_SEED if seed is None else seed,
            kind="single",
            warmup_fraction=(
                DEFAULT_WARMUP_FRACTION if warmup_fraction is None else warmup_fraction
            ),
            prefetcher=prefetcher,
            capacity_cores=capacity_cores,
            overrides=_normalized_overrides(overrides),
        )

    @classmethod
    def alone(
        cls,
        benchmark_name: str,
        capacity_cores: int,
        accesses: int,
        seed: Optional[int] = None,
        policy: str = "lru",
    ) -> "SimJob":
        """The weighted-speedup denominator run: one benchmark, whole LLC."""
        return cls.single(
            benchmark_name, policy, accesses, seed, capacity_cores=capacity_cores
        )

    @property
    def expected_cores(self) -> int:
        """Core count a valid result for this job must report."""
        return 1 if self.kind == "single" else len(self.members)

    # ------------------------------------------------------------------
    # Content addressing and serialization
    # ------------------------------------------------------------------

    def spec(self) -> Dict[str, object]:
        """Canonical field dict (the hashed content)."""
        return {
            "kind": self.kind,
            "members": list(self.members),
            "policy": self.policy,
            "accesses": self.accesses,
            "seed": self.seed,
            "warmup_fraction": self.warmup_fraction,
            "prefetcher": self.prefetcher,
            "memory_model": self.memory_model,
            "capacity_cores": self.capacity_cores,
            "overrides": [[name, value] for name, value in self.overrides],
        }

    def key(self) -> str:
        """Stable content hash addressing this job's result in the store."""
        canon = json.dumps(
            {"engine_version": ENGINE_VERSION, "spec": self.spec()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (round-trips via from_dict)."""
        return self.spec()

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimJob":
        """Rebuild a job from :meth:`to_dict` output."""
        return cls(
            members=tuple(payload["members"]),
            policy=str(payload["policy"]),
            accesses=int(payload["accesses"]),
            seed=int(payload["seed"]),
            kind=str(payload["kind"]),
            warmup_fraction=float(payload["warmup_fraction"]),
            prefetcher=str(payload["prefetcher"]),
            memory_model=str(payload["memory_model"]),
            capacity_cores=int(payload["capacity_cores"]),
            overrides=tuple((name, value) for name, value in payload["overrides"]),
        )

    def describe(self) -> str:
        """Short human-readable label for progress reporting."""
        target = "+".join(self.members)
        extras = "".join(f" {name}={value}" for name, value in self.overrides)
        return f"{self.kind}:{target}@{self.policy} n={self.accesses}{extras}"


def execute_job(job: SimJob):
    """Run one job to completion and return its :class:`SimResult`.

    A module-level function so :class:`~concurrent.futures.ProcessPoolExecutor`
    workers can pickle it.  Imports lazily so forked workers pay the
    import cost only once (via the parent) and no import cycle forms
    between the exec and sim layers.

    When tracing is enabled (``REPRO_TRACE_DIR``, inherited by pool
    workers through the environment), the execution is wrapped in an
    ``exec.job`` span in *this* process's trace file — the "running"
    half of the job lifecycle, which the scheduler cannot observe from
    the parent process.
    """
    from repro.obs.trace import active_tracer

    tracer = active_tracer()
    if tracer is None:
        return _execute(job)
    with tracer.span(
        "exec.job", key=job.key()[:12], label=job.describe(), policy=job.policy
    ):
        return _execute(job)


def _execute(job: SimJob):
    """Dispatch a job spec to the matching runner helper."""
    from repro.sim.runner import run_single, run_workload

    overrides = dict(job.overrides)
    if job.kind == "single":
        return run_single(
            job.members[0],
            job.policy,
            job.accesses,
            job.seed,
            num_cores_capacity=job.capacity_cores,
            warmup_fraction=job.warmup_fraction,
            prefetcher=job.prefetcher,
            **overrides,
        )
    return run_workload(
        job.members,
        job.policy,
        None,
        job.accesses,
        job.seed,
        job.warmup_fraction,
        job.prefetcher,
        job.memory_model,
        **overrides,
    )
