"""Append-only run journal: what did this invocation do, and how far did it get.

Every ``nucache-repro run`` writes a manifest of its progress as one
JSONL file under ``<store base>/runs/<run-id>.jsonl`` (override the base
with ``$REPRO_CACHE_DIR`` as usual).  Each line is one self-contained
record::

    {"record": "start", "run_id": ..., "experiments": [...], ...}
    {"record": "experiment_start", "experiment": "fig5", ...}
    {"record": "batch", "jobs": 24, "outcomes": {...}, "report": {...}}
    {"record": "experiment_end", "experiment": "fig5", "status": "ok",
     "output_sha256": ..., ...}
    {"record": "end", "status": "completed" | "interrupted" | "failed"}

Records are flushed and fsynced as they are written, so a crash or
SIGKILL loses at most the line in flight — and the reader side
(:func:`read_records`) tolerates a truncated final line.  The journal is
what makes runs *resumable*: ``run --resume <run-id>`` loads the
manifest, skips experiments that already completed, and re-runs the
rest, with the content-addressed result store serving every job that
settled before the interruption.  ``nucache-repro runs list``/``show``
inspect past runs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.common.errors import ExecError
from repro.exec.store import default_store_dir

#: Subdirectory of the store base where journals live.
RUNS_DIR_NAME = "runs"


def default_runs_dir() -> Path:
    """Where journals live (shares the result store's base directory)."""
    return default_store_dir() / RUNS_DIR_NAME


def new_run_id(now: Optional[float] = None) -> str:
    """A sortable, human-readable run id: ``YYYYmmdd-HHMMSS-<pid>``."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(now))
    return f"{stamp}-p{os.getpid()}"


@dataclass
class RunSummary:
    """One journal, digested for listings and resume planning."""

    run_id: str
    path: Path
    created: float = 0.0
    status: str = "unknown"
    experiments: List[str] = field(default_factory=list)
    completed: List[str] = field(default_factory=list)
    jobs_total: int = 0
    jobs_failed: int = 0
    resumed_from: Optional[str] = None

    @property
    def pending(self) -> List[str]:
        """Experiments the run never finished, in original order."""
        done = set(self.completed)
        return [exp for exp in self.experiments if exp not in done]

    def describe(self) -> str:
        """One-line listing entry."""
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.created))
        exps = f"{len(self.completed)}/{len(self.experiments)} experiments"
        tail = f", {self.jobs_failed} jobs failed" if self.jobs_failed else ""
        origin = f" (resumed from {self.resumed_from})" if self.resumed_from else ""
        return f"{self.run_id}  {when}  {self.status:<11} {exps}{tail}{origin}"


class RunJournal:
    """Writer handle for one run's append-only manifest."""

    def __init__(self, path: Path, run_id: str) -> None:
        self.path = path
        self.run_id = run_id
        self.closed = False

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        experiments: Sequence[str],
        jobs: int = 1,
        use_cache: bool = True,
        run_id: Optional[str] = None,
        root: Optional[Union[str, Path]] = None,
        resumed_from: Optional[str] = None,
    ) -> "RunJournal":
        """Open a fresh journal and write its ``start`` record."""
        runs_root = Path(root) if root is not None else default_runs_dir()
        runs_root.mkdir(parents=True, exist_ok=True)
        rid = run_id or new_run_id()
        path = runs_root / f"{rid}.jsonl"
        suffix = 0
        while path.exists():
            suffix += 1
            rid = f"{run_id or new_run_id()}-{suffix}"
            path = runs_root / f"{rid}.jsonl"
        journal = cls(path, rid)
        journal.append(
            {
                "record": "start",
                "run_id": rid,
                "experiments": list(experiments),
                "jobs": jobs,
                "use_cache": use_cache,
                "resumed_from": resumed_from,
            }
        )
        return journal

    def append(self, record: Dict[str, object]) -> None:
        """Write one record as a JSON line, durably (flush + fsync)."""
        if self.closed:
            return
        payload = dict(record)
        payload.setdefault("time", time.time())
        line = json.dumps(payload, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def record_experiment_start(self, experiment_id: str) -> None:
        """Mark an experiment as begun."""
        self.append({"record": "experiment_start", "experiment": experiment_id})

    def record_batch(
        self,
        outcomes: Dict[str, Dict[str, object]],
        report,
        label: Optional[str] = None,
        status: str = "ok",
    ) -> None:
        """Record one scheduler batch: job keys, outcomes, and the report."""
        payload: Dict[str, object] = {
            "record": "batch",
            "status": status,
            "label": label,
            "jobs": len(outcomes),
            "outcomes": outcomes,
        }
        if report is not None:
            payload["report"] = {
                "total": report.total,
                "completed": report.completed,
                "cached": report.cached,
                "failed": report.failed,
                "retried": report.retried,
                "wall_time": report.wall_time,
            }
            # Robustness counters ride in a separate key, and only when
            # something actually happened — a healthy run's batch
            # records stay byte-identical to pre-lease journals.
            store_fields = getattr(report, "store_fields", None)
            if store_fields is not None:
                extras = store_fields()
                if extras:
                    payload["store"] = extras
        self.append(payload)

    def record_experiment_end(
        self,
        experiment_id: str,
        status: str = "ok",
        output_sha256: Optional[str] = None,
        elapsed: Optional[float] = None,
    ) -> None:
        """Mark an experiment as finished (or interrupted/failed)."""
        self.append(
            {
                "record": "experiment_end",
                "experiment": experiment_id,
                "status": status,
                "output_sha256": output_sha256,
                "elapsed": elapsed,
            }
        )

    def close(self, status: str, error: Optional[str] = None) -> None:
        """Write the terminal ``end`` record; later appends are ignored."""
        self.append({"record": "end", "status": status, "error": error})
        self.closed = True


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


def load_journal(
    path: Union[str, Path]
) -> "tuple[List[Dict[str, object]], List[str]]":
    """Parse a journal file into ``(records, warnings)``.

    The valid prefix is always returned.  A truncated final line — the
    expected damage from a hard kill mid-``append`` — yields a single
    "torn tail" warning; an unparsable record *before* other valid ones
    means real corruption, so each such line gets its own warning with
    its line number.  Callers that only want the records can use
    :func:`read_records`; ``runs show`` surfaces the warnings.
    """
    records: List[Dict[str, object]] = []
    warnings: List[str] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ExecError(f"cannot read journal {path}: {exc}") from exc
    bad: List[int] = []  # 1-based line numbers that failed to parse
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except ValueError:
            bad.append(lineno)
            continue
        if not isinstance(record, dict):
            bad.append(lineno)
            continue
        for earlier in bad:
            warnings.append(
                f"journal {Path(path).name}: line {earlier} is corrupt; skipped"
            )
        bad = []
        records.append(record)
    if bad:
        # Unparsable lines with nothing valid after them: a torn tail
        # from an interrupted write, not mid-file corruption.
        warnings.append(
            f"journal {Path(path).name}: torn trailing record "
            f"(line {bad[0]}) dropped; showing the valid prefix"
        )
    return records, warnings


def read_records(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a journal file, tolerating truncated/corrupt lines.

    Convenience wrapper over :func:`load_journal` that discards the
    warnings (resume planning and listings only need the records).
    """
    records, _warnings = load_journal(path)
    return records


def summarize(path: Union[str, Path]) -> RunSummary:
    """Digest one journal file into a :class:`RunSummary`."""
    path = Path(path)
    summary = RunSummary(run_id=path.stem, path=path)
    for record in read_records(path):
        kind = record.get("record")
        if kind == "start":
            summary.run_id = str(record.get("run_id", summary.run_id))
            summary.created = float(record.get("time", 0.0))
            summary.experiments = [str(e) for e in record.get("experiments", [])]
            raw_origin = record.get("resumed_from")
            summary.resumed_from = str(raw_origin) if raw_origin else None
            summary.status = "running"
        elif kind == "experiment_end" and record.get("status") == "ok":
            summary.completed.append(str(record.get("experiment")))
        elif kind == "batch":
            report = record.get("report") or {}
            summary.jobs_total += int(report.get("total", 0))
            summary.jobs_failed += int(report.get("failed", 0))
        elif kind == "end":
            summary.status = str(record.get("status", "unknown"))
    if summary.status == "running":
        # No end record: the process died without closing the journal.
        summary.status = "aborted"
    return summary


def list_runs(root: Optional[Union[str, Path]] = None) -> List[RunSummary]:
    """Summaries of every journal under ``root``, newest first."""
    runs_root = Path(root) if root is not None else default_runs_dir()
    if not runs_root.is_dir():
        return []
    summaries = [summarize(path) for path in runs_root.glob("*.jsonl")]
    summaries.sort(key=lambda s: (s.created, s.run_id), reverse=True)
    return summaries


def find_run(
    run_id: str, root: Optional[Union[str, Path]] = None
) -> RunSummary:
    """Resolve a run id (or unambiguous prefix) to its summary."""
    runs_root = Path(root) if root is not None else default_runs_dir()
    exact = runs_root / f"{run_id}.jsonl"
    if exact.is_file():
        return summarize(exact)
    matches = [
        path for path in sorted(runs_root.glob("*.jsonl"))
        if path.stem.startswith(run_id)
    ] if runs_root.is_dir() else []
    if not matches:
        raise ExecError(
            f"no run journal matching {run_id!r} under {runs_root} "
            f"(see 'nucache-repro runs list')"
        )
    if len(matches) > 1:
        names = ", ".join(path.stem for path in matches[:5])
        raise ExecError(f"run id prefix {run_id!r} is ambiguous: {names}")
    return summarize(matches[0])
