"""Process-wide execution defaults and the grid entry point.

The experiment drivers are plain functions — threading a worker count
and a cache flag through every one of them would bloat each signature
for a setting that is global by nature (one CLI invocation, one worker
budget).  Instead this module holds a single :class:`ExecConfig` the CLI
(``run --jobs N --no-cache``), the benchmark conftest and tests
configure, and :func:`run_jobs` — the one call every grid goes through.

Defaults come from the environment so non-CLI entry points (pytest, the
examples, notebooks) inherit them too:

* ``REPRO_JOBS`` — default worker count (``1`` = serial).
* ``REPRO_CACHE_DIR`` — result-store location (see
  :mod:`repro.exec.stores`).
* ``REPRO_STORE`` — store backend (``fs``/``sqlite`` or a
  ``backend://path`` URL).

Run-wide totals are accumulated across batches so the CLI can report
completed/cached/failed counts per experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.errors import ExecError, RunInterrupted
from repro.exec.faults import FaultPlan, FaultyExecute, FaultyStore
from repro.exec.job import SimJob, execute_job
from repro.exec.journal import RunJournal
from repro.exec.scheduler import BatchReport, ProgressHook, Scheduler
from repro.exec.stores import AbstractResultStore, make_store
from repro.sim.engine import SimResult

#: Environment variable giving the default worker count.
JOBS_ENV_VAR = "REPRO_JOBS"


def _default_jobs() -> int:
    raw = os.environ.get(JOBS_ENV_VAR)
    if raw is None:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ExecError(f"{JOBS_ENV_VAR} must be an integer, got {raw!r}") from None
    if jobs <= 0:
        raise ExecError(f"{JOBS_ENV_VAR} must be positive, got {jobs}")
    return jobs


@dataclass
class ExecConfig:
    """Process-wide scheduler defaults."""

    jobs: int = 1
    use_cache: bool = True
    timeout: Optional[float] = None
    retries: int = 1
    progress: Optional[ProgressHook] = None
    #: When set, every executed job runs under cProfile and dumps its
    #: stats here (``run --profile``); empty/None disables profiling.
    profile_dir: Optional[str] = None
    #: Store backend spec (``fs``/``sqlite`` or a ``backend://path``
    #: URL); ``None`` defers to ``$REPRO_STORE``, defaulting to ``fs``.
    store: Optional[str] = None


_config: Optional[ExecConfig] = None
_totals = BatchReport()
_journal: Optional[RunJournal] = None


def current() -> ExecConfig:
    """The active config (built from the environment on first use)."""
    global _config
    if _config is None:
        _config = ExecConfig(jobs=_default_jobs())
    return _config


def configure(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    profile_dir: Optional[str] = None,
    store: Optional[str] = None,
) -> ExecConfig:
    """Override execution defaults; ``None`` leaves a field untouched.

    ``profile_dir`` and ``store`` accept the empty string to switch back
    to their defaults (``None`` means "leave as is", like every other
    field).
    """
    config = current()
    if jobs is not None:
        if jobs <= 0:
            raise ExecError(f"jobs must be positive, got {jobs}")
        config.jobs = int(jobs)
    if use_cache is not None:
        config.use_cache = bool(use_cache)
    if timeout is not None:
        config.timeout = timeout
    if retries is not None:
        config.retries = retries
    if progress is not None:
        config.progress = progress
    if profile_dir is not None:
        config.profile_dir = profile_dir or None
    if store is not None:
        config.store = store or None
    return config


def reset() -> None:
    """Drop overrides; the next use re-reads the environment."""
    global _config, _journal
    _config = None
    _journal = None
    reset_totals()


def set_journal(journal: Optional[RunJournal]) -> None:
    """Attach (or detach, with ``None``) the active run journal.

    While attached, every batch resolved by :func:`run_jobs` appends a
    ``batch`` record — job keys, outcomes, report — to the journal.
    """
    global _journal
    _journal = journal


def active_journal() -> Optional[RunJournal]:
    """The run journal currently receiving batch records, if any."""
    return _journal


def resolve_store() -> Optional[AbstractResultStore]:
    """The result store per current config (``None`` when caching is off).

    Built fresh each call so ``REPRO_CACHE_DIR``/``REPRO_STORE`` changes
    (e.g. a test pointing the store at a tmpdir) take effect immediately.
    The backend comes from :attr:`ExecConfig.store` when set, otherwise
    the environment (see :func:`repro.exec.stores.make_store`).
    """
    config = current()
    if not config.use_cache:
        return None
    return make_store(config.store)


def get_scheduler(progress: Optional[ProgressHook] = None) -> Scheduler:
    """A scheduler honouring the current process-wide config.

    When ``REPRO_FAULTS`` is set (see :mod:`repro.exec.faults`), the job
    runner and store are wrapped with deterministic fault injectors —
    the chaos-testing entry point for full CLI runs.
    """
    config = current()
    store = resolve_store()
    execute = execute_job
    plan = FaultPlan.from_env()
    if plan is not None:
        execute = FaultyExecute(plan)
        if store is not None:
            store = FaultyStore(store, plan)
    if config.profile_dir:
        from repro.obs.profile import ProfiledExecute

        execute = ProfiledExecute(execute, config.profile_dir)
    return Scheduler(
        jobs=config.jobs,
        store=store,
        timeout=config.timeout,
        retries=config.retries,
        progress=progress if progress is not None else config.progress,
        execute=execute,
    )


def run_jobs(
    batch: Sequence[SimJob], label: Optional[str] = None
) -> List[SimResult]:
    """Resolve a batch of jobs under the process-wide defaults.

    This is the call every experiment grid funnels through: cache-first,
    parallel on miss, results in submission order.  Batch outcomes are
    folded into the run-wide totals for CLI reporting and, when a run
    journal is attached, appended to the manifest (including the partial
    outcomes of an interrupted batch, which is what makes ``--resume``
    work).
    """
    scheduler = get_scheduler()
    try:
        results = scheduler.run(batch)
    except RunInterrupted as exc:
        if exc.report is not None:
            _totals.merge(exc.report)
        if _journal is not None:
            _journal.record_batch(
                exc.outcomes, exc.report, label=label, status="interrupted"
            )
        raise
    if scheduler.last_report is not None:
        _totals.merge(scheduler.last_report)
    if _journal is not None:
        _journal.record_batch(
            scheduler.last_outcomes, scheduler.last_report, label=label
        )
    registry = metrics_registry()
    if registry is not None:
        from repro.metrics.basic import observe_outcomes, observe_results

        observe_results(registry, results)
        observe_outcomes(registry, scheduler.last_outcomes)
    return results


def metrics_registry():
    """The active :class:`~repro.obs.metrics.MetricsRegistry`, if any.

    Thin indirection over :func:`repro.obs.metrics.active_registry` so
    this module's callers need no direct obs import.
    """
    from repro.obs.metrics import active_registry

    return active_registry()


def totals() -> BatchReport:
    """Run-wide outcome totals accumulated since the last reset."""
    snapshot = BatchReport()
    snapshot.merge(_totals)
    return snapshot


def reset_totals() -> None:
    """Zero the run-wide totals (the CLI calls this per experiment)."""
    global _totals
    _totals = BatchReport()
