"""The batch scheduler: cache-first, parallel on miss.

A :class:`Scheduler` takes a batch of :class:`~repro.exec.job.SimJob`
specs and returns their results in submission order.  The pipeline:

1. **Dedup** — identical jobs (same content key) are simulated once and
   fanned back out to every occurrence; experiment grids repeat alone
   runs heavily, so this alone saves real work.
2. **Cache lookup** — if a :class:`~repro.exec.store.ResultStore` is
   attached, every unique job is first looked up by content hash.
3. **Execute** — misses run through a ``ProcessPoolExecutor`` when more
   than one worker is configured (and there is more than one miss),
   else inline.  Each miss gets ``1 + retries`` attempts; a worker
   crash (``BrokenProcessPool``) or per-job timeout tears the pool down,
   and surviving work is resubmitted to a fresh pool without being
   charged an attempt.
4. **Report** — an optional progress callback receives one event per
   resolved job plus a final ``batch`` event carrying the
   :class:`BatchReport` (completed/cached/failed counts and wall time).

Simulations are pure functions of their job spec, so a batch's results
are identical regardless of worker count or cache state — the
equivalence tests in ``tests/test_exec.py`` pin this down.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import ExecError
from repro.exec.job import SimJob, execute_job
from repro.exec.store import ResultStore
from repro.sim.engine import SimResult

#: Signature of the progress hook: receives event dicts with at least an
#: ``"event"`` field (``cached`` / ``completed`` / ``failed`` / ``retry``
#: / ``batch``).
ProgressHook = Callable[[Dict[str, object]], None]


@dataclass
class BatchReport:
    """Outcome counts for one scheduler batch (occurrence-weighted)."""

    total: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    retried: int = 0
    wall_time: float = 0.0

    @property
    def cache_fraction(self) -> float:
        """Fraction of the batch served from the result store."""
        if self.total == 0:
            return 0.0
        return self.cached / self.total

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.total} jobs: {self.completed} computed, "
            f"{self.cached} cached, {self.failed} failed "
            f"({self.retried} retried) in {self.wall_time:.2f}s"
        )

    def merge(self, other: "BatchReport") -> None:
        """Accumulate another report into this one (for run-wide totals)."""
        self.total += other.total
        self.completed += other.completed
        self.cached += other.cached
        self.failed += other.failed
        self.retried += other.retried
        self.wall_time += other.wall_time


@dataclass
class _JobState:
    """Bookkeeping for one unique job within a batch."""

    job: SimJob
    indices: List[int] = field(default_factory=list)
    attempts: int = 0
    error: Optional[str] = None


class Scheduler:
    """Fans a batch of simulation jobs across worker processes.

    Args:
        jobs: worker process count; ``<= 1`` runs every job inline in
            this process (the strictly serial path).
        store: result store for cache-first execution, or ``None`` to
            always recompute (``--no-cache``).
        timeout: per-job wall-clock limit in seconds (pool mode only —
            an inline job cannot be preempted).
        retries: extra attempts a job gets after a crash, timeout or
            error before counting as failed.
        progress: optional event hook (see :data:`ProgressHook`).
        strict: raise :class:`~repro.common.errors.ExecError` if any job
            is still failed after retries; when ``False``, failed slots
            come back as ``None`` and only the report records them.
        execute: the job runner (overridable for tests; must be
            picklable when running with a process pool).
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress: Optional[ProgressHook] = None,
        strict: bool = True,
        execute: Callable[[SimJob], SimResult] = execute_job,
    ) -> None:
        if retries < 0:
            raise ExecError(f"retries must be >= 0, got {retries}")
        self.jobs = max(1, int(jobs))
        self.store = store
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.strict = strict
        self.execute = execute
        self.last_report: Optional[BatchReport] = None

    # ------------------------------------------------------------------

    def _emit(self, event: str, state: _JobState, done: int, total: int) -> None:
        if self.progress is None:
            return
        self.progress(
            {
                "event": event,
                "job": state.job,
                "key": state.job.key(),
                "label": state.job.describe(),
                "error": state.error,
                "done": done,
                "total": total,
            }
        )

    def run(self, batch: Sequence[SimJob]) -> List[Optional[SimResult]]:
        """Resolve every job of ``batch``, in order.

        Returns one :class:`SimResult` per submitted job (duplicates
        share one simulation).  With ``strict=True`` (the default) a job
        that fails after retries raises; otherwise its slot is ``None``.
        """
        started = time.monotonic()
        report = BatchReport(total=len(batch))
        results: List[Optional[SimResult]] = [None] * len(batch)

        # Dedup by content key, preserving first-seen order.
        states: Dict[str, _JobState] = {}
        for index, job in enumerate(batch):
            state = states.setdefault(job.key(), _JobState(job=job))
            state.indices.append(index)
        unique = list(states.values())

        def settle(state: _JobState, result: SimResult, cached: bool) -> None:
            for index in state.indices:
                results[index] = result
            if cached:
                report.cached += len(state.indices)
            else:
                report.completed += len(state.indices)
            done = report.cached + report.completed + report.failed
            self._emit("cached" if cached else "completed", state, done, report.total)

        failures: List[_JobState] = []

        def fail(state: _JobState) -> None:
            failures.append(state)
            report.failed += len(state.indices)
            done = report.cached + report.completed + report.failed
            self._emit("failed", state, done, report.total)

        # Cache-first pass.
        misses: List[_JobState] = []
        for state in unique:
            stored = self.store.get(state.job) if self.store is not None else None
            if stored is not None:
                settle(state, stored, cached=True)
            else:
                misses.append(state)

        # Execute misses, retrying per job.
        pending = list(misses)
        while pending:
            use_pool = self.jobs > 1 and len(pending) > 1
            completed, retry, failed = (
                self._run_pool(pending) if use_pool else self._run_inline(pending)
            )
            for state, result in completed:
                if self.store is not None:
                    self.store.put(state.job, result)
                settle(state, result, cached=False)
            for state in failed:
                fail(state)
            for state in retry:
                report.retried += 1
                self._emit("retry", state, report.cached + report.completed + report.failed, report.total)
            pending = retry

        report.wall_time = time.monotonic() - started
        self.last_report = report
        if self.progress is not None:
            self.progress({"event": "batch", "report": report})
        if self.strict and report.failed:
            details = "; ".join(
                f"{state.job.describe()}: {state.error}" for state in failures[:5]
            )
            raise ExecError(
                f"{report.failed} of {report.total} jobs failed after "
                f"{self.retries} retries — {details}"
            )
        return results

    # ------------------------------------------------------------------
    # Execution backends.  Both return (completed, retry, failed) where
    # completed pairs each state with its result.
    # ------------------------------------------------------------------

    def _charge(self, state: _JobState, error: str):
        """Record a failed attempt; route the job to retry or failure."""
        state.attempts += 1
        state.error = error
        return state.attempts <= self.retries

    def _run_inline(self, pending: List[_JobState]):
        completed, retry, failed = [], [], []
        for state in pending:
            try:
                completed.append((state, self.execute(state.job)))
            except Exception as exc:  # noqa: BLE001 — converted to job failure
                (retry if self._charge(state, repr(exc)) else failed).append(state)
        return completed, retry, failed

    def _run_pool(self, pending: List[_JobState]):
        completed, retry, failed = [], [], []
        workers = min(self.jobs, len(pending))
        pool = ProcessPoolExecutor(max_workers=workers)
        futures = [(state, pool.submit(self.execute, state.job)) for state in pending]
        pool_dead = False
        try:
            for state, future in futures:
                if pool_dead:
                    # The pool died mid-batch.  Jobs that finished before
                    # the break still hold results; the rest are requeued
                    # without being charged an attempt (they never ran).
                    try:
                        completed.append((state, future.result(timeout=0)))
                    except Exception:  # noqa: BLE001
                        retry.append(state)
                    continue
                try:
                    completed.append((state, future.result(timeout=self.timeout)))
                except FutureTimeout:
                    pool_dead = True
                    self._terminate_workers(pool)
                    if self._charge(state, f"timed out after {self.timeout}s"):
                        retry.append(state)
                    else:
                        failed.append(state)
                except BrokenProcessPool:
                    pool_dead = True
                    if self._charge(state, "worker process crashed"):
                        retry.append(state)
                    else:
                        failed.append(state)
                except Exception as exc:  # noqa: BLE001 — converted to job failure
                    (retry if self._charge(state, repr(exc)) else failed).append(state)
        finally:
            if pool_dead:
                self._terminate_workers(pool)
            pool.shutdown(wait=not pool_dead, cancel_futures=True)
        return completed, retry, failed

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Best-effort kill of a pool whose work must not be awaited."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already dying
                pass
