"""The batch scheduler: cache-first, parallel on miss, resilient to faults.

A :class:`Scheduler` takes a batch of :class:`~repro.exec.job.SimJob`
specs and returns their results in submission order.  The pipeline:

1. **Dedup** — identical jobs (same content key) are simulated once and
   fanned back out to every occurrence; experiment grids repeat alone
   runs heavily, so this alone saves real work.
2. **Cache lookup** — if a :class:`~repro.exec.store.ResultStore` is
   attached, every unique job is first looked up by content hash (the
   store validates and quarantines bad entries on read).
3. **Execute** — misses run through a ``ProcessPoolExecutor`` when more
   than one worker is configured (and there is more than one miss),
   else inline.  Each miss gets ``1 + retries`` attempts; a worker
   crash (``BrokenProcessPool``) or per-job timeout tears the pool down,
   and surviving work is resubmitted to a fresh pool without being
   charged an attempt.  Retry rounds are separated by exponential
   backoff with deterministic jitter.  Every fresh result is checked
   against the engine invariants (:mod:`repro.exec.validate`) before it
   is accepted or persisted.
4. **Report** — an optional progress callback receives one event per
   resolved job plus a final ``batch`` event carrying the
   :class:`BatchReport`; per-job outcomes land in
   :attr:`Scheduler.last_outcomes` for the run journal.

SIGINT/SIGTERM during :meth:`Scheduler.run` are handled gracefully: the
scheduler stops dispatching, harvests whatever already finished (and
persists it to the store), then raises
:class:`~repro.common.errors.RunInterrupted` carrying the partial report
and outcomes — so an interrupted run leaves a resumable trail instead of
a stack trace.

Simulations are pure functions of their job spec, so a batch's results
are identical regardless of worker count, cache state, or injected
faults that retries absorb — ``tests/test_exec.py`` and
``tests/test_faults.py`` pin this down.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback as traceback_module
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ExecError, RunInterrupted
from repro.common.rng import DEFAULT_SEED, make_rng
from repro.exec.job import SimJob, execute_job
from repro.exec.store import ResultStore
from repro.exec.validate import validate_result
from repro.obs.trace import active_tracer
from repro.sim.engine import SimResult

#: Signature of the progress hook: receives event dicts with at least an
#: ``"event"`` field (``cached`` / ``completed`` / ``failed`` / ``retry``
#: / ``interrupted`` / ``batch``).
ProgressHook = Callable[[Dict[str, object]], None]

#: How often the pool path polls a future, so interrupts and timeouts
#: are noticed promptly without busy-waiting.
_POLL_SECONDS = 0.1


@dataclass
class BatchReport:
    """Outcome counts for one scheduler batch (occurrence-weighted)."""

    total: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    retried: int = 0
    interrupted: int = 0
    wall_time: float = 0.0

    @property
    def cache_fraction(self) -> float:
        """Fraction of the batch served from the result store."""
        if self.total == 0:
            return 0.0
        return self.cached / self.total

    def describe(self) -> str:
        """One-line human-readable summary."""
        line = (
            f"{self.total} jobs: {self.completed} computed, "
            f"{self.cached} cached, {self.failed} failed "
            f"({self.retried} retried)"
        )
        if self.interrupted:
            line += f", {self.interrupted} interrupted"
        return f"{line} in {self.wall_time:.2f}s"

    def merge(self, other: "BatchReport") -> None:
        """Accumulate another report into this one (for run-wide totals)."""
        self.total += other.total
        self.completed += other.completed
        self.cached += other.cached
        self.failed += other.failed
        self.retried += other.retried
        self.interrupted += other.interrupted
        self.wall_time += other.wall_time


def _report_fields(report: "BatchReport") -> Dict[str, object]:
    """Flatten a report into scalar fields for a trace event."""
    return {
        "total": report.total,
        "completed": report.completed,
        "cached": report.cached,
        "failed": report.failed,
        "retried": report.retried,
        "interrupted": report.interrupted,
        "wall_time": report.wall_time,
    }


def _format_error(exc: BaseException) -> str:
    """Full traceback text of an exception, worker frames included.

    ``concurrent.futures`` re-raises worker exceptions in the parent
    with the worker-side traceback attached as the ``__cause__`` chain
    (``_RemoteTraceback``), and :func:`traceback.format_exception`
    renders that chain — so the string a pooled job records is the same
    one an inline job would have produced, which is what the journal and
    ``runs show`` need for postmortems.
    """
    return "".join(
        traceback_module.format_exception(type(exc), exc, exc.__traceback__)
    )


@dataclass
class _JobState:
    """Bookkeeping for one unique job within a batch."""

    job: SimJob
    indices: List[int] = field(default_factory=list)
    attempts: int = 0
    error: Optional[str] = None
    timings: List[float] = field(default_factory=list)
    #: Full traceback of the last raised exception (None for failures
    #: that raise nothing, e.g. timeouts and result-validation refusals).
    traceback: Optional[str] = None
    #: Violated invariants / state snapshot carried by an
    #: :class:`~repro.common.errors.InvariantViolation`, when that is
    #: what the job died of.
    violations: Optional[List[str]] = None
    snapshot: Optional[Dict[str, object]] = None


class _Interrupted(Exception):
    """Internal: the interrupt flag was observed while awaiting a future."""


class Scheduler:
    """Fans a batch of simulation jobs across worker processes.

    Args:
        jobs: worker process count; ``<= 1`` runs every job inline in
            this process (the strictly serial path).
        store: result store for cache-first execution, or ``None`` to
            always recompute (``--no-cache``).
        timeout: per-job wall-clock limit in seconds (pool mode only —
            an inline job cannot be preempted).
        retries: extra attempts a job gets after a crash, timeout or
            error before counting as failed.
        progress: optional event hook (see :data:`ProgressHook`).
        strict: raise :class:`~repro.common.errors.ExecError` if any job
            is still failed after retries; when ``False``, failed slots
            come back as ``None`` and only the report records them.
        execute: the job runner (overridable for tests and fault
            injection; must be picklable when running with a process
            pool).
        validate: check every fresh result against the engine invariants
            before accepting it; an invalid result is charged as a
            failed attempt and never persisted.
        backoff_base: first retry-round delay in seconds (0 disables
            backoff entirely).
        backoff_cap: upper bound on any single retry-round delay.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress: Optional[ProgressHook] = None,
        strict: bool = True,
        execute: Callable[[SimJob], SimResult] = execute_job,
        validate: bool = True,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        if retries < 0:
            raise ExecError(f"retries must be >= 0, got {retries}")
        if backoff_base < 0 or backoff_cap < 0:
            raise ExecError("backoff_base and backoff_cap must be >= 0")
        self.jobs = max(1, int(jobs))
        self.store = store
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.strict = strict
        self.execute = execute
        self.validate = validate
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.last_report: Optional[BatchReport] = None
        #: Per-unique-job outcome of the last run, keyed by content hash:
        #: ``{"status", "attempts", "error", "label", "occurrences"}``.
        self.last_outcomes: Dict[str, Dict[str, object]] = {}
        self._interrupted = False
        self._tracer = None

    # ------------------------------------------------------------------

    def _emit(
        self,
        event: str,
        state: _JobState,
        done: int,
        total: int,
        **extra: object,
    ) -> None:
        if self._tracer is not None:
            self._tracer.event(
                "exec.job",
                status=event,
                key=state.job.key()[:12],
                label=state.job.describe(),
                attempts=state.attempts,
                done=done,
                total=total,
                **{
                    name: value
                    for name, value in extra.items()
                    if isinstance(value, (bool, int, float, str)) or value is None
                },
            )
        if self.progress is None:
            return
        record: Dict[str, object] = {
            "event": event,
            "job": state.job,
            "key": state.job.key(),
            "label": state.job.describe(),
            "error": state.error,
            "done": done,
            "total": total,
        }
        record.update(extra)
        self.progress(record)

    def _record_outcome(self, state: _JobState, status: str) -> None:
        self.last_outcomes[state.job.key()] = {
            "status": status,
            "attempts": state.attempts,
            "error": state.error,
            "label": state.job.describe(),
            "occurrences": len(state.indices),
            # Per-attempt settle times (seconds); empty for cache hits.
            # Serial runs time the attempt itself; pooled runs time
            # submission-to-settle (queue wait included) — for pure
            # execution durations see the trace's exec.job spans.
            # `runs show <id> --timings` renders these from the journal.
            "timings": [round(elapsed, 6) for elapsed in state.timings],
        }
        # Failure forensics — only for jobs that actually ended failed
        # (a retried-then-recovered job's old traceback is noise), and
        # only the keys with content, so healthy journals stay compact.
        if status != "failed":
            return
        outcome = self.last_outcomes[state.job.key()]
        if state.traceback:
            outcome["traceback"] = state.traceback
        if state.violations:
            outcome["violations"] = list(state.violations)
        if state.snapshot:
            outcome["snapshot"] = state.snapshot

    # ------------------------------------------------------------------
    # Interrupt plumbing
    # ------------------------------------------------------------------

    def _install_signal_handlers(self) -> List[Tuple[int, object]]:
        """Trade SIGINT/SIGTERM for a drain flag while a batch runs.

        Only possible from the main thread; elsewhere (or where signals
        are unavailable) the batch simply runs uninterruptible, which is
        the pre-existing behavior.
        """
        if threading.current_thread() is not threading.main_thread():
            return []

        def _flag(_signum, _frame) -> None:
            self._interrupted = True

        installed: List[Tuple[int, object]] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                installed.append((signum, signal.signal(signum, _flag)))
            except (ValueError, OSError):  # non-main interpreter quirks
                continue
        return installed

    @staticmethod
    def _restore_signal_handlers(installed: List[Tuple[int, object]]) -> None:
        for signum, previous in installed:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError, TypeError):
                continue

    def _await(self, future: "Future", timeout: Optional[float]):
        """Wait on a future in short polls so interrupts stay responsive.

        Raises :class:`_Interrupted` when the drain flag is set and
        :class:`FutureTimeout` when ``timeout`` elapses.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._interrupted:
                raise _Interrupted()
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise FutureTimeout()
            wait = _POLL_SECONDS if remaining is None else min(_POLL_SECONDS, remaining)
            try:
                return future.result(timeout=wait)
            except FutureTimeout:
                continue

    # ------------------------------------------------------------------

    def _backoff_delay(self, round_no: int, retry: Sequence[_JobState]) -> float:
        """Deterministic exponential backoff before retry round ``round_no``.

        The jitter stream is seeded from the retrying jobs' content keys
        (via :mod:`repro.common.rng`), so a given batch backs off
        identically on every run and machine.
        """
        if self.backoff_base <= 0:
            return 0.0
        label = "retry-backoff:%d:%s" % (
            round_no,
            ",".join(sorted(state.job.key() for state in retry)[:4]),
        )
        jitter = 0.5 + 0.5 * float(make_rng(DEFAULT_SEED, label).random())
        return min(self.backoff_cap, self.backoff_base * (2 ** (round_no - 1))) * jitter

    def run(self, batch: Sequence[SimJob]) -> List[Optional[SimResult]]:
        """Resolve every job of ``batch``, in order.

        Returns one :class:`SimResult` per submitted job (duplicates
        share one simulation).  With ``strict=True`` (the default) a job
        that fails after retries raises; a SIGINT/SIGTERM mid-batch
        raises :class:`~repro.common.errors.RunInterrupted` after
        persisting everything that finished; otherwise failed slots are
        ``None`` and only the report records them.
        """
        started = time.monotonic()
        report = BatchReport(total=len(batch))
        results: List[Optional[SimResult]] = [None] * len(batch)
        self._interrupted = False
        self.last_outcomes = {}
        self._tracer = active_tracer()

        # Dedup by content key, preserving first-seen order.
        states: Dict[str, _JobState] = {}
        for index, job in enumerate(batch):
            state = states.setdefault(job.key(), _JobState(job=job))
            state.indices.append(index)
        unique = list(states.values())
        if self._tracer is not None:
            self._tracer.event(
                "exec.batch_start", total=len(batch), unique=len(unique)
            )

        def settle(state: _JobState, result: SimResult, cached: bool) -> None:
            for index in state.indices:
                results[index] = result
            if cached:
                report.cached += len(state.indices)
            else:
                report.completed += len(state.indices)
            done = report.cached + report.completed + report.failed
            self._record_outcome(state, "cached" if cached else "completed")
            self._emit("cached" if cached else "completed", state, done, report.total)

        failures: List[_JobState] = []

        def fail(state: _JobState) -> None:
            failures.append(state)
            report.failed += len(state.indices)
            done = report.cached + report.completed + report.failed
            self._record_outcome(state, "failed")
            self._emit("failed", state, done, report.total)

        installed = self._install_signal_handlers()
        try:
            # Cache-first pass.
            misses: List[_JobState] = []
            for state in unique:
                if self._interrupted:
                    misses.append(state)
                    continue
                stored = self.store.get(state.job) if self.store is not None else None
                if stored is not None:
                    settle(state, stored, cached=True)
                else:
                    misses.append(state)
            if self._tracer is not None:
                # Lifecycle "queued" marks go to the trace only; the
                # progress hook keeps its documented event set.
                for state in misses:
                    self._tracer.event(
                        "exec.job",
                        status="queued",
                        key=state.job.key()[:12],
                        label=state.job.describe(),
                    )

            # Execute misses, retrying per round with backoff between rounds.
            pending = list(misses)
            round_no = 0
            while pending and not self._interrupted:
                round_no += 1
                use_pool = self.jobs > 1 and len(pending) > 1
                completed, retry, failed, interrupted = (
                    self._run_pool(pending) if use_pool else self._run_inline(pending)
                )
                for state, result in completed:
                    if self.store is not None:
                        self.store.put(state.job, result)
                    settle(state, result, cached=False)
                for state in failed:
                    fail(state)
                if interrupted:
                    # Interrupted and retry-routed jobs alike stay
                    # unresolved; the journal marks them for the resume.
                    break
                if retry:
                    delay = self._backoff_delay(round_no, retry)
                    for state in retry:
                        report.retried += 1
                        self._emit(
                            "retry",
                            state,
                            report.cached + report.completed + report.failed,
                            report.total,
                            attempt=state.attempts,
                            elapsed=state.timings[-1] if state.timings else None,
                            backoff=delay,
                        )
                    if delay > 0:
                        time.sleep(delay)
                pending = retry
        finally:
            self._restore_signal_handlers(installed)

        if self._interrupted:
            # Anything not yet settled or failed is left for the resume.
            resolved = set(self.last_outcomes)
            for state in unique:
                if state.job.key() not in resolved:
                    report.interrupted += len(state.indices)
                    self._record_outcome(state, "interrupted")
            report.wall_time = time.monotonic() - started
            self.last_report = report
            if self._tracer is not None:
                self._tracer.event(
                    "exec.batch_end", status="interrupted",
                    **_report_fields(report),
                )
            if self.progress is not None:
                self.progress({"event": "interrupted", "report": report})
            raise RunInterrupted(
                f"batch interrupted: {report.cached + report.completed} of "
                f"{report.total} jobs settled, {report.interrupted} left",
                report=report,
                outcomes=self.last_outcomes,
            )

        report.wall_time = time.monotonic() - started
        self.last_report = report
        if self._tracer is not None:
            self._tracer.event(
                "exec.batch_end", status="ok", **_report_fields(report)
            )
        if self.progress is not None:
            self.progress({"event": "batch", "report": report})
        if self.strict and report.failed:
            details = "; ".join(
                f"{state.job.describe()}: {state.error}" for state in failures[:5]
            )
            message = (
                f"{report.failed} of {report.total} jobs failed after "
                f"{self.retries} retries — {details}"
            )
            first_traceback = next(
                (state.traceback for state in failures if state.traceback), None
            )
            if first_traceback:
                message += "\nfirst failure traceback:\n" + first_traceback
            raise ExecError(message)
        return results

    # ------------------------------------------------------------------
    # Execution backends.  Both return (completed, retry, failed,
    # interrupted) where completed pairs each state with its result and
    # interrupted holds states abandoned by a SIGINT/SIGTERM drain.
    # ------------------------------------------------------------------

    def _charge(self, state: _JobState, error: str, elapsed: float):
        """Record a failed attempt; route the job to retry or failure."""
        state.attempts += 1
        state.error = error
        state.timings.append(elapsed)
        return state.attempts <= self.retries

    @staticmethod
    def _note_exception(state: _JobState, exc: BaseException) -> None:
        """Preserve an attempt's full traceback (and any invariant payload).

        Called for exceptions the job itself raised; timeout/crash paths
        have no traceback worth keeping.  An
        :class:`~repro.common.errors.InvariantViolation` additionally
        contributes its violation list and state snapshot, so the
        journal records *what* the cache looked like, not just that a
        check fired.
        """
        state.traceback = _format_error(exc)
        violations = getattr(exc, "violations", None)
        state.violations = list(violations) if violations else None
        snapshot = getattr(exc, "snapshot", None)
        state.snapshot = dict(snapshot) if snapshot else None

    def _accept(self, state: _JobState, result: SimResult) -> Optional[str]:
        """Invariant-check a fresh result; returns the violation, if any."""
        if not self.validate:
            return None
        violations = validate_result(result, state.job)
        if violations:
            return "invalid result: " + "; ".join(violations[:3])
        return None

    def _run_inline(self, pending: List[_JobState]):
        completed, retry, failed, interrupted = [], [], [], []
        for position, state in enumerate(pending):
            if self._interrupted:
                interrupted.extend(pending[position:])
                break
            attempt_started = time.monotonic()
            try:
                result = self.execute(state.job)
            except Exception as exc:  # noqa: BLE001 — converted to job failure
                elapsed = time.monotonic() - attempt_started
                self._note_exception(state, exc)
                (retry if self._charge(state, repr(exc), elapsed) else failed).append(
                    state
                )
                continue
            elapsed = time.monotonic() - attempt_started
            violation = self._accept(state, result)
            if violation is None:
                state.timings.append(elapsed)
                completed.append((state, result))
            else:
                (retry if self._charge(state, violation, elapsed) else failed).append(
                    state
                )
        return completed, retry, failed, interrupted

    def _run_pool(self, pending: List[_JobState]):
        completed, retry, failed, interrupted = [], [], [], []
        workers = min(self.jobs, len(pending))
        pool = ProcessPoolExecutor(max_workers=workers)
        round_started = time.monotonic()
        futures = [(state, pool.submit(self.execute, state.job)) for state in pending]
        pool_dead = False

        def harvest(state: _JobState, future: "Future", bucket: List[_JobState]) -> None:
            """Collect an already-finished future; requeue the rest."""
            try:
                result = future.result(timeout=0)
            except Exception:  # noqa: BLE001 — never ran, or died with the pool
                bucket.append(state)
                return
            violation = self._accept(state, result)
            if violation is None:
                state.timings.append(time.monotonic() - round_started)
                completed.append((state, result))
            else:
                elapsed = time.monotonic() - round_started
                (retry if self._charge(state, violation, elapsed) else failed).append(
                    state
                )

        try:
            for state, future in futures:
                if pool_dead:
                    # The pool died mid-batch.  Jobs that finished before
                    # the break still hold results; the rest are requeued
                    # without being charged an attempt (they never ran).
                    harvest(state, future, retry)
                    continue
                if self._interrupted:
                    harvest(state, future, interrupted)
                    continue
                elapsed = lambda: time.monotonic() - round_started  # noqa: E731
                try:
                    result = self._await(future, self.timeout)
                except _Interrupted:
                    harvest(state, future, interrupted)
                    continue
                except FutureTimeout:
                    pool_dead = True
                    self._terminate_workers(pool)
                    if self._charge(
                        state, f"timed out after {self.timeout}s", elapsed()
                    ):
                        retry.append(state)
                    else:
                        failed.append(state)
                    continue
                except BrokenProcessPool:
                    pool_dead = True
                    if self._charge(state, "worker process crashed", elapsed()):
                        retry.append(state)
                    else:
                        failed.append(state)
                    continue
                except Exception as exc:  # noqa: BLE001 — converted to job failure
                    self._note_exception(state, exc)
                    (
                        retry
                        if self._charge(state, repr(exc), elapsed())
                        else failed
                    ).append(state)
                    continue
                violation = self._accept(state, result)
                if violation is None:
                    state.timings.append(elapsed())
                    completed.append((state, result))
                elif self._charge(state, violation, elapsed()):
                    retry.append(state)
                else:
                    failed.append(state)
        finally:
            if pool_dead or interrupted:
                self._terminate_workers(pool)
            pool.shutdown(wait=not (pool_dead or interrupted), cancel_futures=True)
        return completed, retry, failed, interrupted

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Best-effort kill of a pool whose work must not be awaited."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already dying
                pass
