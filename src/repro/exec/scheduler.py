"""The batch scheduler: cache-first, parallel on miss, resilient to faults.

A :class:`Scheduler` takes a batch of :class:`~repro.exec.job.SimJob`
specs and returns their results in submission order.  The pipeline:

1. **Dedup** — identical jobs (same content key) are simulated once and
   fanned back out to every occurrence; experiment grids repeat alone
   runs heavily, so this alone saves real work.
2. **Cache lookup** — if a :class:`~repro.exec.store.ResultStore` is
   attached, every unique job is first looked up by content hash (the
   store validates and quarantines bad entries on read).
3. **Execute** — misses run through a ``ProcessPoolExecutor`` when more
   than one worker is configured (and there is more than one miss),
   else inline.  Each miss gets ``1 + retries`` attempts; a worker
   crash (``BrokenProcessPool``) or per-job timeout tears the pool down,
   and surviving work is resubmitted to a fresh pool without being
   charged an attempt.  Retry rounds are separated by exponential
   backoff with deterministic jitter.  Every fresh result is checked
   against the engine invariants (:mod:`repro.exec.validate`) before it
   is accepted or persisted.
4. **Report** — an optional progress callback receives one event per
   resolved job plus a final ``batch`` event carrying the
   :class:`BatchReport`; per-job outcomes land in
   :attr:`Scheduler.last_outcomes` for the run journal.

SIGINT/SIGTERM during :meth:`Scheduler.run` are handled gracefully: the
scheduler stops dispatching, harvests whatever already finished (and
persists it to the store), then raises
:class:`~repro.common.errors.RunInterrupted` carrying the partial report
and outcomes — so an interrupted run leaves a resumable trail instead of
a stack trace.

Simulations are pure functions of their job spec, so a batch's results
are identical regardless of worker count, cache state, or injected
faults that retries absorb — ``tests/test_exec.py`` and
``tests/test_faults.py`` pin this down.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback as traceback_module
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ExecError, RunInterrupted, StoreError
from repro.common.rng import backoff_delay
from repro.exec.job import SimJob, execute_job
from repro.exec.stores.base import DEFAULT_LEASE_TTL, AbstractResultStore
from repro.exec.validate import validate_result
from repro.obs.trace import active_tracer
from repro.sim.engine import SimResult

#: Signature of the progress hook: receives event dicts with at least an
#: ``"event"`` field (``cached`` / ``completed`` / ``failed`` / ``retry``
#: / ``interrupted`` / ``batch``).
ProgressHook = Callable[[Dict[str, object]], None]

#: How often the pool path polls a future, so interrupts and timeouts
#: are noticed promptly without busy-waiting.
_POLL_SECONDS = 0.1


@dataclass
class BatchReport:
    """Outcome counts for one scheduler batch (occurrence-weighted)."""

    total: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    retried: int = 0
    interrupted: int = 0
    wall_time: float = 0.0
    #: Store operations that failed and fell back to compute-without-cache.
    degraded: int = 0
    #: Missed jobs found leased by another process (single-flight waits).
    lease_contentions: int = 0
    #: Leases acquired by displacing a stale (crashed/hung) holder.
    stale_takeovers: int = 0
    #: SQLITE_BUSY retries absorbed by the store during this batch.
    busy_retries: int = 0
    #: Net-store connections re-established after a drop during this batch.
    reconnects: int = 0
    #: Net-store requests resent (idempotently) after a transport failure.
    retried_requests: int = 0

    @property
    def cache_fraction(self) -> float:
        """Fraction of the batch served from the result store."""
        if self.total == 0:
            return 0.0
        return self.cached / self.total

    def describe(self) -> str:
        """One-line human-readable summary."""
        line = (
            f"{self.total} jobs: {self.completed} computed, "
            f"{self.cached} cached, {self.failed} failed "
            f"({self.retried} retried)"
        )
        if self.interrupted:
            line += f", {self.interrupted} interrupted"
        if self.lease_contentions:
            line += f", {self.lease_contentions} lease waits"
        if self.stale_takeovers:
            line += f", {self.stale_takeovers} lease takeovers"
        if self.busy_retries:
            line += f", {self.busy_retries} busy retries"
        if self.reconnects:
            line += f", {self.reconnects} reconnects"
        if self.retried_requests:
            line += f", {self.retried_requests} resent requests"
        if self.degraded:
            line += f", {self.degraded} store fallbacks (degraded)"
        return f"{line} in {self.wall_time:.2f}s"

    def store_fields(self) -> Dict[str, int]:
        """Nonzero robustness counters, for journal ``batch`` records.

        Empty for a healthy batch, so journals written before the
        pluggable-store work render identically.
        """
        fields = {
            "degraded": self.degraded,
            "lease_contentions": self.lease_contentions,
            "stale_takeovers": self.stale_takeovers,
            "busy_retries": self.busy_retries,
            "reconnects": self.reconnects,
            "retried_requests": self.retried_requests,
        }
        return {name: value for name, value in fields.items() if value}

    def merge(self, other: "BatchReport") -> None:
        """Accumulate another report into this one (for run-wide totals)."""
        self.total += other.total
        self.completed += other.completed
        self.cached += other.cached
        self.failed += other.failed
        self.retried += other.retried
        self.interrupted += other.interrupted
        self.wall_time += other.wall_time
        self.degraded += other.degraded
        self.lease_contentions += other.lease_contentions
        self.stale_takeovers += other.stale_takeovers
        self.busy_retries += other.busy_retries
        self.reconnects += other.reconnects
        self.retried_requests += other.retried_requests


def _report_fields(report: "BatchReport") -> Dict[str, object]:
    """Flatten a report into scalar fields for a trace event."""
    return {
        "total": report.total,
        "completed": report.completed,
        "cached": report.cached,
        "failed": report.failed,
        "retried": report.retried,
        "interrupted": report.interrupted,
        "wall_time": report.wall_time,
        "degraded": report.degraded,
        "lease_contentions": report.lease_contentions,
        "stale_takeovers": report.stale_takeovers,
        "busy_retries": report.busy_retries,
        "reconnects": report.reconnects,
        "retried_requests": report.retried_requests,
    }


def _format_error(exc: BaseException) -> str:
    """Full traceback text of an exception, worker frames included.

    ``concurrent.futures`` re-raises worker exceptions in the parent
    with the worker-side traceback attached as the ``__cause__`` chain
    (``_RemoteTraceback``), and :func:`traceback.format_exception`
    renders that chain — so the string a pooled job records is the same
    one an inline job would have produced, which is what the journal and
    ``runs show`` need for postmortems.
    """
    return "".join(
        traceback_module.format_exception(type(exc), exc, exc.__traceback__)
    )


@dataclass
class _JobState:
    """Bookkeeping for one unique job within a batch."""

    job: SimJob
    indices: List[int] = field(default_factory=list)
    attempts: int = 0
    error: Optional[str] = None
    timings: List[float] = field(default_factory=list)
    #: Full traceback of the last raised exception (None for failures
    #: that raise nothing, e.g. timeouts and result-validation refusals).
    traceback: Optional[str] = None
    #: Violated invariants / state snapshot carried by an
    #: :class:`~repro.common.errors.InvariantViolation`, when that is
    #: what the job died of.
    violations: Optional[List[str]] = None
    snapshot: Optional[Dict[str, object]] = None
    #: Compute lease held for this job (single-flight), if any.
    lease: Optional[object] = None


class _Interrupted(Exception):
    """Internal: the interrupt flag was observed while awaiting a future."""


class Scheduler:
    """Fans a batch of simulation jobs across worker processes.

    Args:
        jobs: worker process count; ``<= 1`` runs every job inline in
            this process (the strictly serial path).
        store: result store for cache-first execution, or ``None`` to
            always recompute (``--no-cache``).
        timeout: per-job wall-clock limit in seconds (pool mode only —
            an inline job cannot be preempted).
        retries: extra attempts a job gets after a crash, timeout or
            error before counting as failed.
        progress: optional event hook (see :data:`ProgressHook`).
        strict: raise :class:`~repro.common.errors.ExecError` if any job
            is still failed after retries; when ``False``, failed slots
            come back as ``None`` and only the report records them.
        execute: the job runner (overridable for tests and fault
            injection; must be picklable when running with a process
            pool).
        validate: check every fresh result against the engine invariants
            before accepting it; an invalid result is charged as a
            failed attempt and never persisted.
        backoff_base: first retry-round delay in seconds (0 disables
            backoff entirely).
        backoff_cap: upper bound on any single retry-round delay.
        singleflight: coordinate with other processes through store
            leases so N schedulers missing the same job compute it once
            (requires a store that implements leases; silently off
            otherwise).
        lease_ttl: heartbeat time-to-live for held leases; a holder that
            stops heartbeating for this long is presumed dead and its
            lease taken over.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[AbstractResultStore] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress: Optional[ProgressHook] = None,
        strict: bool = True,
        execute: Callable[[SimJob], SimResult] = execute_job,
        validate: bool = True,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        singleflight: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        if retries < 0:
            raise ExecError(f"retries must be >= 0, got {retries}")
        if backoff_base < 0 or backoff_cap < 0:
            raise ExecError("backoff_base and backoff_cap must be >= 0")
        if lease_ttl <= 0:
            raise ExecError(f"lease_ttl must be positive, got {lease_ttl}")
        self.jobs = max(1, int(jobs))
        self.store = store
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.strict = strict
        self.execute = execute
        self.validate = validate
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.singleflight = singleflight
        self.lease_ttl = lease_ttl
        self.last_report: Optional[BatchReport] = None
        #: Per-unique-job outcome of the last run, keyed by content hash:
        #: ``{"status", "attempts", "error", "label", "occurrences"}``.
        self.last_outcomes: Dict[str, Dict[str, object]] = {}
        self._interrupted = False
        self._tracer = None
        #: Leases currently held by this scheduler, keyed by job key.
        self._held_leases: Dict[str, object] = {}
        self._next_renew = 0.0

    # ------------------------------------------------------------------

    def _emit(
        self,
        event: str,
        state: _JobState,
        done: int,
        total: int,
        **extra: object,
    ) -> None:
        if self._tracer is not None:
            self._tracer.event(
                "exec.job",
                status=event,
                key=state.job.key()[:12],
                label=state.job.describe(),
                attempts=state.attempts,
                done=done,
                total=total,
                **{
                    name: value
                    for name, value in extra.items()
                    if isinstance(value, (bool, int, float, str)) or value is None
                },
            )
        if self.progress is None:
            return
        record: Dict[str, object] = {
            "event": event,
            "job": state.job,
            "key": state.job.key(),
            "label": state.job.describe(),
            "error": state.error,
            "done": done,
            "total": total,
        }
        record.update(extra)
        self.progress(record)

    def _record_outcome(self, state: _JobState, status: str) -> None:
        self.last_outcomes[state.job.key()] = {
            "status": status,
            "attempts": state.attempts,
            "error": state.error,
            "label": state.job.describe(),
            "occurrences": len(state.indices),
            # Per-attempt settle times (seconds); empty for cache hits.
            # Serial runs time the attempt itself; pooled runs time
            # submission-to-settle (queue wait included) — for pure
            # execution durations see the trace's exec.job spans.
            # `runs show <id> --timings` renders these from the journal.
            "timings": [round(elapsed, 6) for elapsed in state.timings],
        }
        # Failure forensics — only for jobs that actually ended failed
        # (a retried-then-recovered job's old traceback is noise), and
        # only the keys with content, so healthy journals stay compact.
        if status != "failed":
            return
        outcome = self.last_outcomes[state.job.key()]
        if state.traceback:
            outcome["traceback"] = state.traceback
        if state.violations:
            outcome["violations"] = list(state.violations)
        if state.snapshot:
            outcome["snapshot"] = state.snapshot

    # ------------------------------------------------------------------
    # Guarded store access and single-flight leases
    #
    # Every store interaction is wrapped: a store that turns read-only,
    # busy beyond retries, or unavailable mid-run must never abort the
    # batch.  The failure is counted (``report.degraded``), surfaced in
    # the trace, and the scheduler computes without the cache.
    # ------------------------------------------------------------------

    def _note_degraded(self, report: BatchReport, op: str, exc: Exception) -> None:
        """Count a failed store operation and surface it in the trace."""
        report.degraded += 1
        if self._tracer is not None:
            self._tracer.event(
                "exec.store_degraded", op=op, error=repr(exc)[:200]
            )

    def _store_get(self, job: SimJob, report: BatchReport) -> Optional[SimResult]:
        """Cache lookup that degrades to a miss on store failure."""
        if self.store is None:
            return None
        try:
            return self.store.get(job)
        except (StoreError, OSError) as exc:
            self._note_degraded(report, "get", exc)
            return None

    def _store_put(
        self, state: _JobState, result: SimResult, report: BatchReport
    ) -> None:
        """Persist a fresh result; a failed put degrades, never aborts."""
        if self.store is None:
            return
        try:
            self.store.put(state.job, result)
        except (StoreError, OSError) as exc:
            self._note_degraded(report, "put", exc)

    def _lease_acquire(self, state: _JobState, report: BatchReport) -> bool:
        """Try to claim the compute for a missed job.

        True means this scheduler computes the job itself — because it
        won the lease, the store has no lease support, single-flight is
        off, or the store degraded (computing locally is always safe:
        jobs are pure functions).  False means another live process
        holds the lease and we should wait for its ``put``.
        """
        if self.store is None or not self.singleflight:
            return True
        acquire = getattr(self.store, "acquire_lease", None)
        if acquire is None:
            return True
        try:
            lease = acquire(state.job.key(), ttl=self.lease_ttl)
        except (StoreError, OSError) as exc:
            self._note_degraded(report, "lease", exc)
            return True
        if lease is None:
            return False
        state.lease = lease
        self._held_leases[state.job.key()] = lease
        if getattr(lease, "takeover", False):
            report.stale_takeovers += 1
        return True

    def _lease_release(self, state: _JobState) -> None:
        """Drop a held lease (after the put, or on failure/interrupt)."""
        lease = state.lease
        state.lease = None
        if lease is None or self.store is None:
            return
        self._held_leases.pop(getattr(lease, "key", ""), None)
        try:
            self.store.release_lease(lease)
        except (StoreError, OSError):
            pass

    def _release_all_leases(self) -> None:
        """Best-effort release of every held lease (interrupt/exit path)."""
        if self.store is None:
            self._held_leases.clear()
            return
        for lease in list(self._held_leases.values()):
            try:
                self.store.release_lease(lease)
            except (StoreError, OSError):
                continue
        self._held_leases.clear()

    def _maybe_renew_leases(self) -> None:
        """Heartbeat held leases so long computations are not stolen.

        Rate-limited to once per ``lease_ttl / 3`` and called from the
        future-polling and inline loops, so a healthy holder's lease
        never goes stale mid-compute.
        """
        if not self._held_leases or self.store is None:
            return
        now = time.monotonic()
        if now < self._next_renew:
            return
        self._next_renew = now + self.lease_ttl / 3.0
        renew = getattr(self.store, "renew_lease", None)
        if renew is None:
            return
        for lease in list(self._held_leases.values()):
            try:
                renew(lease)
            except (StoreError, OSError):
                continue

    def _poll_delay(self, poll_no: int, waiting: Sequence[_JobState]) -> float:
        """Deterministic backoff between polls for a foreign lease's put."""
        label = "lease-wait:%d:%s" % (
            poll_no,
            ",".join(sorted(state.job.key() for state in waiting)[:4]),
        )
        base = self.backoff_base if self.backoff_base > 0 else 0.01
        cap = self.backoff_cap if self.backoff_cap > 0 else 0.5
        return backoff_delay(poll_no, label, base, cap)

    # ------------------------------------------------------------------
    # Interrupt plumbing
    # ------------------------------------------------------------------

    def _install_signal_handlers(self) -> List[Tuple[int, object]]:
        """Trade SIGINT/SIGTERM for a drain flag while a batch runs.

        Only possible from the main thread; elsewhere (or where signals
        are unavailable) the batch simply runs uninterruptible, which is
        the pre-existing behavior.
        """
        if threading.current_thread() is not threading.main_thread():
            return []

        def _flag(_signum, _frame) -> None:
            self._interrupted = True

        installed: List[Tuple[int, object]] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                installed.append((signum, signal.signal(signum, _flag)))
            except (ValueError, OSError):  # non-main interpreter quirks
                continue
        return installed

    @staticmethod
    def _restore_signal_handlers(installed: List[Tuple[int, object]]) -> None:
        for signum, previous in installed:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError, TypeError):
                continue

    def _await(self, future: "Future", timeout: Optional[float]):
        """Wait on a future in short polls so interrupts stay responsive.

        Raises :class:`_Interrupted` when the drain flag is set and
        :class:`FutureTimeout` when ``timeout`` elapses.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._interrupted:
                raise _Interrupted()
            self._maybe_renew_leases()
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise FutureTimeout()
            wait = _POLL_SECONDS if remaining is None else min(_POLL_SECONDS, remaining)
            try:
                return future.result(timeout=wait)
            except FutureTimeout:
                continue

    # ------------------------------------------------------------------

    def _backoff_delay(self, round_no: int, retry: Sequence[_JobState]) -> float:
        """Deterministic exponential backoff before retry round ``round_no``.

        The jitter stream is seeded from the retrying jobs' content keys
        (via :mod:`repro.common.rng`), so a given batch backs off
        identically on every run and machine.
        """
        label = "retry-backoff:%d:%s" % (
            round_no,
            ",".join(sorted(state.job.key() for state in retry)[:4]),
        )
        return backoff_delay(round_no, label, self.backoff_base, self.backoff_cap)

    def run(self, batch: Sequence[SimJob]) -> List[Optional[SimResult]]:
        """Resolve every job of ``batch``, in order.

        Returns one :class:`SimResult` per submitted job (duplicates
        share one simulation).  With ``strict=True`` (the default) a job
        that fails after retries raises; a SIGINT/SIGTERM mid-batch
        raises :class:`~repro.common.errors.RunInterrupted` after
        persisting everything that finished; otherwise failed slots are
        ``None`` and only the report records them.
        """
        started = time.monotonic()
        report = BatchReport(total=len(batch))
        results: List[Optional[SimResult]] = [None] * len(batch)
        self._interrupted = False
        self.last_outcomes = {}
        self._tracer = active_tracer()

        # Dedup by content key, preserving first-seen order.
        states: Dict[str, _JobState] = {}
        for index, job in enumerate(batch):
            state = states.setdefault(job.key(), _JobState(job=job))
            state.indices.append(index)
        unique = list(states.values())
        if self._tracer is not None:
            self._tracer.event(
                "exec.batch_start", total=len(batch), unique=len(unique)
            )

        def settle(state: _JobState, result: SimResult, cached: bool) -> None:
            for index in state.indices:
                results[index] = result
            if cached:
                report.cached += len(state.indices)
            else:
                report.completed += len(state.indices)
            done = report.cached + report.completed + report.failed
            self._record_outcome(state, "cached" if cached else "completed")
            self._emit("cached" if cached else "completed", state, done, report.total)

        failures: List[_JobState] = []

        def fail(state: _JobState) -> None:
            failures.append(state)
            report.failed += len(state.indices)
            done = report.cached + report.completed + report.failed
            self._record_outcome(state, "failed")
            self._emit("failed", state, done, report.total)

        installed = self._install_signal_handlers()
        store_counters = getattr(self.store, "counters", None)
        busy_before = store_counters.busy_retries if store_counters else 0
        reconnects_before = store_counters.reconnects if store_counters else 0
        resent_before = (
            store_counters.retried_requests if store_counters else 0
        )
        self._held_leases = {}
        self._next_renew = 0.0
        try:
            # Cache-first pass (a degraded store reads as all-miss).
            misses: List[_JobState] = []
            for state in unique:
                if self._interrupted:
                    misses.append(state)
                    continue
                stored = self._store_get(state.job, report)
                if stored is not None:
                    settle(state, stored, cached=True)
                else:
                    misses.append(state)
            if self._tracer is not None:
                # Lifecycle "queued" marks go to the trace only; the
                # progress hook keeps its documented event set.
                for state in misses:
                    self._tracer.event(
                        "exec.job",
                        status="queued",
                        key=state.job.key()[:12],
                        label=state.job.describe(),
                    )

            # Single-flight partition: take a keyed compute lease per
            # miss.  Winners execute; losers wait for the winner's put
            # (or take over once the winner's lease goes stale).
            pending: List[_JobState] = []
            waiting: List[_JobState] = []
            for state in misses:
                if self._interrupted or self._lease_acquire(state, report):
                    pending.append(state)
                else:
                    report.lease_contentions += 1
                    waiting.append(state)
                    if self._tracer is not None:
                        self._tracer.event(
                            "exec.job",
                            status="lease_wait",
                            key=state.job.key()[:12],
                            label=state.job.describe(),
                        )

            # Execute owned misses (retrying per round with backoff) and
            # poll leased-elsewhere misses between rounds.
            round_no = 0
            poll_no = 0
            while (pending or waiting) and not self._interrupted:
                if pending:
                    round_no += 1
                    use_pool = self.jobs > 1 and len(pending) > 1
                    completed, retry, failed, interrupted = (
                        self._run_pool(pending) if use_pool
                        else self._run_inline(pending)
                    )
                    for state, result in completed:
                        self._store_put(state, result, report)
                        self._lease_release(state)
                        settle(state, result, cached=False)
                    for state in failed:
                        self._lease_release(state)
                        fail(state)
                    if interrupted:
                        # Interrupted and retry-routed jobs alike stay
                        # unresolved; the journal marks them for the resume.
                        break
                    if retry:
                        delay = self._backoff_delay(round_no, retry)
                        for state in retry:
                            report.retried += 1
                            self._emit(
                                "retry",
                                state,
                                report.cached + report.completed + report.failed,
                                report.total,
                                attempt=state.attempts,
                                elapsed=state.timings[-1] if state.timings else None,
                                backoff=delay,
                            )
                        if delay > 0:
                            time.sleep(delay)
                    pending = retry
                if waiting and not self._interrupted:
                    poll_no += 1
                    still_waiting: List[_JobState] = []
                    for state in waiting:
                        stored = self._store_get(state.job, report)
                        if stored is not None:
                            # The winner's put landed: served as a hit.
                            settle(state, stored, cached=True)
                        elif self._lease_acquire(state, report):
                            # The holder released without publishing
                            # (failed), went stale (crashed), or the
                            # store degraded: compute it ourselves.
                            pending.append(state)
                        else:
                            still_waiting.append(state)
                    waiting = still_waiting
                    if waiting and not pending:
                        delay = self._poll_delay(poll_no, waiting)
                        if delay > 0:
                            time.sleep(delay)
        finally:
            self._release_all_leases()
            self._restore_signal_handlers(installed)
        if store_counters is not None:
            report.busy_retries = store_counters.busy_retries - busy_before
            report.reconnects = store_counters.reconnects - reconnects_before
            report.retried_requests = (
                store_counters.retried_requests - resent_before
            )

        if self._interrupted:
            # Anything not yet settled or failed is left for the resume.
            resolved = set(self.last_outcomes)
            for state in unique:
                if state.job.key() not in resolved:
                    report.interrupted += len(state.indices)
                    self._record_outcome(state, "interrupted")
            report.wall_time = time.monotonic() - started
            self.last_report = report
            if self._tracer is not None:
                self._tracer.event(
                    "exec.batch_end", status="interrupted",
                    **_report_fields(report),
                )
            if self.progress is not None:
                self.progress({"event": "interrupted", "report": report})
            raise RunInterrupted(
                f"batch interrupted: {report.cached + report.completed} of "
                f"{report.total} jobs settled, {report.interrupted} left",
                report=report,
                outcomes=self.last_outcomes,
            )

        report.wall_time = time.monotonic() - started
        self.last_report = report
        if self._tracer is not None:
            self._tracer.event(
                "exec.batch_end", status="ok", **_report_fields(report)
            )
        if self.progress is not None:
            self.progress({"event": "batch", "report": report})
        if self.strict and report.failed:
            details = "; ".join(
                f"{state.job.describe()}: {state.error}" for state in failures[:5]
            )
            message = (
                f"{report.failed} of {report.total} jobs failed after "
                f"{self.retries} retries — {details}"
            )
            first_traceback = next(
                (state.traceback for state in failures if state.traceback), None
            )
            if first_traceback:
                message += "\nfirst failure traceback:\n" + first_traceback
            raise ExecError(message)
        return results

    # ------------------------------------------------------------------
    # Execution backends.  Both return (completed, retry, failed,
    # interrupted) where completed pairs each state with its result and
    # interrupted holds states abandoned by a SIGINT/SIGTERM drain.
    # ------------------------------------------------------------------

    def _charge(self, state: _JobState, error: str, elapsed: float):
        """Record a failed attempt; route the job to retry or failure."""
        state.attempts += 1
        state.error = error
        state.timings.append(elapsed)
        return state.attempts <= self.retries

    @staticmethod
    def _note_exception(state: _JobState, exc: BaseException) -> None:
        """Preserve an attempt's full traceback (and any invariant payload).

        Called for exceptions the job itself raised; timeout/crash paths
        have no traceback worth keeping.  An
        :class:`~repro.common.errors.InvariantViolation` additionally
        contributes its violation list and state snapshot, so the
        journal records *what* the cache looked like, not just that a
        check fired.
        """
        state.traceback = _format_error(exc)
        violations = getattr(exc, "violations", None)
        state.violations = list(violations) if violations else None
        snapshot = getattr(exc, "snapshot", None)
        state.snapshot = dict(snapshot) if snapshot else None

    def _accept(self, state: _JobState, result: SimResult) -> Optional[str]:
        """Invariant-check a fresh result; returns the violation, if any."""
        if not self.validate:
            return None
        violations = validate_result(result, state.job)
        if violations:
            return "invalid result: " + "; ".join(violations[:3])
        return None

    def _run_inline(self, pending: List[_JobState]):
        completed, retry, failed, interrupted = [], [], [], []
        for position, state in enumerate(pending):
            if self._interrupted:
                interrupted.extend(pending[position:])
                break
            self._maybe_renew_leases()
            attempt_started = time.monotonic()
            try:
                result = self.execute(state.job)
            except Exception as exc:  # noqa: BLE001 — converted to job failure
                elapsed = time.monotonic() - attempt_started
                self._note_exception(state, exc)
                (retry if self._charge(state, repr(exc), elapsed) else failed).append(
                    state
                )
                continue
            elapsed = time.monotonic() - attempt_started
            violation = self._accept(state, result)
            if violation is None:
                state.timings.append(elapsed)
                completed.append((state, result))
            else:
                (retry if self._charge(state, violation, elapsed) else failed).append(
                    state
                )
        return completed, retry, failed, interrupted

    def _run_pool(self, pending: List[_JobState]):
        completed, retry, failed, interrupted = [], [], [], []
        workers = min(self.jobs, len(pending))
        pool = ProcessPoolExecutor(max_workers=workers)
        round_started = time.monotonic()
        futures = [(state, pool.submit(self.execute, state.job)) for state in pending]
        pool_dead = False

        def harvest(state: _JobState, future: "Future", bucket: List[_JobState]) -> None:
            """Collect an already-finished future; requeue the rest."""
            try:
                result = future.result(timeout=0)
            except Exception:  # noqa: BLE001 — never ran, or died with the pool
                bucket.append(state)
                return
            violation = self._accept(state, result)
            if violation is None:
                state.timings.append(time.monotonic() - round_started)
                completed.append((state, result))
            else:
                elapsed = time.monotonic() - round_started
                (retry if self._charge(state, violation, elapsed) else failed).append(
                    state
                )

        try:
            for state, future in futures:
                if pool_dead:
                    # The pool died mid-batch.  Jobs that finished before
                    # the break still hold results; the rest are requeued
                    # without being charged an attempt (they never ran).
                    harvest(state, future, retry)
                    continue
                if self._interrupted:
                    harvest(state, future, interrupted)
                    continue
                elapsed = lambda: time.monotonic() - round_started  # noqa: E731
                try:
                    result = self._await(future, self.timeout)
                except _Interrupted:
                    harvest(state, future, interrupted)
                    continue
                except FutureTimeout:
                    pool_dead = True
                    self._terminate_workers(pool)
                    if self._charge(
                        state, f"timed out after {self.timeout}s", elapsed()
                    ):
                        retry.append(state)
                    else:
                        failed.append(state)
                    continue
                except BrokenProcessPool:
                    pool_dead = True
                    if self._charge(state, "worker process crashed", elapsed()):
                        retry.append(state)
                    else:
                        failed.append(state)
                    continue
                except Exception as exc:  # noqa: BLE001 — converted to job failure
                    self._note_exception(state, exc)
                    (
                        retry
                        if self._charge(state, repr(exc), elapsed())
                        else failed
                    ).append(state)
                    continue
                violation = self._accept(state, result)
                if violation is None:
                    state.timings.append(elapsed())
                    completed.append((state, result))
                elif self._charge(state, violation, elapsed()):
                    retry.append(state)
                else:
                    failed.append(state)
        finally:
            if pool_dead or interrupted:
                self._terminate_workers(pool)
            pool.shutdown(wait=not (pool_dead or interrupted), cancel_futures=True)
        return completed, retry, failed, interrupted

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> None:
        """Best-effort kill of a pool whose work must not be awaited."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already dying
                pass
