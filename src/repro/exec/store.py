"""Backwards-compatible shim over the :mod:`repro.exec.stores` package.

The single-backend ``ResultStore`` grew into a pluggable package —
:class:`~repro.exec.stores.fs.FileResultStore` (the old behavior, made
crash-safe and lease-aware) plus
:class:`~repro.exec.stores.sqlite.SqliteResultStore` — behind
:class:`~repro.exec.stores.base.AbstractResultStore`.  This module keeps
every historical import working: ``ResultStore`` *is* the filesystem
backend, and the helpers (``default_store_dir``, ``STORE_ENV_VAR``,
``StoreStats``) re-export from their new homes.  New code should import
from :mod:`repro.exec.stores` directly.
"""

from __future__ import annotations

from repro.exec.stores.base import (  # noqa: F401 - re-exports
    STORE_BACKEND_ENV_VAR,
    STORE_ENV_VAR,
    StoreStats,
    default_store_dir,
)
from repro.exec.stores.fs import (  # noqa: F401 - re-exports
    FileResultStore,
    QUARANTINE_DIR_NAME,
    TMP_LEAK_AGE_SECONDS,
)

#: The historical name: the filesystem backend.
ResultStore = FileResultStore

__all__ = [
    "QUARANTINE_DIR_NAME",
    "ResultStore",
    "STORE_BACKEND_ENV_VAR",
    "STORE_ENV_VAR",
    "StoreStats",
    "TMP_LEAK_AGE_SECONDS",
    "default_store_dir",
]
