"""Persistent content-addressed result store.

Results live as one JSON file per job under a versioned root::

    <cache dir>/v<ENGINE_VERSION>/<key[:2]>/<key>.json

where ``<cache dir>`` is ``$REPRO_CACHE_DIR`` if set, else
``~/.cache/nucache-repro``.  The two-character fan-out keeps directories
small for multi-thousand-entry stores.  Writes are atomic
(temp file + ``os.replace``) so concurrent workers and interrupted runs
never leave a half-written entry; a corrupted or unreadable entry is
treated as a miss and deleted, so the scheduler simply recomputes.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.exec.job import ENGINE_VERSION, SimJob
from repro.sim.engine import SimResult

#: Environment variable overriding the store location.
STORE_ENV_VAR = "REPRO_CACHE_DIR"


def default_store_dir() -> Path:
    """Resolve the store root from the environment (unversioned)."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "nucache-repro"


@dataclass(frozen=True)
class StoreStats:
    """Summary of the store's on-disk footprint."""

    root: str
    entries: int
    total_bytes: int

    def describe(self) -> str:
        """One-line human-readable summary."""
        kib = self.total_bytes / 1024.0
        return f"{self.entries} entries, {kib:.1f} KiB in {self.root}"


class ResultStore:
    """Maps job content hashes to serialized simulation results."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        base = Path(root) if root is not None else default_store_dir()
        self.base = base
        self.root = base / f"v{ENGINE_VERSION}"

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.json")

    def get(self, job: SimJob) -> Optional[SimResult]:
        """Stored result for ``job``, or ``None`` on miss.

        A corrupted entry (truncated write, bad JSON, missing fields) is
        deleted and reported as a miss so callers fall back to
        recomputation rather than crashing.
        """
        path = self._path(job.key())
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return SimResult.from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def __contains__(self, job: SimJob) -> bool:
        return self._path(job.key()).is_file()

    def put(self, job: SimJob, result: SimResult) -> Path:
        """Persist ``result`` under ``job``'s key (atomic replace)."""
        path = self._path(job.key())
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "engine_version": ENGINE_VERSION,
            "created": time.time(),
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def stats(self) -> StoreStats:
        """Entry count and byte footprint of the current version's store."""
        entries = 0
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
                entries += 1
            except OSError:
                continue
        return StoreStats(root=str(self.root), entries=entries, total_bytes=total)

    def clear(self) -> int:
        """Delete every entry of every version.  Returns entries removed."""
        removed = 0
        if not self.base.is_dir():
            return removed
        for path in self.base.glob("v*/*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        self._sweep_empty_dirs()
        return removed

    def prune(
        self,
        max_age_days: Optional[float] = None,
        keep: Optional[int] = None,
    ) -> int:
        """Trim the store; returns the number of entries removed.

        Entries from *older engine versions* are always removed (they can
        never be read again).  Then, of the current version's entries,
        drop those older than ``max_age_days`` and — if ``keep`` is given
        — all but the ``keep`` most recently touched.
        """
        removed = 0
        if self.base.is_dir():
            for version_dir in self.base.glob("v*"):
                if version_dir.name == self.root.name:
                    continue
                for path in version_dir.glob("*/*.json"):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        continue
        aged = []
        for path in self._entries():
            try:
                aged.append((path.stat().st_mtime, path))
            except OSError:
                continue
        aged.sort(reverse=True)  # newest first
        cutoff = None if max_age_days is None else time.time() - max_age_days * 86400.0
        for rank, (mtime, path) in enumerate(aged):
            too_old = cutoff is not None and mtime < cutoff
            overflow = keep is not None and rank >= keep
            if too_old or overflow:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        self._sweep_empty_dirs()
        return removed

    def _sweep_empty_dirs(self) -> None:
        if not self.base.is_dir():
            return
        for version_dir in sorted(self.base.glob("v*"), reverse=True):
            for bucket in sorted(version_dir.glob("*"), reverse=True):
                try:
                    bucket.rmdir()
                except OSError:
                    pass
            try:
                version_dir.rmdir()
            except OSError:
                pass
