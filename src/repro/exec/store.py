"""Persistent content-addressed result store.

Results live as one JSON file per job under a versioned root::

    <cache dir>/v<ENGINE_VERSION>/<key[:2]>/<key>.json

where ``<cache dir>`` is ``$REPRO_CACHE_DIR`` if set, else
``~/.cache/nucache-repro``.  The two-character fan-out keeps directories
small for multi-thousand-entry stores.  Writes are atomic
(temp file + ``os.replace``) so concurrent workers and interrupted runs
never leave a half-written entry.

Every read is validated: the payload must parse, round-trip into a
:class:`~repro.sim.engine.SimResult`, and satisfy the engine invariants
of :mod:`repro.exec.validate` against the requesting job.  An entry that
fails any of this is **quarantined** — moved to ``<cache dir>/quarantine/``
with a ``.reason`` sidecar rather than deleted, so a corrupted result is
never served, never silently destroyed, and always available for
post-mortem.  The scheduler sees a miss and recomputes.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.common.errors import ReproError
from repro.exec.job import ENGINE_VERSION, SimJob
from repro.exec.validate import validate_result
from repro.sim.engine import SimResult

#: Environment variable overriding the store location.
STORE_ENV_VAR = "REPRO_CACHE_DIR"

#: Subdirectory (of the store base) holding quarantined entries.
QUARANTINE_DIR_NAME = "quarantine"

#: Temp files older than this are considered leaked by a crashed writer
#: and swept by :meth:`ResultStore.prune`.
TMP_LEAK_AGE_SECONDS = 3600.0


def default_store_dir() -> Path:
    """Resolve the store root from the environment (unversioned)."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "nucache-repro"


@dataclass(frozen=True)
class StoreStats:
    """Summary of the store's on-disk footprint."""

    root: str
    entries: int
    total_bytes: int
    quarantined: int = 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        kib = self.total_bytes / 1024.0
        line = f"{self.entries} entries, {kib:.1f} KiB in {self.root}"
        if self.quarantined:
            line += f"; {self.quarantined} quarantined"
        return line


class ResultStore:
    """Maps job content hashes to serialized simulation results."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        base = Path(root) if root is not None else default_store_dir()
        self.base = base
        self.root = base / f"v{ENGINE_VERSION}"
        self.quarantine_dir = base / QUARANTINE_DIR_NAME

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.json")

    def get(self, job: SimJob) -> Optional[SimResult]:
        """Stored result for ``job``, or ``None`` on miss.

        An entry that is corrupted (truncated write, bad JSON, missing
        fields) *or* fails the engine invariants is quarantined and
        reported as a miss, so callers fall back to recomputation and a
        bad result is never served.
        """
        path = self._path(job.key())
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self.quarantine(path, "unreadable or corrupt JSON")
            return None
        try:
            result = SimResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError, AttributeError, IndexError,
                ReproError):
            self.quarantine(path, "malformed result payload")
            return None
        violations = validate_result(result, job)
        if violations:
            self.quarantine(path, "; ".join(violations[:3]))
            return None
        return result

    def __contains__(self, job: SimJob) -> bool:
        # Delegates to the full read-and-validate path so membership
        # never disagrees with get() over a corrupted or invalid entry.
        return self.get(job) is not None

    def put(self, job: SimJob, result: SimResult) -> Path:
        """Persist ``result`` under ``job``'s key (atomic replace)."""
        path = self._path(job.key())
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "engine_version": ENGINE_VERSION,
            "created": time.time(),
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        finally:
            # A failure between write and replace must not strand the temp
            # file (after a successful replace the unlink is a no-op).
            try:
                tmp.unlink()
            except OSError:
                pass
        return path

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a bad entry aside (never delete) with a ``.reason`` sidecar.

        Returns the quarantined path, or ``None`` if the entry vanished
        or could not be moved.
        """
        if not path.is_file():
            return None
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            dest = self.quarantine_dir / path.name
            bump = 0
            while dest.exists():
                bump += 1
                dest = self.quarantine_dir / f"{path.name}.{bump}"
            os.replace(path, dest)
        except OSError:
            return None
        sidecar = dest.with_name(dest.name + ".reason")
        try:
            sidecar.write_text(
                f"quarantined {time.strftime('%Y-%m-%d %H:%M:%S')}\n"
                f"from: {path}\nreason: {reason}\n",
                encoding="utf-8",
            )
        except OSError:
            pass
        return dest

    def quarantined_entries(self) -> Iterator[Path]:
        """Quarantined entry files (excluding ``.reason`` sidecars)."""
        if not self.quarantine_dir.is_dir():
            return iter(())
        return (
            path
            for path in self.quarantine_dir.iterdir()
            if path.is_file() and not path.name.endswith(".reason")
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def stats(self) -> StoreStats:
        """Entry count and byte footprint of the current version's store.

        Leaked ``.tmp`` files are never counted as entries; quarantined
        entries are surfaced separately.
        """
        entries = 0
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
                entries += 1
            except OSError:
                continue
        return StoreStats(
            root=str(self.root),
            entries=entries,
            total_bytes=total,
            quarantined=sum(1 for _ in self.quarantined_entries()),
        )

    def clear(self) -> int:
        """Delete every entry of every version.  Returns entries removed.

        Also drops quarantined entries and any leaked temp files.
        """
        removed = 0
        if not self.base.is_dir():
            return removed
        for path in self.base.glob("v*/*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        if self.quarantine_dir.is_dir():
            for path in list(self.quarantine_dir.iterdir()):
                try:
                    path.unlink()
                except OSError:
                    continue
            try:
                self.quarantine_dir.rmdir()
            except OSError:
                pass
        self._sweep_tmp_files(min_age_seconds=0.0)
        self._sweep_empty_dirs()
        return removed

    def prune(
        self,
        max_age_days: Optional[float] = None,
        keep: Optional[int] = None,
    ) -> int:
        """Trim the store; returns the number of entries removed.

        Entries from *older engine versions* are always removed (they can
        never be read again), as are temp files leaked by crashed writers.
        Then, of the current version's entries, drop those older than
        ``max_age_days`` and — if ``keep`` is given — all but the
        ``keep`` most recently touched.
        """
        removed = 0
        if self.base.is_dir():
            for version_dir in self.base.glob("v*"):
                if version_dir.name == self.root.name:
                    continue
                for path in version_dir.glob("*/*.json"):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        continue
        self._sweep_tmp_files(min_age_seconds=TMP_LEAK_AGE_SECONDS)
        aged = []
        for path in self._entries():
            try:
                aged.append((path.stat().st_mtime, path))
            except OSError:
                continue
        aged.sort(reverse=True)  # newest first
        cutoff = None if max_age_days is None else time.time() - max_age_days * 86400.0
        for rank, (mtime, path) in enumerate(aged):
            too_old = cutoff is not None and mtime < cutoff
            overflow = keep is not None and rank >= keep
            if too_old or overflow:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        self._sweep_empty_dirs()
        return removed

    def _sweep_tmp_files(self, min_age_seconds: float) -> int:
        """Remove ``.{name}.{pid}.tmp`` files stranded by crashed writers.

        ``min_age_seconds`` guards against racing a live writer mid-put;
        ``clear`` passes 0 (nothing should be writing during a clear).
        """
        if not self.base.is_dir():
            return 0
        swept = 0
        now = time.time()
        for path in self.base.glob("v*/*/.*.tmp"):
            try:
                if now - path.stat().st_mtime < min_age_seconds:
                    continue
                path.unlink()
                swept += 1
            except OSError:
                continue
        return swept

    def _sweep_empty_dirs(self) -> None:
        if not self.base.is_dir():
            return
        for version_dir in sorted(self.base.glob("v*"), reverse=True):
            for bucket in sorted(version_dir.glob("*"), reverse=True):
                try:
                    bucket.rmdir()
                except OSError:
                    pass
            try:
                version_dir.rmdir()
            except OSError:
                pass
