"""Result integrity checks and the quarantine contract.

Reproduction credibility rests on never serving a bad result — neither a
freshly computed one from a sick worker nor a cached one whose bytes
rotted on disk.  This module centralizes the invariants every
:class:`~repro.sim.engine.SimResult` must satisfy:

* every counter (instructions, cycles, LLC accesses/misses, per-level
  counts) is a non-negative integer;
* LLC hits + misses equals LLC accesses (``level_counts`` bookkeeping is
  internally consistent with the derived fields);
* IPC and MPKI are finite, non-negative floats;
* the core list matches the job spec (one core per member for workload
  jobs, exactly one for single jobs) with distinct, well-formed ids;
* LLC occupancy refers only to known cores.

:func:`validate_result` returns the violations as strings (empty list ==
valid); :func:`check_result` raises :class:`ValidationError`.  The
scheduler applies these checks after every simulation, and the store
applies them on every read — a failing entry is *quarantined* (moved
aside for post-mortem, never deleted, never served).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from repro.common.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.exec.job import SimJob
    from repro.sim.engine import SimResult

#: ``level_counts`` key for accesses resolved at the LLC (hits).
_LEVEL_LLC = "llc"
#: ``level_counts`` key for accesses that missed all the way to memory.
_LEVEL_MEMORY = "memory"


def _is_count(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def _is_finite_nonneg(value: object) -> bool:
    return isinstance(value, float) and math.isfinite(value) and value >= 0.0


def validate_result(
    result: "SimResult", job: Optional["SimJob"] = None
) -> List[str]:
    """Invariant violations of ``result`` (empty list means valid).

    When ``job`` is given, the result is additionally checked for
    consistency against its spec (core count, workload names).
    """
    violations: List[str] = []

    cores = getattr(result, "cores", None)
    if not isinstance(cores, list) or not cores:
        return ["result has no cores"]

    seen_ids = set()
    for core in cores:
        tag = f"core {getattr(core, 'core_id', '?')}"
        if not _is_count(core.core_id):
            violations.append(f"{tag}: core_id is not a non-negative int")
        elif core.core_id in seen_ids:
            violations.append(f"{tag}: duplicate core_id")
        else:
            seen_ids.add(core.core_id)
        for name in ("instructions", "cycles", "llc_accesses", "llc_misses"):
            if not _is_count(getattr(core, name)):
                violations.append(f"{tag}: {name} must be a non-negative int")
        for name in ("ipc", "mpki"):
            if not _is_finite_nonneg(float(getattr(core, name))):
                violations.append(f"{tag}: {name} must be finite and >= 0")
        counts = core.level_counts
        if not isinstance(counts, dict) or not all(
            _is_count(value) for value in counts.values()
        ):
            violations.append(f"{tag}: level_counts must be non-negative ints")
            continue
        if _is_count(core.llc_accesses) and _is_count(core.llc_misses):
            if core.llc_misses > core.llc_accesses:
                violations.append(
                    f"{tag}: llc_misses ({core.llc_misses}) exceeds "
                    f"llc_accesses ({core.llc_accesses})"
                )
            hits = counts.get(_LEVEL_LLC)
            misses = counts.get(_LEVEL_MEMORY)
            if hits is not None and misses is not None:
                if hits + misses != core.llc_accesses:
                    violations.append(
                        f"{tag}: llc hits ({hits}) + misses ({misses}) != "
                        f"llc_accesses ({core.llc_accesses})"
                    )
                if misses != core.llc_misses:
                    violations.append(
                        f"{tag}: memory count ({misses}) != "
                        f"llc_misses ({core.llc_misses})"
                    )

    occupancy = getattr(result, "llc_occupancy_by_core", {}) or {}
    for core_id, blocks in occupancy.items():
        if core_id not in seen_ids:
            violations.append(f"occupancy names unknown core {core_id}")
        if not _is_count(blocks):
            violations.append(f"occupancy for core {core_id} is negative")

    if job is not None:
        expected = job.expected_cores
        if len(cores) != expected:
            violations.append(
                f"job expects {expected} core(s), result has {len(cores)}"
            )
        if str(result.policy) != job.policy:
            violations.append(
                f"job policy {job.policy!r} != result policy {result.policy!r}"
            )
        for core, member in zip(cores, job.members):
            if core.workload != member:
                violations.append(
                    f"core {core.core_id} ran {core.workload!r}, "
                    f"job expected {member!r}"
                )

    return violations


def check_result(result: "SimResult", job: Optional["SimJob"] = None) -> "SimResult":
    """Return ``result`` if valid, else raise :class:`ValidationError`."""
    violations = validate_result(result, job)
    if violations:
        raise ValidationError(
            "invalid simulation result: " + "; ".join(violations[:5])
        )
    return result
