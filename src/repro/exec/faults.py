"""Deterministic fault injection for the execution layer.

Chaos testing the scheduler needs failures that are *repeatable*: the
same plan, seed, and job batch must produce the same crashes in the same
places, so a chaos run can be diffed against a clean run byte for byte.
This module provides that as two wrappers:

* :class:`FaultyExecute` wraps :func:`~repro.exec.job.execute_job` and
  injects, per job, a worker **crash** (``SIGKILL`` of the worker
  process), a **hang** (a sleep long enough to trip the scheduler's
  per-job timeout), or a **flake** (a transient raised exception).
* :class:`FaultyStore` wraps any
  :class:`~repro.exec.stores.base.AbstractResultStore` and injects
  store-level faults through the backend-portable chaos hooks:
  ``corrupt`` damages freshly written entries (truncated bytes or a
  plausible-but-invalid payload, exercising read-validate-quarantine),
  ``store.put.crash`` fails a write the way a crashed writer would,
  ``store.get.corrupt`` damages an entry just before it is read,
  ``store.lease.orphan`` drops a lease release (stranding the lease for
  stale takeover), and ``sqlite.busy`` forces a ``database is locked``
  error on the sqlite backend's next operation.

Whether a given job is faulted is a pure function of the plan's seed and
the job's content key (via :mod:`repro.common.rng`), so fault placement
is stable across runs and worker counts.  Each (kind, key) fault fires
**once**, recorded by a marker file in a scratch directory — the retry
that follows runs clean, which is what makes end results byte-identical
to an undisturbed run.

Activation is programmatic (pass the wrappers to a scheduler) or via the
environment, honoured by :func:`repro.exec.context.get_scheduler`::

    REPRO_FAULTS="flake=0.5,crash=0.25,corrupt=0.3" REPRO_FAULTS_SEED=7 \
        nucache-repro run fig5 --jobs 2
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional

from repro.common.errors import ExecError
from repro.common.rng import make_rng
from repro.exec.job import SimJob, execute_job
from repro.exec.store import default_store_dir

#: Environment variable holding the fault spec (``kind=rate,...``).
FAULTS_ENV_VAR = "REPRO_FAULTS"
#: Environment variable overriding the fault-placement seed (default 0).
FAULTS_SEED_ENV_VAR = "REPRO_FAULTS_SEED"

#: Injectable executor-level fault kinds.
EXECUTOR_FAULT_KINDS = ("flake", "crash", "hang", "corrupt")

#: Injectable store-level fault kinds (dotted names; mapped onto
#: :class:`FaultPlan` fields by replacing dots with underscores).
STORE_FAULT_KINDS = (
    "store.put.crash",
    "store.get.corrupt",
    "store.lease.orphan",
    "sqlite.busy",
)

#: Injectable network-store fault kinds (client-side, armed through
#: :meth:`repro.exec.stores.net.NetResultStore.inject_net_fault`).
NET_FAULT_KINDS = (
    "net.conn.refused",
    "net.read.timeout",
    "net.reply.corrupt",
    "net.server.crash",
)

#: Every injectable fault kind.
FAULT_KINDS = EXECUTOR_FAULT_KINDS + STORE_FAULT_KINDS + NET_FAULT_KINDS


def _fault_field(kind: str) -> str:
    """The :class:`FaultPlan` field backing a (possibly dotted) kind."""
    return kind.replace(".", "_")


class InjectedFault(RuntimeError):
    """A deliberately injected failure (so chaos tests can tell it apart)."""


@dataclass(frozen=True)
class FaultPlan:
    """Per-kind fault rates plus the seed and once-marker scratch dir.

    Rates are probabilities in ``[0, 1]`` evaluated per unique job key;
    ``seed`` positions the faults, ``scratch`` is where fire-once marker
    files live (defaults to ``<store base>/fault-markers``).
    """

    flake: float = 0.0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    store_put_crash: float = 0.0
    store_get_corrupt: float = 0.0
    store_lease_orphan: float = 0.0
    sqlite_busy: float = 0.0
    net_conn_refused: float = 0.0
    net_read_timeout: float = 0.0
    net_reply_corrupt: float = 0.0
    net_server_crash: float = 0.0
    seed: int = 0
    hang_seconds: float = 30.0
    scratch: str = ""

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, _fault_field(kind))
            if not 0.0 <= rate <= 1.0:
                raise ExecError(f"fault rate {kind}={rate} outside [0, 1]")

    def active(self) -> bool:
        """Whether any fault kind has a non-zero rate."""
        return any(getattr(self, _fault_field(kind)) > 0.0 for kind in FAULT_KINDS)

    def _scratch_dir(self) -> Path:
        if self.scratch:
            return Path(self.scratch)
        return default_store_dir() / "fault-markers"

    def selected(self, kind: str, key: str) -> bool:
        """Deterministic draw: is this (kind, job-key) pair faulted at all?"""
        rate = getattr(self, _fault_field(kind))
        if rate <= 0.0:
            return False
        return make_rng(self.seed, f"fault:{kind}:{key}").random() < rate

    def fired(self, kind: str, key: str) -> bool:
        """Whether the (kind, key) fault has already fired (marker exists)."""
        return (self._scratch_dir() / f"{kind}-{key}").exists()

    def fire(self, kind: str, key: str) -> bool:
        """True exactly once per selected (kind, key) pair.

        The first call for a selected pair atomically creates a marker
        file and returns True; every later call (the retry, another
        worker, a resumed run) sees the marker and returns False.
        """
        if not self.selected(kind, key):
            return False
        scratch = self._scratch_dir()
        scratch.mkdir(parents=True, exist_ok=True)
        marker = scratch / f"{kind}-{key}"
        try:
            marker.touch(exist_ok=False)
        except FileExistsError:
            return False
        return True

    @classmethod
    def parse(
        cls,
        spec: str,
        seed: int = 0,
        scratch: str = "",
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """Build a plan from a ``kind=rate,kind=rate`` spec string.

        A bare ``kind`` (no ``=rate``) means rate 1.0.
        """
        rates: Dict[str, float] = {}
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            name, _, raw = chunk.partition("=")
            name = name.strip()
            if name not in FAULT_KINDS:
                raise ExecError(
                    f"unknown fault kind {name!r}; expected one of {FAULT_KINDS}"
                )
            try:
                rates[_fault_field(name)] = float(raw) if raw else 1.0
            except ValueError:
                raise ExecError(f"bad fault rate in {chunk!r}") from None
        return cls(seed=seed, scratch=scratch, hang_seconds=hang_seconds, **rates)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan configured via ``REPRO_FAULTS``, or ``None``."""
        spec = os.environ.get(FAULTS_ENV_VAR)
        if not spec:
            return None
        raw_seed = os.environ.get(FAULTS_SEED_ENV_VAR, "0")
        try:
            seed = int(raw_seed)
        except ValueError:
            raise ExecError(
                f"{FAULTS_SEED_ENV_VAR} must be an integer, got {raw_seed!r}"
            ) from None
        plan = cls.parse(spec, seed=seed)
        return plan if plan.active() else None

    def with_scratch(self, scratch: Path) -> "FaultPlan":
        """Copy of the plan with the marker directory pinned."""
        return replace(self, scratch=str(scratch))


class FaultyExecute:
    """Picklable ``execute_job`` wrapper that injects plan faults.

    Safe under a ``ProcessPoolExecutor``: the crash fault kills the
    *worker* process with ``SIGKILL`` (surfacing as ``BrokenProcessPool``
    in the parent).  When running inline in the main process it degrades
    to raising :class:`InjectedFault` — killing the interpreter under
    test would take the suite with it.
    """

    def __init__(self, plan: FaultPlan, execute=execute_job) -> None:
        self.plan = plan
        self.execute = execute

    def __call__(self, job: SimJob):
        key = job.key()
        if self.plan.fire("hang", key):
            time.sleep(self.plan.hang_seconds)
        if self.plan.fire("crash", key):
            if multiprocessing.parent_process() is not None:
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(f"injected crash (inline) for job {key[:12]}")
        if self.plan.fire("flake", key):
            raise InjectedFault(f"injected transient failure for job {key[:12]}")
        return self.execute(job)


class FaultyStore:
    """Result-store proxy that injects plan faults into store operations.

    Every method delegates to the wrapped store.  Faulted operations use
    the backend-portable chaos hooks on
    :class:`~repro.exec.stores.base.AbstractResultStore`, so the same
    plan works against the filesystem and sqlite backends alike:

    * ``corrupt`` — after a successful ``put``, damage the entry in
      place (alternating torn bytes / invariant-violating JSON by key).
      Read-side validation must quarantine it, never serve it.
    * ``store.put.crash`` — fail the ``put`` the way a crashed writer
      would (raises ``StoreError``; the scheduler degrades, the batch
      still completes).
    * ``store.get.corrupt`` — damage an existing entry just before it
      is read, exercising quarantine on the read path.
    * ``store.lease.orphan`` — swallow a lease release, stranding the
      lease on disk for another process's stale takeover.
    * ``sqlite.busy`` — arm the sqlite backend's injected
      ``database is locked`` error before the next operation (no-op on
      backends without :meth:`inject_busy_once`).
    * ``net.conn.refused`` / ``net.read.timeout`` / ``net.reply.corrupt``
      — arm one transport failure on the net backend's next request;
      the client reconnects/retries and the operation still succeeds.
    * ``net.server.crash`` — latch the net backend's server-dead flag
      (the client view of a SIGKILLed server); every later store call
      raises ``StoreError`` and the scheduler degrades.  All ``net.*``
      kinds are no-ops on backends without :meth:`inject_net_fault`.
    """

    def __init__(self, store, plan: FaultPlan) -> None:
        self._store = store
        self._plan = plan

    def __getattr__(self, name):
        return getattr(self._store, name)

    def __contains__(self, job: SimJob) -> bool:
        return job in self._store

    def _damage_mode(self, key: str) -> str:
        """Alternate damage flavors deterministically by key."""
        return "truncate" if int(key[0], 16) % 2 == 0 else "semantic"

    def _arm_busy(self, key: str) -> None:
        """Fire ``sqlite.busy`` if planned and the backend supports it."""
        inject = getattr(self._store, "inject_busy_once", None)
        if inject is not None and self._plan.fire("sqlite.busy", key):
            inject()

    def _arm_net(self, key: str) -> None:
        """Fire planned ``net.*`` faults if the backend supports them."""
        inject = getattr(self._store, "inject_net_fault", None)
        if inject is None:
            return
        for kind in NET_FAULT_KINDS:
            if self._plan.fire(kind, key):
                inject(kind)

    def get(self, job: SimJob):
        """Read via the wrapped store, damaging planned entries first."""
        key = job.key()
        self._arm_busy(key)
        self._arm_net(key)
        if (
            self._plan.selected("store.get.corrupt", key)
            and not self._plan.fired("store.get.corrupt", key)
        ):
            # Only burn the fire-once marker when there is an entry to
            # damage, so a cold get doesn't waste the fault.
            try:
                if self._store.corrupt_entry(key, self._damage_mode(key)):
                    self._plan.fire("store.get.corrupt", key)
            except OSError:
                pass
        return self._store.get(job)

    def put(self, job: SimJob, result):
        """Persist via the wrapped store, injecting planned write faults."""
        key = job.key()
        self._arm_busy(key)
        self._arm_net(key)
        if self._plan.fire("store.put.crash", key):
            # Raises StoreError after leaving crash debris behind.
            return self._store.simulate_crash_mid_put(job, result)
        locator = self._store.put(job, result)
        if self._plan.fire("corrupt", key):
            self._store.corrupt_entry(key, self._damage_mode(key))
        return locator

    def release_lease(self, lease) -> bool:
        """Release via the wrapped store, orphaning planned leases."""
        if self._plan.fire("store.lease.orphan", lease.key):
            return False
        return self._store.release_lease(lease)
