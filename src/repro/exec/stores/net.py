"""Networked result store: a fault-hardened TCP client/server pair.

A fleet of machines shares one store by pointing their schedulers at a
``net://host:port`` URL; a single ``nucache-repro store serve <spec>``
process owns the durable medium (any registered backend — fs or sqlite —
resolved via :func:`repro.exec.stores.from_url`) and arbitrates leases,
which makes single-flight *fleet-wide*: of N schedulers on N machines
racing a cold job, exactly one computes it.

Wire protocol (version :data:`PROTO_VERSION`)
---------------------------------------------

Length-prefixed JSON frames over TCP: each frame is a 4-byte big-endian
payload length followed by that many bytes of UTF-8 JSON.  The first
frame on every connection must be a ``hello`` carrying the client's
protocol version; the server replies with its own and refuses mismatched
clients with a clear error.  After the handshake the connection carries
request/response pairs::

    {"op": "get",  "job": {...}}              -> {"ok": true, "result": {...}|null}
    {"op": "put",  "rid": "...", "job": ..., "result": ...}
                                              -> {"ok": true, "key": "..."}
    {"op": "lease.acquire", "rid": "...", "key": ..., "ttl": ..., "owner": ...}
                                              -> {"ok": true, "lease": {...}|null}

plus ``stats``, ``clear``, ``prune``, ``quarantined``, ``lease.renew``,
``lease.release``, ``leases``, ``corrupt``, and ``ping``.  Server-side
failures come back as ``{"ok": false, "error": "..."}`` and surface as
:class:`~repro.common.errors.StoreError` on the client — never retried,
because the server *did* answer.

Robustness model
----------------

* **Idempotent mutation** — every mutating request carries a request id
  (``rid``); the server remembers recent ``rid -> reply`` pairs, so a
  client that lost the reply can resend the same request and get the
  original answer without the operation being applied twice.  This is
  what makes a retried ``put`` (or ``lease.acquire``) after a dropped
  reply safe.
* **Deadlines everywhere** — every socket operation is bounded by the
  client's per-request timeout; a stuck server can never hang a
  scheduler.
* **Seeded backoff + bounded reconnect** — refused/reset/timed-out
  connections are retried a bounded number of times with the same
  deterministic :func:`repro.common.rng.backoff_delay` the scheduler
  uses, counted in ``counters.reconnects``/``counters.retried_requests``.
* **Circuit breaker** — after consecutive ops exhaust their retry
  budgets the client fails fast (one cheap :class:`StoreError` per op
  instead of a full timeout ladder), re-probing the server every few
  ops so a restarted server is picked up again.
* **Every failure is a StoreError** — which the scheduler's degraded
  mode treats as "compute without the cache", so a SIGKILLed server
  mid-run yields a complete, byte-identical batch.

Deterministic chaos (``net.*`` fault kinds in :mod:`repro.exec.faults`)
is injected client-side via :meth:`NetResultStore.inject_net_fault`.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import socketserver
import struct
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import StoreError
from repro.common.rng import backoff_delay
from repro.exec.job import SimJob
from repro.exec.stores.base import (
    AbstractResultStore,
    DEFAULT_LEASE_TTL,
    Lease,
    StoreStats,
    lease_owner_id,
)
from repro.exec.validate import validate_result
from repro.sim.engine import SimResult

#: Wire protocol version; bumped on any incompatible frame change.
PROTO_VERSION = 1

#: Hard cap on a single frame's payload, as a corruption guard.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Default per-request socket deadline (seconds) on the client.
DEFAULT_TIMEOUT = 5.0

#: Default connect/send/receive retry budget per request.
DEFAULT_RETRIES = 3

#: First backoff delay between request retries (seconds, doubled/round).
RETRY_BACKOFF_BASE = 0.05

#: Cap on any single retry delay (seconds).
RETRY_BACKOFF_CAP = 0.5

#: Consecutive fully-failed requests before the circuit breaker opens.
BREAKER_THRESHOLD = 2

#: With the breaker open, probe the server once every this many ops.
BREAKER_PROBE_EVERY = 8

#: Bound on the server's remembered ``rid -> reply`` idempotency map.
IDEMPOTENCY_CACHE_SIZE = 512

#: Distinguishes client instances within one process, so their request
#: ids never collide in the server's idempotency map.
_CLIENT_IDS = itertools.count()

#: Client-injectable fault kinds (see ``repro.exec.faults``).
NET_FAULT_KINDS = (
    "net.conn.refused",
    "net.read.timeout",
    "net.reply.corrupt",
    "net.server.crash",
)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Send one length-prefixed JSON frame."""
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ValueError(f"frame too large ({len(data)} bytes)")
    sock.sendall(struct.pack(">I", len(data)) + data)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Receive one length-prefixed JSON frame (dict payloads only)."""
    (length,) = struct.unpack(">I", _recv_exact(sock, 4))
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame too large ({length} bytes)")
    payload = json.loads(_recv_exact(sock, length))
    if not isinstance(payload, dict):
        raise ValueError("frame payload is not an object")
    return payload


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` address, raising ``StoreError`` when malformed."""
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise StoreError(
            f"malformed net store address {address!r}; expected net://HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise StoreError(
            f"malformed net store port in {address!r}; expected net://HOST:PORT"
        ) from None
    if not 0 < port < 65536:
        raise StoreError(
            f"net store port out of range in {address!r}; expected 1-65535"
        )
    return host, port


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------


class _TCPServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server with address reuse and daemonic handlers."""

    allow_reuse_address = True
    daemon_threads = True
    store_server: "StoreServer"


class _Handler(socketserver.BaseRequestHandler):
    """Per-connection frame loop: handshake, then request/reply pairs."""

    def handle(self) -> None:
        """Serve one client connection until EOF, error, or drain."""
        server = self.server.store_server  # type: ignore[attr-defined]
        sock: socket.socket = self.request
        server._register(sock)
        try:
            try:
                hello = recv_frame(sock)
            except (OSError, ValueError):
                return
            if hello.get("op") != "hello":
                send_frame(sock, {
                    "ok": False,
                    "error": "expected hello frame before any request",
                })
                return
            if hello.get("proto") != PROTO_VERSION:
                send_frame(sock, {
                    "ok": False,
                    "error": (
                        f"protocol version mismatch: server speaks "
                        f"v{PROTO_VERSION}, client sent "
                        f"v{hello.get('proto')!r} — upgrade the older side"
                    ),
                })
                return
            send_frame(sock, {"ok": True, "proto": PROTO_VERSION,
                              "backend": server.backing.backend})
            while not server.draining:
                try:
                    request = recv_frame(sock)
                except (OSError, ValueError):
                    break
                reply = server.dispatch(request)
                try:
                    send_frame(sock, reply)
                except OSError:
                    break
        finally:
            server._unregister(sock)


class StoreServer:
    """Serves any backend store over the net protocol.

    One instance owns the backing store; worker threads handle
    connections but every backing-store call is serialized behind one
    lock, so the backend needs no thread safety of its own (this is what
    makes a sqlite backing safe to serve).  ``close()`` drains the
    in-flight request, closes client connections, and releases every
    held lease so an interrupted server never leaves the fleet blocked.
    """

    def __init__(
        self,
        backing: AbstractResultStore,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.backing = backing
        self.draining = False
        self._lock = threading.Lock()
        self._clients: set = set()
        self._clients_lock = threading.Lock()
        self._idempotent: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._server = _TCPServer((host, port), _Handler)
        self._server.store_server = self
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound ``(host, port)`` (resolved ephemeral port)."""
        return self._server.server_address[:2]

    def start(self) -> None:
        """Serve connections on a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve connections on the calling thread (the CLI entry point)."""
        self._server.serve_forever()

    def close(self) -> None:
        """Drain the in-flight request, drop clients, release all leases."""
        self.draining = True
        with self._lock:
            pass  # barrier: wait for the dispatch in flight to finish
        with self._clients_lock:
            clients = list(self._clients)
        for sock in clients:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            for key, owner, _stale in self.backing.active_leases():
                self.backing.release_lease(
                    Lease(key=key, owner=owner, acquired=0.0, ttl=0.0)
                )
        except StoreError:
            pass

    # -- connection registry (for drain) -------------------------------

    def _register(self, sock: socket.socket) -> None:
        with self._clients_lock:
            self._clients.add(sock)

    def _unregister(self, sock: socket.socket) -> None:
        with self._clients_lock:
            self._clients.discard(sock)

    # -- dispatch ------------------------------------------------------

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one request to the backing store and build the reply.

        Mutating requests carry a ``rid``; a repeated ``rid`` returns
        the remembered reply without re-applying, so client retries
        after a dropped reply are exactly-once.
        """
        rid = request.get("rid")
        with self._lock:
            if rid is not None and rid in self._idempotent:
                return self._idempotent[rid]
            try:
                reply = self._apply(request)
            except StoreError as exc:
                reply = {"ok": False, "error": str(exc)}
            except Exception as exc:  # noqa: BLE001 - protocol boundary
                reply = {"ok": False,
                         "error": f"{type(exc).__name__}: {exc}"}
            if rid is not None:
                self._idempotent[str(rid)] = reply
                while len(self._idempotent) > IDEMPOTENCY_CACHE_SIZE:
                    self._idempotent.popitem(last=False)
            return reply

    def _apply(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one decoded request against the backing store."""
        op = request.get("op")
        backing = self.backing
        if op == "ping":
            return {"ok": True}
        if op == "get":
            job = SimJob.from_dict(request["job"])
            result = backing.get(job)
            return {"ok": True,
                    "result": None if result is None else result.to_dict()}
        if op == "put":
            job = SimJob.from_dict(request["job"])
            result = SimResult.from_dict(request["result"])
            backing.put(job, result)
            return {"ok": True, "key": job.key()}
        if op == "stats":
            stats = backing.stats()
            return {
                "ok": True,
                "stats": {
                    "root": stats.root,
                    "entries": stats.entries,
                    "total_bytes": stats.total_bytes,
                    "quarantined": stats.quarantined,
                    "leases_active": stats.leases_active,
                    "leases_stale": stats.leases_stale,
                    "logical_bytes": stats.logical_bytes,
                },
            }
        if op == "clear":
            return {"ok": True, "removed": backing.clear()}
        if op == "prune":
            return {
                "ok": True,
                "removed": backing.prune(
                    max_age_days=request.get("max_age_days"),
                    keep=request.get("keep"),
                ),
            }
        if op == "quarantined":
            return {
                "ok": True,
                "entries": [str(item)
                            for item in backing.quarantined_entries()],
            }
        if op == "lease.acquire":
            lease = backing.acquire_lease(
                str(request["key"]),
                ttl=float(request.get("ttl") or DEFAULT_LEASE_TTL),
                owner=str(request["owner"]),
            )
            payload = None if lease is None else {
                "key": lease.key,
                "owner": lease.owner,
                "acquired": lease.acquired,
                "ttl": lease.ttl,
                "takeover": lease.takeover,
            }
            return {"ok": True, "lease": payload}
        if op in ("lease.renew", "lease.release"):
            lease = Lease(
                key=str(request["key"]),
                owner=str(request["owner"]),
                acquired=float(request.get("acquired") or 0.0),
                ttl=float(request.get("ttl") or DEFAULT_LEASE_TTL),
            )
            if op == "lease.renew":
                return {"ok": True, "renewed": backing.renew_lease(lease)}
            return {"ok": True, "released": backing.release_lease(lease)}
        if op == "leases":
            return {
                "ok": True,
                "leases": [[key, owner, stale]
                           for key, owner, stale in backing.active_leases()],
            }
        if op == "corrupt":
            return {
                "ok": True,
                "damaged": backing.corrupt_entry(
                    str(request["key"]),
                    mode=str(request.get("mode") or "truncate"),
                ),
            }
        return {"ok": False, "error": f"unknown op {op!r}"}


def serve(
    backing: AbstractResultStore, host: str = "127.0.0.1", port: int = 0
) -> StoreServer:
    """Build a :class:`StoreServer` bound to ``host:port`` (0 = ephemeral)."""
    return StoreServer(backing, host=host, port=port)


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


class NetResultStore(AbstractResultStore):
    """Store backend that proxies every operation to a ``StoreServer``.

    Implements the full :class:`AbstractResultStore` contract over TCP;
    see the module docstring for the robustness model.  Construction is
    cheap and never touches the network — the first request connects.
    """

    backend = "net"

    def __init__(
        self,
        address: Optional[str] = None,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
    ) -> None:
        super().__init__()
        if not address:
            raise StoreError(
                "net store needs a server address; "
                "use a URL like net://HOST:PORT"
            )
        self.host, self.port = parse_address(str(address))
        self.address = f"{self.host}:{self.port}"
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self._sock: Optional[socket.socket] = None
        self._sock_pid: Optional[int] = None
        self._ever_connected = False
        self._client_id = next(_CLIENT_IDS)
        self._seq = 0
        self._consecutive_failures = 0
        self._ops_since_open = 0
        self._injected: Dict[str, int] = {}
        self._server_dead = False

    # -- chaos hooks ---------------------------------------------------

    def inject_net_fault(self, kind: str, times: int = 1) -> None:
        """Arm ``times`` firings of a ``net.*`` fault kind (chaos only).

        ``net.server.crash`` is latched rather than counted: it marks
        the server dead for the rest of this client's life, the client
        view of a SIGKILLed server.
        """
        if kind not in NET_FAULT_KINDS:
            raise ValueError(f"unknown net fault kind {kind!r}")
        if kind == "net.server.crash":
            self._server_dead = True
            return
        self._injected[kind] = self._injected.get(kind, 0) + times

    def _consume_fault(self, kind: str) -> bool:
        remaining = self._injected.get(kind, 0)
        if remaining <= 0:
            return False
        self._injected[kind] = remaining - 1
        return True

    # -- connection management -----------------------------------------

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._sock_pid = None

    def _socket(self) -> socket.socket:
        """The connected, handshaken socket (fork-safe, reconnects)."""
        if self._sock is not None and self._sock_pid != os.getpid():
            # Forked child: the parent's connection must not be shared.
            self._sock = None
            self._sock_pid = None
        if self._sock is not None:
            return self._sock
        if self._consume_fault("net.conn.refused"):
            raise ConnectionRefusedError("injected connection refusal")
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            send_frame(sock, {"op": "hello", "proto": PROTO_VERSION})
            reply = recv_frame(sock)
        except (OSError, ValueError):
            sock.close()
            raise
        if not reply.get("ok"):
            sock.close()
            raise StoreError(
                f"net store {self.address} rejected handshake: "
                f"{reply.get('error', 'unknown error')}"
            )
        if self._ever_connected:
            self.counters.reconnects += 1
        self._ever_connected = True
        self._sock = sock
        self._sock_pid = os.getpid()
        return sock

    def close(self) -> None:
        """Drop the connection (reopened lazily on next use)."""
        self._drop_socket()

    # -- request machinery ---------------------------------------------

    def _next_rid(self) -> str:
        """A request id unique across processes, clients, and requests.

        ``lease_owner_id`` separates processes; the per-instance client
        id separates clients inside one process (a warmer and a
        scheduler must never be deduplicated against each other).
        """
        self._seq += 1
        return f"{lease_owner_id()}:{self._client_id}:{self._seq}"

    def _request(
        self,
        op: str,
        payload: Optional[Dict[str, Any]] = None,
        mutating: bool = False,
    ) -> Dict[str, Any]:
        """Send one request, retrying transient transport failures.

        The same frame — same ``rid`` — is resent on every retry, so the
        server's idempotency map guarantees a mutating op is applied at
        most once no matter how many replies were lost.  A reply with
        ``ok: false`` is a *server-side* failure and is never retried.
        """
        if self._server_dead:
            raise StoreError(
                f"net store {self.address} is down (injected server crash)"
            )
        if self._consecutive_failures >= BREAKER_THRESHOLD:
            self._ops_since_open += 1
            if self._ops_since_open % BREAKER_PROBE_EVERY != 0:
                raise StoreError(
                    f"net store {self.address} unreachable "
                    f"(circuit open after "
                    f"{self._consecutive_failures} failed requests)"
                )
        frame: Dict[str, Any] = {"op": op}
        if payload:
            frame.update(payload)
        if mutating:
            frame["rid"] = self._next_rid()
        last_error: Optional[BaseException] = None
        for round_no in range(self.retries + 1):
            if round_no > 0:
                self.counters.retried_requests += 1
                delay = backoff_delay(
                    round_no, f"net:{op}",
                    RETRY_BACKOFF_BASE, RETRY_BACKOFF_CAP,
                )
                if delay > 0:
                    time.sleep(delay)
            try:
                sock = self._socket()
            except StoreError:
                self._consecutive_failures += 1
                raise
            except (OSError, ValueError) as exc:
                last_error = exc
                self._drop_socket()
                continue
            try:
                send_frame(sock, frame)
                if self._consume_fault("net.read.timeout"):
                    raise socket.timeout("injected read timeout")
                reply = recv_frame(sock)
                if self._consume_fault("net.reply.corrupt"):
                    raise ValueError("injected corrupt reply frame")
            except (OSError, ValueError) as exc:
                last_error = exc
                self._drop_socket()
                continue
            self._consecutive_failures = 0
            self._ops_since_open = 0
            if not reply.get("ok"):
                raise StoreError(
                    f"net store {self.address} {op} failed: "
                    f"{reply.get('error', 'unknown error')}"
                )
            return reply
        self._consecutive_failures += 1
        raise StoreError(
            f"net store {self.address} unreachable for {op} after "
            f"{self.retries + 1} attempts: {last_error} "
            f"(accepted form: net://HOST:PORT)"
        )

    # -- entries -------------------------------------------------------

    def get(self, job: SimJob) -> Optional[SimResult]:
        """Stored result for ``job``, or ``None`` on miss.

        The server quarantines corrupt entries before replying; the
        client still re-validates the decoded result (a defense against
        reply corruption) and treats anything invalid as a miss.
        """
        reply = self._request("get", {"job": job.to_dict()})
        payload = reply.get("result")
        if payload is None:
            return None
        try:
            result = SimResult.from_dict(payload)
        except Exception:  # noqa: BLE001 - any malformed reply is a miss
            return None
        if validate_result(result, job):
            return None
        return result

    def put(self, job: SimJob, result: SimResult) -> str:
        """Persist ``result`` on the server; returns the job key."""
        reply = self._request(
            "put",
            {"job": job.to_dict(), "result": result.to_dict()},
            mutating=True,
        )
        return str(reply.get("key") or job.key())

    # -- maintenance ---------------------------------------------------

    def stats(self) -> StoreStats:
        """The server's census, re-rooted under this client's address."""
        reply = self._request("stats")
        stats = reply.get("stats") or {}
        return StoreStats(
            root=f"net://{self.address} ({stats.get('root', '?')})",
            entries=int(stats.get("entries") or 0),
            total_bytes=int(stats.get("total_bytes") or 0),
            quarantined=int(stats.get("quarantined") or 0),
            backend=self.backend,
            leases_active=int(stats.get("leases_active") or 0),
            leases_stale=int(stats.get("leases_stale") or 0),
            logical_bytes=int(stats.get("logical_bytes") or 0),
        )

    def clear(self) -> int:
        """Delete every entry on the server; returns the count."""
        reply = self._request("clear", mutating=True)
        return int(reply.get("removed") or 0)

    def prune(
        self,
        max_age_days: Optional[float] = None,
        keep: Optional[int] = None,
    ) -> int:
        """Trim the server's store; returns the number removed."""
        reply = self._request(
            "prune",
            {"max_age_days": max_age_days, "keep": keep},
            mutating=True,
        )
        return int(reply.get("removed") or 0)

    def quarantined_entries(self) -> Iterator[str]:
        """Server-side identifiers of quarantined entries."""
        reply = self._request("quarantined")
        return iter([str(item) for item in reply.get("entries") or []])

    # -- leases --------------------------------------------------------

    def acquire_lease(
        self,
        key: str,
        ttl: float = DEFAULT_LEASE_TTL,
        owner: Optional[str] = None,
    ) -> Optional[Lease]:
        """Take the server-authoritative compute lease for ``key``.

        The client's identity travels with the request, so the lease the
        server records is owned by *this* process — contention and
        stale-takeover semantics match the local backends exactly, but
        they now arbitrate across every machine talking to the server.
        """
        owner = owner if owner is not None else lease_owner_id()
        reply = self._request(
            "lease.acquire",
            {"key": key, "ttl": ttl, "owner": owner},
            mutating=True,
        )
        payload = reply.get("lease")
        if payload is None:
            self.counters.lease_contentions += 1
            return None
        lease = Lease(
            key=str(payload.get("key") or key),
            owner=str(payload.get("owner") or owner),
            acquired=float(payload.get("acquired") or 0.0),
            ttl=float(payload.get("ttl") or ttl),
            takeover=bool(payload.get("takeover")),
        )
        if lease.takeover:
            self.counters.stale_takeovers += 1
        return lease

    def renew_lease(self, lease: Lease) -> bool:
        """Refresh a held lease's heartbeat; False if no longer ours."""
        reply = self._request(
            "lease.renew",
            {"key": lease.key, "owner": lease.owner,
             "acquired": lease.acquired, "ttl": lease.ttl},
            mutating=True,
        )
        return bool(reply.get("renewed"))

    def release_lease(self, lease: Lease) -> bool:
        """Drop a held lease; False if it already expired or moved on."""
        reply = self._request(
            "lease.release",
            {"key": lease.key, "owner": lease.owner,
             "acquired": lease.acquired, "ttl": lease.ttl},
            mutating=True,
        )
        return bool(reply.get("released"))

    def active_leases(self) -> List[Tuple[str, str, bool]]:
        """The server's ``(key, owner, is_stale)`` lease census."""
        reply = self._request("leases")
        return [
            (str(key), str(owner), bool(stale))
            for key, owner, stale in reply.get("leases") or []
        ]

    # -- chaos hooks ---------------------------------------------------

    def corrupt_entry(self, key: str, mode: str = "truncate") -> bool:
        """Damage a stored entry on the server (chaos testing only)."""
        reply = self._request(
            "corrupt", {"key": key, "mode": mode}, mutating=True
        )
        return bool(reply.get("damaged"))
