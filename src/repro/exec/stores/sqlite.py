"""Sqlite result store: one file, WAL mode, busy-retry with backoff.

The whole store is a single ``store.sqlite`` file under the store base
(``$REPRO_CACHE_DIR``), which makes it trivially portable between
machines and naturally atomic: sqlite's WAL journal gives crash-safe
writes without temp-file choreography, and ``synchronous=FULL`` pins
the same durability the filesystem backend gets from fsync.

Concurrency is sqlite's single-writer model: a writer holding the lock
makes other writers fail with ``SQLITE_BUSY``.  Every operation here
runs through a retry loop — a small native busy timeout plus seeded
exponential backoff (the same deterministic backoff helper the
scheduler's retry rounds use) — and counts its retries in
:attr:`~repro.exec.stores.base.StoreCounters.busy_retries`.  An
operation that stays busy past the retry budget (or hits any other
sqlite error: read-only database, missing file, corruption) raises
:class:`~repro.common.errors.StoreError`, which the scheduler treats as
"compute without the cache".

Schema (all tables keyed by job content hash):

* ``entries(key, engine_version, created, payload)`` — live results.
* ``quarantine(key, created, reason, payload)`` — entries that failed
  read-side validation; kept for post-mortem, never served.
* ``leases(key, owner, pid, created, heartbeat, ttl)`` — compute leases
  with heartbeat metadata; stale rows are taken over inside one
  ``BEGIN IMMEDIATE`` transaction, so takeover is race-free.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple, TypeVar, Union

from repro.common.errors import StoreError
from repro.common.rng import backoff_delay
from repro.exec.job import ENGINE_VERSION, SimJob
from repro.exec.stores.base import (
    AbstractResultStore,
    DEFAULT_LEASE_TTL,
    ENTRY_HEADER_LEN,
    ENTRY_MAGIC,
    Lease,
    StoreStats,
    decode_entry,
    default_store_dir,
    encode_entry,
    entry_logical_size,
    inflate_entry,
    lease_owner_id,
    stale_after,
)
from repro.sim.engine import SimResult

#: Default database file name under the store base directory.
DB_FILE_NAME = "store.sqlite"

#: Native sqlite busy timeout per attempt (milliseconds); our own
#: backoff loop sits on top of this.
BUSY_TIMEOUT_MS = 100

#: Retry-loop budget for SQLITE_BUSY before the op degrades.
BUSY_RETRIES = 6

#: First backoff delay between busy retries (seconds, doubled per round).
BUSY_BACKOFF_BASE = 0.02

#: Cap on any single busy-retry delay (seconds).
BUSY_BACKOFF_CAP = 0.5

_T = TypeVar("_T")

_SCHEMA = (
    """CREATE TABLE IF NOT EXISTS entries (
        key TEXT PRIMARY KEY,
        engine_version INTEGER NOT NULL,
        created REAL NOT NULL,
        payload TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS quarantine (
        key TEXT NOT NULL,
        created REAL NOT NULL,
        reason TEXT NOT NULL,
        payload TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS leases (
        key TEXT PRIMARY KEY,
        owner TEXT NOT NULL,
        pid INTEGER NOT NULL,
        created REAL NOT NULL,
        heartbeat REAL NOT NULL,
        ttl REAL NOT NULL
    )""",
)


def _is_busy(exc: sqlite3.OperationalError) -> bool:
    message = str(exc).lower()
    return "locked" in message or "busy" in message


class SqliteResultStore(AbstractResultStore):
    """Maps job content hashes to serialized results in one sqlite file."""

    backend = "sqlite"

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        db_path: Optional[Union[str, Path]] = None,
        busy_retries: int = BUSY_RETRIES,
    ) -> None:
        super().__init__()
        base = Path(root) if root is not None else default_store_dir()
        self.base = base
        self.path = Path(db_path) if db_path is not None else base / DB_FILE_NAME
        self.busy_retries = busy_retries
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_pid: Optional[int] = None
        self._inject_busy = 0

    # ------------------------------------------------------------------
    # Connection and retry plumbing
    # ------------------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """The process-local connection (reopened after a fork)."""
        if self._conn is not None and self._conn_pid == os.getpid():
            return self._conn
        if self._conn is not None:
            # Forked child: the parent's connection must not be shared.
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path), timeout=BUSY_TIMEOUT_MS / 1000.0,
                isolation_level=None,
                # The net-store server dispatches from worker threads but
                # serializes every backend call behind one lock, so
                # cross-thread use of this connection is safe.
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=FULL")
            for statement in _SCHEMA:
                conn.execute(statement)
        except (OSError, sqlite3.Error) as exc:
            raise StoreError(f"cannot open sqlite store {self.path}: {exc}") from exc
        self._conn = conn
        self._conn_pid = os.getpid()
        return conn

    def close(self) -> None:
        """Close the underlying connection (reopened lazily on next use)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
            self._conn_pid = None

    def inject_busy_once(self, times: int = 1) -> None:
        """Make the next ``times`` operations see SQLITE_BUSY (chaos hook)."""
        self._inject_busy += times

    def _retry(self, label: str, operation: Callable[[sqlite3.Connection], _T]) -> _T:
        """Run ``operation`` with deterministic busy-retry backoff.

        ``SQLITE_BUSY``/``SQLITE_LOCKED`` trigger up to
        :attr:`busy_retries` retries with seeded exponential backoff
        (counted in ``counters.busy_retries``); any other sqlite failure
        — read-only database, vanished file, corruption — degrades
        immediately to :class:`~repro.common.errors.StoreError`.
        """
        round_no = 0
        while True:
            try:
                if self._inject_busy > 0:
                    self._inject_busy -= 1
                    raise sqlite3.OperationalError("database is locked (injected)")
                return operation(self._connection())
            except sqlite3.OperationalError as exc:
                if not _is_busy(exc):
                    raise StoreError(f"sqlite {label} failed: {exc}") from exc
                round_no += 1
                if round_no > self.busy_retries:
                    raise StoreError(
                        f"sqlite {label} still busy after "
                        f"{self.busy_retries} retries: {exc}"
                    ) from exc
                self.counters.busy_retries += 1
                delay = backoff_delay(
                    round_no, f"sqlite-busy:{label}",
                    BUSY_BACKOFF_BASE, BUSY_BACKOFF_CAP,
                )
                if delay > 0:
                    time.sleep(delay)
            except sqlite3.Error as exc:
                raise StoreError(f"sqlite {label} failed: {exc}") from exc

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------

    def get(self, job: SimJob) -> Optional[SimResult]:
        """Stored result for ``job``, or ``None`` on miss.

        Validation and quarantine semantics are identical to the
        filesystem backend: a corrupted or invariant-violating row is
        moved to the ``quarantine`` table and reported as a miss.
        """
        key = job.key()

        def _select(conn: sqlite3.Connection) -> Optional[Union[str, bytes]]:
            row = conn.execute(
                "SELECT payload FROM entries "
                "WHERE key = ? AND engine_version = ?",
                (key, ENGINE_VERSION),
            ).fetchone()
            # v2 rows are BLOBs; v1 rows written before the codec change
            # come back as TEXT — decode_entry reads both.
            return None if row is None else row[0]

        payload = self._retry("get", _select)
        if payload is None:
            return None
        result, reason = decode_entry(payload, job)
        if result is None:
            self._quarantine_row(key, payload, reason or "corrupt entry")
            return None
        return result

    def put(self, job: SimJob, result: SimResult) -> str:
        """Persist ``result`` under ``job``'s key; returns the key."""
        key = job.key()
        payload = encode_entry(job, result)

        def _insert(conn: sqlite3.Connection) -> str:
            conn.execute(
                "INSERT OR REPLACE INTO entries "
                "(key, engine_version, created, payload) VALUES (?, ?, ?, ?)",
                (key, ENGINE_VERSION, time.time(), payload),
            )
            return key

        return self._retry("put", _insert)

    def _quarantine_row(
        self, key: str, payload: Union[str, bytes], reason: str
    ) -> None:
        """Move a bad entry to the quarantine table (kept, never served)."""

        def _move(conn: sqlite3.Connection) -> None:
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute(
                    "INSERT INTO quarantine (key, created, reason, payload) "
                    "VALUES (?, ?, ?, ?)",
                    (key, time.time(), reason, payload),
                )
                conn.execute("DELETE FROM entries WHERE key = ?", (key,))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise

        try:
            self._retry("quarantine", _move)
        except StoreError:
            # Quarantining is best-effort; the caller already treats the
            # entry as a miss either way.
            pass

    def quarantined_entries(self) -> Iterator[Tuple[str, str]]:
        """Quarantined ``(key, reason)`` rows."""

        def _select(conn: sqlite3.Connection) -> List[Tuple[str, str]]:
            rows = conn.execute(
                "SELECT key, reason FROM quarantine ORDER BY created"
            ).fetchall()
            return [(str(key), str(reason)) for key, reason in rows]

        return iter(self._retry("quarantined", _select))

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------

    def acquire_lease(
        self,
        key: str,
        ttl: float = DEFAULT_LEASE_TTL,
        owner: Optional[str] = None,
    ) -> Optional[Lease]:
        """Take the compute lease for ``key`` in one write transaction.

        ``BEGIN IMMEDIATE`` serializes contenders, so the
        check-stale-then-write sequence is atomic: exactly one process
        inserts (or takes over a stale row), everyone else sees a live
        foreign lease and backs off.
        """
        owner = owner if owner is not None else lease_owner_id()

        def _acquire(conn: sqlite3.Connection) -> Optional[Lease]:
            now = time.time()
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT owner, heartbeat, ttl FROM leases WHERE key = ?",
                    (key,),
                ).fetchone()
                takeover = False
                if row is not None:
                    holder, heartbeat, holder_ttl = row
                    if not stale_after(float(heartbeat), float(holder_ttl), now):
                        conn.execute("COMMIT")
                        self.counters.lease_contentions += 1
                        return None
                    takeover = True
                conn.execute(
                    "INSERT OR REPLACE INTO leases "
                    "(key, owner, pid, created, heartbeat, ttl) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (key, owner, os.getpid(), now, now, ttl),
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            if takeover:
                self.counters.stale_takeovers += 1
            return Lease(
                key=key, owner=owner, acquired=now, ttl=ttl, takeover=takeover
            )

        return self._retry("acquire_lease", _acquire)

    def renew_lease(self, lease: Lease) -> bool:
        """Refresh the heartbeat of a lease we hold; False if displaced."""

        def _renew(conn: sqlite3.Connection) -> bool:
            cursor = conn.execute(
                "UPDATE leases SET heartbeat = ? WHERE key = ? AND owner = ?",
                (time.time(), lease.key, lease.owner),
            )
            return cursor.rowcount > 0

        return self._retry("renew_lease", _renew)

    def release_lease(self, lease: Lease) -> bool:
        """Drop a lease we hold; False if it expired or was taken over."""

        def _release(conn: sqlite3.Connection) -> bool:
            cursor = conn.execute(
                "DELETE FROM leases WHERE key = ? AND owner = ?",
                (lease.key, lease.owner),
            )
            return cursor.rowcount > 0

        return self._retry("release_lease", _release)

    def active_leases(self) -> List[Tuple[str, str, bool]]:
        """Current ``(key, owner, is_stale)`` lease census."""

        def _select(conn: sqlite3.Connection) -> List[Tuple[str, str, bool]]:
            rows = conn.execute(
                "SELECT key, owner, heartbeat, ttl FROM leases ORDER BY key"
            ).fetchall()
            return [
                (str(key), str(owner),
                 stale_after(float(heartbeat), float(ttl)))
                for key, owner, heartbeat, ttl in rows
            ]

        return self._retry("active_leases", _select)

    # ------------------------------------------------------------------
    # Chaos hooks
    # ------------------------------------------------------------------

    def corrupt_entry(self, key: str, mode: str = "truncate") -> bool:
        """Damage a stored entry in place (chaos testing only)."""

        def _damage(conn: sqlite3.Connection) -> bool:
            row = conn.execute(
                "SELECT payload FROM entries WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                return False
            payload = row[0]
            damaged: Union[str, bytes]
            if mode == "semantic":
                parsed = json.loads(inflate_entry(payload))
                core = parsed["result"]["cores"][0]
                core["llc_misses"] = int(core["llc_accesses"]) + 1
                damaged = json.dumps(parsed, sort_keys=True)
            else:
                damaged = payload[: max(1, len(payload) // 2)]
            conn.execute(
                "UPDATE entries SET payload = ? WHERE key = ?", (damaged, key)
            )
            return True

        return self._retry("corrupt_entry", _damage)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def stats(self) -> StoreStats:
        """Entry count, payload footprint, quarantine and lease census."""

        def _collect(conn: sqlite3.Connection) -> Tuple[int, int, int, int]:
            entries = 0
            total = 0
            logical = 0
            rows = conn.execute(
                "SELECT LENGTH(payload), SUBSTR(payload, 1, ?) "
                "FROM entries WHERE engine_version = ?",
                (ENTRY_HEADER_LEN, ENGINE_VERSION),
            ).fetchall()
            for stored, header in rows:
                stored = int(stored or 0)
                entries += 1
                total += stored
                if isinstance(header, bytes) and header.startswith(ENTRY_MAGIC):
                    logical += entry_logical_size(header)
                else:
                    logical += stored  # v1 TEXT rows are their logical size
            quarantined = conn.execute(
                "SELECT COUNT(*) FROM quarantine"
            ).fetchone()[0]
            return entries, total, logical, int(quarantined)

        entries, total, logical, quarantined = self._retry("stats", _collect)
        leases = self.active_leases()
        stale = sum(1 for _, _, is_stale in leases if is_stale)
        return StoreStats(
            root=str(self.path),
            entries=entries,
            total_bytes=total,
            quarantined=quarantined,
            backend=self.backend,
            leases_active=len(leases) - stale,
            leases_stale=stale,
            logical_bytes=logical,
        )

    def clear(self) -> int:
        """Delete every entry of every version.  Returns entries removed.

        Also drops quarantined rows and leases; transactional, so two
        concurrent maintainers never interleave destructively.
        """

        def _clear(conn: sqlite3.Connection) -> int:
            conn.execute("BEGIN IMMEDIATE")
            try:
                removed = conn.execute(
                    "SELECT COUNT(*) FROM entries"
                ).fetchone()[0]
                conn.execute("DELETE FROM entries")
                conn.execute("DELETE FROM quarantine")
                conn.execute("DELETE FROM leases")
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            return int(removed)

        return self._retry("clear", _clear)

    def prune(
        self,
        max_age_days: Optional[float] = None,
        keep: Optional[int] = None,
    ) -> int:
        """Trim the store; returns the number of entries removed.

        Rows from older engine versions are always removed, as are stale
        leases.  Then, of the current version's rows, drop those older
        than ``max_age_days`` and — if ``keep`` is given — all but the
        ``keep`` most recently written.  One transaction, so a racing
        reader sees either the old or the new store, never a half-prune.
        """

        def _prune(conn: sqlite3.Connection) -> int:
            now = time.time()
            conn.execute("BEGIN IMMEDIATE")
            try:
                removed = conn.execute(
                    "DELETE FROM entries WHERE engine_version != ?",
                    (ENGINE_VERSION,),
                ).rowcount
                if max_age_days is not None:
                    removed += conn.execute(
                        "DELETE FROM entries WHERE created < ?",
                        (now - max_age_days * 86400.0,),
                    ).rowcount
                if keep is not None:
                    removed += conn.execute(
                        "DELETE FROM entries WHERE key NOT IN ("
                        "SELECT key FROM entries "
                        "ORDER BY created DESC, key LIMIT ?)",
                        (keep,),
                    ).rowcount
                conn.execute(
                    "DELETE FROM leases WHERE (? - heartbeat) > ttl", (now,)
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            return int(removed)

        return self._retry("prune", _prune)
