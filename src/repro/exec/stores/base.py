"""The abstract result-store contract every backend implements.

A result store maps a :class:`~repro.exec.job.SimJob`'s content hash to
a serialized :class:`~repro.sim.engine.SimResult`.  Backends differ in
*where* the bytes live (a directory of JSON files, a sqlite database),
but they all honour the same contract:

* **Validated reads** — :meth:`AbstractResultStore.get` never serves a
  corrupted or invariant-violating entry; bad entries are quarantined
  (set aside for post-mortem, never deleted) and reported as a miss.
* **Atomic, durable writes** — a crash mid-``put`` can never publish a
  torn entry.
* **Cross-process leases** — :meth:`~AbstractResultStore.acquire_lease`
  arbitrates which of several processes computes a missed job
  (single-flight); leases carry owner + heartbeat metadata so a crashed
  holder's lease goes *stale* and can be taken over.
* **Failure is a signal, not an abort** — anything that makes the
  backend unusable raises :class:`StoreError`, which the scheduler
  treats as "compute without the cache", never as a batch failure.

The shared payload codec (:func:`encode_entry` / :func:`decode_entry`)
lives here so every backend applies byte-identical validation and
quarantine semantics.
"""

from __future__ import annotations

import abc
import json
import os
import socket
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.common.errors import ReproError, StoreError
from repro.exec.job import ENGINE_VERSION, SimJob
from repro.exec.validate import validate_result
from repro.sim.engine import SimResult

#: Environment variable overriding the store location.
STORE_ENV_VAR = "REPRO_CACHE_DIR"

#: Environment variable selecting the store backend (``fs``/``sqlite``
#: or a ``from_url`` spec).
STORE_BACKEND_ENV_VAR = "REPRO_STORE"

#: Default time-to-live of a lease heartbeat: a lease whose heartbeat is
#: older than this is *stale* and may be taken over by another process.
DEFAULT_LEASE_TTL = 30.0


def default_store_dir() -> Path:
    """Resolve the store root from the environment (unversioned)."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "nucache-repro"


def lease_owner_id() -> str:
    """This process's lease-owner identity (``host:pid``).

    Stable for the process lifetime, unique across the machines that can
    share a store directory, and human-readable in postmortems.
    """
    return f"{socket.gethostname()}:{os.getpid()}"


# ----------------------------------------------------------------------
# Shared payload codec (identical validation semantics per backend)
# ----------------------------------------------------------------------

#: Magic prefix of a codec-v2 (zlib-packed) entry payload.
ENTRY_MAGIC = b"NUC2"

#: Byte length of the v2 header: magic + big-endian uncompressed size.
ENTRY_HEADER_LEN = len(ENTRY_MAGIC) + 4


def encode_entry(job: SimJob, result: SimResult) -> bytes:
    """Serialize one store entry (job + result + provenance).

    Codec v2: the sorted-keys JSON document is zlib-compressed behind a
    fixed header (``NUC2`` magic + 4-byte big-endian *uncompressed*
    length).  Entries are highly regular JSON, so the pack is roughly
    5× smaller on disk; the recorded length lets :func:`entry_logical_size`
    report the logical footprint without inflating anything.
    """
    raw = json.dumps(
        {
            "engine_version": ENGINE_VERSION,
            "created": time.time(),
            "job": job.to_dict(),
            "result": result.to_dict(),
        },
        sort_keys=True,
    ).encode("utf-8")
    return ENTRY_MAGIC + struct.pack(">I", len(raw)) + zlib.compress(raw, 6)


def entry_logical_size(payload: Union[str, bytes]) -> int:
    """Uncompressed (logical) byte size of one encoded entry payload.

    v2 payloads record it in the header; v1 plain-text payloads *are*
    their logical bytes.  Damaged headers count as their stored size so
    stats never raise on a corrupt store.
    """
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if payload.startswith(ENTRY_MAGIC) and len(payload) >= ENTRY_HEADER_LEN:
        return int(
            struct.unpack(">I", payload[len(ENTRY_MAGIC):ENTRY_HEADER_LEN])[0]
        )
    return len(payload)


def inflate_entry(payload: Union[str, bytes]) -> bytes:
    """Raw JSON bytes of an encoded entry, whichever codec wrote it.

    Raises :class:`zlib.error` on a torn v2 pack — chaos hooks use this
    to rewrite entries; validated reads go through :func:`decode_entry`
    which maps that to a quarantine reason instead.
    """
    if isinstance(payload, str):
        return payload.encode("utf-8")
    if payload.startswith(ENTRY_MAGIC):
        return zlib.decompress(payload[ENTRY_HEADER_LEN:])
    return payload


def decode_entry(
    text: Union[str, bytes], job: SimJob
) -> Tuple[Optional[SimResult], Optional[str]]:
    """Parse and validate one stored entry against its job.

    Accepts both codec versions — v2 zlib-packed bytes (``NUC2`` magic)
    and legacy v1 plain JSON text — so stores written before the codec
    change read back transparently.  Returns ``(result, None)`` for a
    healthy entry and ``(None, reason)`` for anything else — unparsable
    bytes, a malformed payload, or a result that fails the engine
    invariants.  Every backend funnels every read through this, so
    "what counts as corrupt" can never diverge between them.
    """
    if isinstance(text, bytes) and text.startswith(ENTRY_MAGIC):
        try:
            text = zlib.decompress(text[ENTRY_HEADER_LEN:])
        except zlib.error:
            return None, "unreadable or corrupt JSON (torn v2 pack)"
    try:
        payload = json.loads(text)
    except (ValueError, UnicodeDecodeError):
        return None, "unreadable or corrupt JSON"
    try:
        result = SimResult.from_dict(payload["result"])
    except (ValueError, KeyError, TypeError, AttributeError, IndexError,
            ReproError):
        return None, "malformed result payload"
    violations = validate_result(result, job)
    if violations:
        return None, "; ".join(violations[:3])
    return result, None


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Lease:
    """A held compute lease for one job key.

    Attributes:
        key: the job content hash the lease covers.
        owner: the holder's :func:`lease_owner_id`.
        acquired: wall-clock acquisition time.
        ttl: heartbeat time-to-live in seconds; a heartbeat older than
            this makes the lease stale (eligible for takeover).
        takeover: whether acquiring it displaced a stale lease.
    """

    key: str
    owner: str
    acquired: float
    ttl: float
    takeover: bool = False


@dataclass
class StoreCounters:
    """In-process robustness counters a store accumulates as it runs.

    These are *process-local* (they reset with the process); durable
    state — active leases, quarantined entries — is reported by
    :meth:`AbstractResultStore.stats` instead.
    """

    lease_contentions: int = 0
    stale_takeovers: int = 0
    busy_retries: int = 0
    reconnects: int = 0
    retried_requests: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (sorted rendering is the caller's job)."""
        return {
            "busy_retries": self.busy_retries,
            "lease_contentions": self.lease_contentions,
            "reconnects": self.reconnects,
            "retried_requests": self.retried_requests,
            "stale_takeovers": self.stale_takeovers,
        }


@dataclass(frozen=True)
class StoreStats:
    """Summary of the store's durable footprint and lease state."""

    root: str
    entries: int
    total_bytes: int
    quarantined: int = 0
    backend: str = "fs"
    leases_active: int = 0
    leases_stale: int = 0
    logical_bytes: int = 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        kib = self.total_bytes / 1024.0
        line = f"{self.entries} entries, {kib:.1f} KiB in {self.root}"
        if self.logical_bytes and self.logical_bytes != self.total_bytes:
            logical_kib = self.logical_bytes / 1024.0
            line += f" ({logical_kib:.1f} KiB logical)"
        if self.quarantined:
            line += f"; {self.quarantined} quarantined"
        if self.leases_active or self.leases_stale:
            line += (
                f"; {self.leases_active} active lease(s)"
                f" ({self.leases_stale} stale)"
            )
        return line


class AbstractResultStore(abc.ABC):
    """One abstract API, many backends (filesystem, sqlite, ...).

    Concrete stores implement the durable operations; membership,
    counters, and the health rendering are shared here.  Every method
    that touches the backing medium raises :class:`StoreError` (or an
    ``OSError`` for the filesystem) when the medium is unusable — the
    scheduler degrades to compute-without-cache rather than aborting.
    """

    #: Short backend name (``fs``, ``sqlite``) used by stats and the CLI.
    backend: str = "abstract"

    def __init__(self) -> None:
        self.counters = StoreCounters()

    # -- entries -------------------------------------------------------

    @abc.abstractmethod
    def get(self, job: SimJob) -> Optional[SimResult]:
        """Stored result for ``job``, or ``None`` on miss.

        A corrupted or invariant-violating entry is quarantined and
        reported as a miss; an entry deleted concurrently (a racing
        ``prune``) is a clean miss, never an exception.
        """

    @abc.abstractmethod
    def put(self, job: SimJob, result: SimResult) -> object:
        """Persist ``result`` under ``job``'s key, atomically and durably.

        Returns a backend-specific locator (a :class:`~pathlib.Path` for
        the filesystem store, the key for sqlite).
        """

    def __contains__(self, job: SimJob) -> bool:
        """Validated membership: never disagrees with :meth:`get`."""
        return self.get(job) is not None

    # -- maintenance ---------------------------------------------------

    @abc.abstractmethod
    def stats(self) -> StoreStats:
        """Entry count, byte footprint, quarantine and lease census."""

    @abc.abstractmethod
    def clear(self) -> int:
        """Delete every entry (all engine versions); returns the count."""

    @abc.abstractmethod
    def prune(
        self,
        max_age_days: Optional[float] = None,
        keep: Optional[int] = None,
    ) -> int:
        """Trim old-version / aged / overflow entries; returns the count."""

    @abc.abstractmethod
    def quarantined_entries(self) -> Iterator[object]:
        """Identifiers of quarantined entries (paths or keys)."""

    # -- leases --------------------------------------------------------

    @abc.abstractmethod
    def acquire_lease(
        self,
        key: str,
        ttl: float = DEFAULT_LEASE_TTL,
        owner: Optional[str] = None,
    ) -> Optional[Lease]:
        """Try to take the compute lease for ``key``.

        ``owner`` defaults to this process's :func:`lease_owner_id`; the
        network server passes the *client's* identity through so leases
        stay attributed fleet-wide.  Returns the :class:`Lease` on
        success (including a takeover of a stale lease, flagged via
        :attr:`Lease.takeover` and counted in
        :attr:`StoreCounters.stale_takeovers`), or ``None`` when another
        live process holds it (counted in
        :attr:`StoreCounters.lease_contentions`).
        """

    @abc.abstractmethod
    def renew_lease(self, lease: Lease) -> bool:
        """Refresh a held lease's heartbeat; False if no longer ours."""

    @abc.abstractmethod
    def release_lease(self, lease: Lease) -> bool:
        """Drop a held lease; False if it already expired or moved on."""

    @abc.abstractmethod
    def active_leases(self) -> List[Tuple[str, str, bool]]:
        """Current ``(key, owner, is_stale)`` lease census."""

    # -- chaos hooks ---------------------------------------------------

    @abc.abstractmethod
    def corrupt_entry(self, key: str, mode: str = "truncate") -> bool:
        """Damage a stored entry in place (chaos testing only).

        ``mode`` is ``"truncate"`` (torn bytes) or ``"semantic"``
        (well-formed JSON whose counters violate the engine invariants).
        Returns whether an entry existed to damage.  Both damage modes
        must be caught by read-side validation and quarantined.
        """

    def simulate_crash_mid_put(self, job: SimJob, result: SimResult) -> None:
        """Fail a ``put`` the way a crashed writer would (chaos testing).

        The default raises :class:`StoreError` without publishing
        anything; the filesystem backend additionally strands a torn
        temp file, the debris a real mid-write crash leaves for
        ``prune`` to sweep.
        """
        raise StoreError(
            f"injected store crash mid-put for {job.key()[:12]} "
            f"({self.backend} backend)"
        )

    # -- health rendering ----------------------------------------------

    def health(self) -> Dict[str, int]:
        """Deterministic robustness census for ``cache stats``.

        Combines the durable lease census with the process-local
        counters; every field is always present (zeros included) so the
        rendering is byte-stable.
        """
        leases = self.active_leases()
        stale = sum(1 for _, _, is_stale in leases if is_stale)
        census: Dict[str, int] = {
            "leases_active": len(leases) - stale,
            "leases_stale": stale,
        }
        census.update(self.counters.as_dict())
        return census

    def describe_health(self) -> str:
        """One-line ``key=value`` robustness summary (sorted, byte-stable)."""
        census = self.health()
        rendered = " ".join(f"{key}={census[key]}" for key in sorted(census))
        return f"robustness [{self.backend}]: {rendered}"


def stale_after(heartbeat: float, ttl: float, now: Optional[float] = None) -> bool:
    """Whether a lease heartbeat of age ``ttl`` seconds is stale."""
    moment = time.time() if now is None else now
    return (moment - heartbeat) > ttl
