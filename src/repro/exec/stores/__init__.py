"""Pluggable result-store backends behind one abstract interface.

One abstract API (:class:`~repro.exec.stores.base.AbstractResultStore`),
many backends:

* ``fs`` — :class:`~repro.exec.stores.fs.FileResultStore`: one JSON
  file per entry, fsync-durable atomic writes, ``O_EXCL`` lease files.
  The default, and byte-compatible with stores written before the
  backend split.
* ``sqlite`` — :class:`~repro.exec.stores.sqlite.SqliteResultStore`:
  one WAL-mode database file, busy-retry with seeded backoff,
  transactional leases.

Select a backend with ``$REPRO_STORE`` (a backend name or a
:func:`from_url` spec), the ``--store`` CLI flag, or programmatically
via :func:`make_store`.  See ``docs/store.md``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Type

from repro.common.errors import StoreError
from repro.exec.stores.base import (
    AbstractResultStore,
    DEFAULT_LEASE_TTL,
    Lease,
    STORE_BACKEND_ENV_VAR,
    STORE_ENV_VAR,
    StoreCounters,
    StoreStats,
    decode_entry,
    default_store_dir,
    encode_entry,
    lease_owner_id,
)
from repro.exec.stores.fs import (
    FileResultStore,
    QUARANTINE_DIR_NAME,
    TMP_LEAK_AGE_SECONDS,
)
from repro.exec.stores.sqlite import SqliteResultStore

#: Registered backends, keyed by the name ``REPRO_STORE``/``--store`` use.
BACKENDS: Dict[str, Type[AbstractResultStore]] = {
    "fs": FileResultStore,
    "sqlite": SqliteResultStore,
}


def from_url(url: str) -> AbstractResultStore:
    """Build a store from a ``backend://path`` spec.

    * ``fs:///var/cache/nucache`` — filesystem store rooted there.
    * ``sqlite:///var/cache/nucache`` — sqlite store whose database
      lives at ``<path>/store.sqlite``; a path ending in ``.sqlite`` or
      ``.db`` names the database file itself.
    * ``fs://`` / ``sqlite://`` — the default store directory
      (``$REPRO_CACHE_DIR`` or ``~/.cache/nucache-repro``).
    """
    scheme, separator, raw_path = url.partition("://")
    if not separator:
        raise StoreError(
            f"store URL {url!r} has no scheme; expected "
            f"one of {sorted(BACKENDS)} + '://path'"
        )
    if scheme not in BACKENDS:
        raise StoreError(
            f"unknown store backend {scheme!r}; expected one of "
            f"{sorted(BACKENDS)}"
        )
    root = Path(raw_path) if raw_path else None
    if scheme == "sqlite" and root is not None and root.suffix in (".sqlite", ".db"):
        return SqliteResultStore(root=root.parent, db_path=root)
    return BACKENDS[scheme](root)  # type: ignore[call-arg]


def make_store(spec: Optional[str] = None) -> AbstractResultStore:
    """Build the configured result store.

    ``spec`` is a backend name (``fs``/``sqlite``) or a :func:`from_url`
    spec; when ``None``, ``$REPRO_STORE`` decides, defaulting to ``fs``.
    The store root always honours ``$REPRO_CACHE_DIR``.
    """
    chosen = spec or os.environ.get(STORE_BACKEND_ENV_VAR) or "fs"
    if "://" in chosen:
        return from_url(chosen)
    if chosen not in BACKENDS:
        raise StoreError(
            f"unknown store backend {chosen!r}; expected one of "
            f"{sorted(BACKENDS)} or a URL like 'sqlite:///path'"
        )
    return BACKENDS[chosen]()


__all__ = [
    "AbstractResultStore",
    "BACKENDS",
    "DEFAULT_LEASE_TTL",
    "FileResultStore",
    "Lease",
    "QUARANTINE_DIR_NAME",
    "STORE_BACKEND_ENV_VAR",
    "STORE_ENV_VAR",
    "SqliteResultStore",
    "StoreCounters",
    "StoreError",
    "StoreStats",
    "TMP_LEAK_AGE_SECONDS",
    "decode_entry",
    "default_store_dir",
    "encode_entry",
    "from_url",
    "lease_owner_id",
    "make_store",
]
