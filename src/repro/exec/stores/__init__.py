"""Pluggable result-store backends behind one abstract interface.

One abstract API (:class:`~repro.exec.stores.base.AbstractResultStore`),
many backends:

* ``fs`` — :class:`~repro.exec.stores.fs.FileResultStore`: one JSON
  file per entry, fsync-durable atomic writes, ``O_EXCL`` lease files.
  The default, and byte-compatible with stores written before the
  backend split.
* ``sqlite`` — :class:`~repro.exec.stores.sqlite.SqliteResultStore`:
  one WAL-mode database file, busy-retry with seeded backoff,
  transactional leases.
* ``net`` — :class:`~repro.exec.stores.net.NetResultStore`: a TCP
  client for a ``nucache-repro store serve`` server (itself backed by
  any of the above), with per-request deadlines, seeded reconnect
  backoff, idempotent retries, and server-authoritative leases.

Select a backend with ``$REPRO_STORE`` (a backend name or a
:func:`from_url` spec), the ``--store`` CLI flag, or programmatically
via :func:`make_store`.  See ``docs/store.md``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Type

from repro.common.errors import StoreError
from repro.exec.stores.base import (
    AbstractResultStore,
    DEFAULT_LEASE_TTL,
    Lease,
    STORE_BACKEND_ENV_VAR,
    STORE_ENV_VAR,
    StoreCounters,
    StoreStats,
    decode_entry,
    default_store_dir,
    encode_entry,
    lease_owner_id,
)
from repro.exec.stores.fs import (
    FileResultStore,
    QUARANTINE_DIR_NAME,
    TMP_LEAK_AGE_SECONDS,
)
from repro.exec.stores.net import NetResultStore, StoreServer
from repro.exec.stores.sqlite import SqliteResultStore

#: Registered backends, keyed by the name ``REPRO_STORE``/``--store`` use.
BACKENDS: Dict[str, Type[AbstractResultStore]] = {
    "fs": FileResultStore,
    "net": NetResultStore,
    "sqlite": SqliteResultStore,
}

#: The one sentence every bad-spec error ends with, so a typo in any of
#: the selection paths (URL, env var, CLI flag) teaches the right shape.
ACCEPTED_STORE_FORMS = (
    "accepted forms: a backend name (fs, net, sqlite), fs://PATH, "
    "sqlite://PATH[/store.sqlite], or net://HOST:PORT"
)


def from_url(url: str) -> AbstractResultStore:
    """Build a store from a ``backend://target`` spec.

    * ``fs:///var/cache/nucache`` — filesystem store rooted there.
    * ``sqlite:///var/cache/nucache`` — sqlite store whose database
      lives at ``<path>/store.sqlite``; a path ending in ``.sqlite`` or
      ``.db`` names the database file itself.
    * ``net://host:port`` — client for a ``nucache-repro store serve``
      server at that address.
    * ``fs://`` / ``sqlite://`` — the default store directory
      (``$REPRO_CACHE_DIR`` or ``~/.cache/nucache-repro``).

    Every malformed spec raises :class:`StoreError` naming the accepted
    forms; an unreachable ``net://`` target constructs fine here and
    raises :class:`StoreError` on first use (the scheduler degrades).
    """
    scheme, separator, raw_path = url.partition("://")
    if not separator:
        raise StoreError(
            f"store URL {url!r} has no scheme; {ACCEPTED_STORE_FORMS}"
        )
    if scheme not in BACKENDS:
        raise StoreError(
            f"unknown store backend {scheme!r} in {url!r}; "
            f"{ACCEPTED_STORE_FORMS}"
        )
    if scheme == "net":
        if not raw_path:
            raise StoreError(
                f"net store URL {url!r} is missing an address; "
                f"{ACCEPTED_STORE_FORMS}"
            )
        try:
            return NetResultStore(raw_path)
        except StoreError as exc:
            raise StoreError(f"{exc}; {ACCEPTED_STORE_FORMS}") from None
    root = Path(raw_path) if raw_path else None
    if scheme == "sqlite" and root is not None and root.suffix in (".sqlite", ".db"):
        return SqliteResultStore(root=root.parent, db_path=root)
    return BACKENDS[scheme](root)  # type: ignore[call-arg]


def make_store(spec: Optional[str] = None) -> AbstractResultStore:
    """Build the configured result store.

    ``spec`` is a backend name (``fs``/``sqlite``/``net``) or a
    :func:`from_url` spec; when ``None``, ``$REPRO_STORE`` decides,
    defaulting to ``fs``.  The store root always honours
    ``$REPRO_CACHE_DIR``.
    """
    chosen = spec or os.environ.get(STORE_BACKEND_ENV_VAR) or "fs"
    if "://" in chosen:
        return from_url(chosen)
    if chosen == "net":
        raise StoreError(
            "the net backend needs a server address; "
            f"{ACCEPTED_STORE_FORMS}"
        )
    if chosen not in BACKENDS:
        raise StoreError(
            f"unknown store backend {chosen!r}; {ACCEPTED_STORE_FORMS}"
        )
    return BACKENDS[chosen]()


__all__ = [
    "ACCEPTED_STORE_FORMS",
    "AbstractResultStore",
    "BACKENDS",
    "DEFAULT_LEASE_TTL",
    "FileResultStore",
    "Lease",
    "NetResultStore",
    "QUARANTINE_DIR_NAME",
    "STORE_BACKEND_ENV_VAR",
    "STORE_ENV_VAR",
    "SqliteResultStore",
    "StoreCounters",
    "StoreError",
    "StoreServer",
    "StoreStats",
    "TMP_LEAK_AGE_SECONDS",
    "decode_entry",
    "default_store_dir",
    "encode_entry",
    "from_url",
    "lease_owner_id",
    "make_store",
]
