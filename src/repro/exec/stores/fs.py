"""Filesystem result store: one JSON file per entry, crash-safe.

Results live as one JSON file per job under a versioned root::

    <cache dir>/v<ENGINE_VERSION>/<key[:2]>/<key>.json

where ``<cache dir>`` is ``$REPRO_CACHE_DIR`` if set, else
``~/.cache/nucache-repro``.  The two-character fan-out keeps directories
small for multi-thousand-entry stores.

Durability and concurrency:

* **Writes** are atomic *and* durable: the payload goes to a temp file
  that is flushed and fsynced, renamed over the target with
  ``os.replace``, and the directory entry is fsynced — a crash at any
  point either publishes the complete entry or nothing (a stranded temp
  file is swept by :meth:`FileResultStore.prune`), never a torn one.
* **Reads** are validated (parse, round-trip, engine invariants); a bad
  entry is quarantined to ``<cache dir>/quarantine/`` with a
  ``.reason`` sidecar and reported as a miss.  An entry unlinked by a
  concurrent ``prune`` mid-read is a clean miss, never an exception.
* **Leases** are ``O_EXCL``-created files under ``<cache dir>/leases/``
  carrying owner/PID/heartbeat metadata; a heartbeat older than the
  lease TTL marks it stale and any process may take it over.
* **Maintenance** (``prune``/``clear``) serializes on an advisory
  ``flock`` so two maintainers never interleave destructively.
"""

from __future__ import annotations

import errno
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

try:  # pragma: no cover - platform availability, not logic
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]

from repro.common.errors import StoreError
from repro.exec.job import ENGINE_VERSION, SimJob
from repro.exec.stores.base import (
    AbstractResultStore,
    DEFAULT_LEASE_TTL,
    ENTRY_HEADER_LEN,
    ENTRY_MAGIC,
    Lease,
    StoreStats,
    decode_entry,
    default_store_dir,
    encode_entry,
    entry_logical_size,
    inflate_entry,
    lease_owner_id,
    stale_after,
)
from repro.sim.engine import SimResult

#: Subdirectory (of the store base) holding quarantined entries.
QUARANTINE_DIR_NAME = "quarantine"

#: Subdirectory (of the store base) holding lease files.
LEASES_DIR_NAME = "leases"

#: Temp files older than this are considered leaked by a crashed writer
#: and swept by :meth:`FileResultStore.prune`.
TMP_LEAK_AGE_SECONDS = 3600.0


def _fsync_path(path: Path) -> None:
    """Flush a directory entry to disk, tolerating filesystems that refuse."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. directories on some FSes
        pass
    finally:
        os.close(fd)


class FileResultStore(AbstractResultStore):
    """Maps job content hashes to serialized results on the filesystem."""

    backend = "fs"

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        super().__init__()
        base = Path(root) if root is not None else default_store_dir()
        self.base = base
        self.root = base / f"v{ENGINE_VERSION}"
        self.quarantine_dir = base / QUARANTINE_DIR_NAME
        self.leases_dir = base / LEASES_DIR_NAME

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return self.root.glob("*/*.json")

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------

    def get(self, job: SimJob) -> Optional[SimResult]:
        """Stored result for ``job``, or ``None`` on miss.

        An entry that is corrupted (truncated write, bad JSON, missing
        fields) *or* fails the engine invariants is quarantined and
        reported as a miss, so callers fall back to recomputation and a
        bad result is never served.  An entry that vanishes mid-read —
        a concurrent ``prune`` or ``clear`` racing this process — is a
        clean miss, never an exception.
        """
        path = self._path(job.key())
        try:
            text = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            if exc.errno == errno.ENOENT:  # pruned between open and read
                return None
            self.quarantine(path, "unreadable entry")
            return None
        result, reason = decode_entry(text, job)
        if result is None:
            self.quarantine(path, reason or "corrupt entry")
            return None
        return result

    def put(self, job: SimJob, result: SimResult) -> Path:
        """Persist ``result`` under ``job``'s key (atomic and durable).

        The temp file is fsynced before the rename and the directory
        entry after it, so a crash can never publish a torn entry — the
        worst case is a stranded ``.tmp`` file that :meth:`prune`
        sweeps.  A concurrent ``prune`` sweeping the (momentarily empty)
        fan-out bucket between our ``mkdir`` and the rename is retried.
        """
        path = self._path(job.key())
        payload = encode_entry(job, result)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        last_error: Optional[OSError] = None
        for _attempt in range(3):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                with open(tmp, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
                _fsync_path(path.parent)
                return path
            except FileNotFoundError as exc:
                # The bucket was rmdir'ed by a concurrent prune between
                # mkdir and replace; recreate and retry.
                last_error = exc
                continue
            finally:
                # A failure between write and replace must not strand the
                # temp file (after a successful replace this is a no-op).
                try:
                    tmp.unlink()
                except OSError:
                    pass
        raise StoreError(
            f"could not publish entry {job.key()[:12]}: {last_error}"
        )

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a bad entry aside (never delete) with a ``.reason`` sidecar.

        Returns the quarantined path, or ``None`` if the entry vanished
        or could not be moved.
        """
        if not path.is_file():
            return None
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            dest = self.quarantine_dir / path.name
            bump = 0
            while dest.exists():
                bump += 1
                dest = self.quarantine_dir / f"{path.name}.{bump}"
            os.replace(path, dest)
        except OSError:
            return None
        sidecar = dest.with_name(dest.name + ".reason")
        try:
            sidecar.write_text(
                f"quarantined {time.strftime('%Y-%m-%d %H:%M:%S')}\n"
                f"from: {path}\nreason: {reason}\n",
                encoding="utf-8",
            )
        except OSError:
            pass
        return dest

    def quarantined_entries(self) -> Iterator[Path]:
        """Quarantined entry files (excluding ``.reason`` sidecars)."""
        if not self.quarantine_dir.is_dir():
            return iter(())
        return (
            path
            for path in self.quarantine_dir.iterdir()
            if path.is_file() and not path.name.endswith(".reason")
        )

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------

    def _lease_path(self, key: str) -> Path:
        return self.leases_dir / f"{key}.lease"

    def _read_lease(self, path: Path) -> Optional[dict]:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _write_lease_file(self, path: Path, record: dict, exclusive: bool) -> bool:
        """Create (``O_EXCL``) or atomically replace a lease file."""
        if exclusive:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                return False
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            return True
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return True

    def acquire_lease(
        self,
        key: str,
        ttl: float = DEFAULT_LEASE_TTL,
        owner: Optional[str] = None,
    ) -> Optional[Lease]:
        """Take the compute lease for ``key`` via ``O_EXCL`` file creation.

        A stale holder (heartbeat older than its TTL — a crashed or hung
        process) is displaced: the stale file is unlinked and the
        ``O_EXCL`` create retried, so exactly one contender wins the
        takeover.  A live foreign lease is counted as contention.
        """
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        path = self._lease_path(key)
        owner = owner if owner is not None else lease_owner_id()
        now = time.time()
        record = {
            "key": key,
            "owner": owner,
            "pid": os.getpid(),
            "created": now,
            "heartbeat": now,
            "ttl": ttl,
        }
        displaced = False
        for _attempt in range(3):
            if self._write_lease_file(path, record, exclusive=True):
                return Lease(
                    key=key, owner=owner, acquired=now, ttl=ttl,
                    takeover=displaced,
                )
            existing = self._read_lease(path)
            if existing is None:
                # Unreadable or vanished between create and read; retry.
                continue
            heartbeat = float(existing.get("heartbeat") or 0.0)
            holder_ttl = float(existing.get("ttl") or ttl)
            if stale_after(heartbeat, holder_ttl):
                # Crashed/hung holder: displace and re-contend.  Only one
                # of several racers wins the O_EXCL create that follows.
                try:
                    path.unlink()
                except OSError:
                    pass
                if not displaced:
                    displaced = True
                    self.counters.stale_takeovers += 1
                continue
            self.counters.lease_contentions += 1
            return None
        self.counters.lease_contentions += 1
        return None

    def renew_lease(self, lease: Lease) -> bool:
        """Refresh the heartbeat of a lease we hold; False if displaced."""
        path = self._lease_path(lease.key)
        existing = self._read_lease(path)
        if existing is None or existing.get("owner") != lease.owner:
            return False
        existing["heartbeat"] = time.time()
        try:
            self._write_lease_file(path, existing, exclusive=False)
        except OSError:
            return False
        return True

    def release_lease(self, lease: Lease) -> bool:
        """Drop a lease we hold; False if it expired or was taken over."""
        path = self._lease_path(lease.key)
        existing = self._read_lease(path)
        if existing is None or existing.get("owner") != lease.owner:
            return False
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def active_leases(self) -> List[Tuple[str, str, bool]]:
        """Current ``(key, owner, is_stale)`` lease census."""
        if not self.leases_dir.is_dir():
            return []
        census: List[Tuple[str, str, bool]] = []
        for path in sorted(self.leases_dir.glob("*.lease")):
            record = self._read_lease(path)
            if record is None:
                continue
            heartbeat = float(record.get("heartbeat") or 0.0)
            ttl = float(record.get("ttl") or DEFAULT_LEASE_TTL)
            census.append(
                (
                    str(record.get("key") or path.stem),
                    str(record.get("owner") or "?"),
                    stale_after(heartbeat, ttl),
                )
            )
        return census

    # ------------------------------------------------------------------
    # Chaos hooks
    # ------------------------------------------------------------------

    def corrupt_entry(self, key: str, mode: str = "truncate") -> bool:
        """Damage a stored entry in place (chaos testing only).

        ``semantic`` damage decodes either codec version, skews the
        counters, and writes the entry back as well-formed v1 JSON so
        only read-side *validation* — never codec framing — catches it.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return False
        if mode == "semantic":
            payload = json.loads(inflate_entry(data))
            core = payload["result"]["cores"][0]
            core["llc_misses"] = int(core["llc_accesses"]) + 1
            path.write_text(json.dumps(payload, sort_keys=True),
                            encoding="utf-8")
        else:
            path.write_bytes(data[: max(1, len(data) // 2)])
        return True

    def simulate_crash_mid_put(self, job: SimJob, result: SimResult) -> None:
        """Strand a torn temp file and fail, like a real mid-write crash."""
        path = self._path(job.key())
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = encode_entry(job, result)
            tmp.write_bytes(payload[: len(payload) // 2])
        except OSError:
            pass
        raise StoreError(
            f"injected store crash mid-put for {job.key()[:12]} (fs backend)"
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    @contextmanager
    def _maintenance_lock(self):
        """Advisory cross-process lock serializing prune/clear.

        Uses ``flock`` (auto-released on process death, so a crashed
        maintainer can never deadlock the store); degrades to unlocked
        operation where ``fcntl`` or the lock file are unavailable.
        """
        handle = None
        try:
            self.base.mkdir(parents=True, exist_ok=True)
            handle = open(self.base / ".maintenance.lock", "a+")
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        except OSError:
            handle = None
        try:
            yield
        finally:
            if handle is not None:
                try:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                finally:
                    handle.close()

    def stats(self) -> StoreStats:
        """Entry count and byte footprint of the current version's store.

        Leaked ``.tmp`` files are never counted as entries; quarantined
        entries and the lease census are surfaced separately.
        """
        entries = 0
        total = 0
        logical = 0
        for path in self._entries():
            try:
                stored = path.stat().st_size
                with open(path, "rb") as handle:
                    header = handle.read(ENTRY_HEADER_LEN)
            except OSError:
                continue
            total += stored
            if header.startswith(ENTRY_MAGIC) and len(header) >= ENTRY_HEADER_LEN:
                logical += entry_logical_size(header)
            else:
                logical += stored  # v1 plain text is its own logical size
            entries += 1
        leases = self.active_leases()
        stale = sum(1 for _, _, is_stale in leases if is_stale)
        return StoreStats(
            root=str(self.root),
            entries=entries,
            total_bytes=total,
            quarantined=sum(1 for _ in self.quarantined_entries()),
            backend=self.backend,
            leases_active=len(leases) - stale,
            leases_stale=stale,
            logical_bytes=logical,
        )

    def clear(self) -> int:
        """Delete every entry of every version.  Returns entries removed.

        Also drops quarantined entries, lease files, and any leaked temp
        files.  Serialized against concurrent maintainers.
        """
        removed = 0
        if not self.base.is_dir():
            return removed
        with self._maintenance_lock():
            for path in self.base.glob("v*/*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
            for directory in (self.quarantine_dir, self.leases_dir):
                if not directory.is_dir():
                    continue
                for path in list(directory.iterdir()):
                    try:
                        path.unlink()
                    except OSError:
                        continue
                try:
                    directory.rmdir()
                except OSError:
                    pass
            self._sweep_tmp_files(min_age_seconds=0.0)
            self._sweep_empty_dirs()
        return removed

    def prune(
        self,
        max_age_days: Optional[float] = None,
        keep: Optional[int] = None,
    ) -> int:
        """Trim the store; returns the number of entries removed.

        Entries from *older engine versions* are always removed (they can
        never be read again), as are temp files leaked by crashed writers
        and lease files whose holders went stale.  Then, of the current
        version's entries, drop those older than ``max_age_days`` and —
        if ``keep`` is given — all but the ``keep`` most recently
        touched.  Serialized against concurrent maintainers.
        """
        removed = 0
        with self._maintenance_lock():
            if self.base.is_dir():
                for version_dir in self.base.glob("v*"):
                    if version_dir.name == self.root.name:
                        continue
                    for path in version_dir.glob("*/*.json"):
                        try:
                            path.unlink()
                            removed += 1
                        except OSError:
                            continue
            self._sweep_tmp_files(min_age_seconds=TMP_LEAK_AGE_SECONDS)
            self._sweep_stale_leases()
            aged = []
            for path in self._entries():
                try:
                    aged.append((path.stat().st_mtime, path))
                except OSError:
                    continue
            aged.sort(reverse=True)  # newest first
            cutoff = (
                None if max_age_days is None
                else time.time() - max_age_days * 86400.0
            )
            for rank, (mtime, path) in enumerate(aged):
                too_old = cutoff is not None and mtime < cutoff
                overflow = keep is not None and rank >= keep
                if too_old or overflow:
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        continue
            self._sweep_empty_dirs()
        return removed

    def _sweep_tmp_files(self, min_age_seconds: float) -> int:
        """Remove ``.{name}.{pid}.tmp`` files stranded by crashed writers.

        ``min_age_seconds`` guards against racing a live writer mid-put;
        ``clear`` passes 0 (nothing should be writing during a clear).
        """
        if not self.base.is_dir():
            return 0
        swept = 0
        now = time.time()
        for path in self.base.glob("v*/*/.*.tmp"):
            try:
                if now - path.stat().st_mtime < min_age_seconds:
                    continue
                path.unlink()
                swept += 1
            except OSError:
                continue
        return swept

    def _sweep_stale_leases(self) -> int:
        """Unlink lease files whose heartbeats went stale (orphans)."""
        if not self.leases_dir.is_dir():
            return 0
        swept = 0
        for path in list(self.leases_dir.glob("*.lease")):
            record = self._read_lease(path)
            if record is None:
                continue
            heartbeat = float(record.get("heartbeat") or 0.0)
            ttl = float(record.get("ttl") or DEFAULT_LEASE_TTL)
            if not stale_after(heartbeat, ttl):
                continue
            try:
                path.unlink()
                swept += 1
            except OSError:
                continue
        return swept

    def _sweep_empty_dirs(self) -> None:
        if not self.base.is_dir():
            return
        for version_dir in sorted(self.base.glob("v*"), reverse=True):
            for bucket in sorted(version_dir.glob("*"), reverse=True):
                try:
                    bucket.rmdir()
                except OSError:
                    pass
            try:
                version_dir.rmdir()
            except OSError:
                pass
