"""Performance metrics: single-stream and multiprogrammed."""

from repro.metrics.basic import hit_rate, miss_reduction, mpki
from repro.metrics.multicore import (
    average_normalized_turnaround,
    fairness,
    geometric_mean,
    harmonic_mean_speedup,
    improvement,
    weighted_speedup,
)

__all__ = [
    "average_normalized_turnaround",
    "fairness",
    "geometric_mean",
    "harmonic_mean_speedup",
    "hit_rate",
    "improvement",
    "miss_reduction",
    "mpki",
    "weighted_speedup",
]
