"""Single-stream cache metrics."""

from __future__ import annotations


def mpki(misses: int, instructions: int) -> float:
    """Misses per thousand instructions."""
    if instructions <= 0:
        raise ValueError(f"instructions must be positive, got {instructions}")
    if misses < 0:
        raise ValueError(f"misses must be >= 0, got {misses}")
    return 1000.0 * misses / instructions


def hit_rate(hits: int, accesses: int) -> float:
    """Hits per access; 0.0 when there were no accesses."""
    if hits < 0 or accesses < 0:
        raise ValueError(f"counts must be >= 0, got hits={hits}, accesses={accesses}")
    if hits > accesses:
        raise ValueError(f"hits ({hits}) exceed accesses ({accesses})")
    return hits / accesses if accesses else 0.0


def miss_reduction(baseline_misses: int, new_misses: int) -> float:
    """Fraction of baseline misses removed (0.25 = 25% fewer misses)."""
    if baseline_misses < 0 or new_misses < 0:
        raise ValueError("miss counts must be >= 0")
    if baseline_misses == 0:
        return 0.0
    return 1.0 - new_misses / baseline_misses
