"""Single-stream cache metrics and the run-level collection path.

The pure derivation functions (:func:`mpki`, :func:`hit_rate`,
:func:`miss_reduction`) operate on raw counts and stay dependency-free.
The collection path — how a run's results become run-level aggregates —
goes through the typed instruments of
:class:`repro.obs.metrics.MetricsRegistry` instead of ad-hoc dicts:
:func:`observe_results` and :func:`observe_outcomes` are called by
:func:`repro.exec.context.run_jobs` for every resolved batch, and the
registry is exported per run as ``metrics.json``.

Everything recorded here is deterministic: simulated quantities (IPC,
MPKI, miss counts) and job outcome counts, never wall-clock values —
timings belong to the tracer (see ``docs/observability.md``).
"""

from __future__ import annotations


def mpki(misses: int, instructions: int) -> float:
    """Misses per thousand instructions."""
    if instructions <= 0:
        raise ValueError(f"instructions must be positive, got {instructions}")
    if misses < 0:
        raise ValueError(f"misses must be >= 0, got {misses}")
    return 1000.0 * misses / instructions


def hit_rate(hits: int, accesses: int) -> float:
    """Hits per access; 0.0 when there were no accesses."""
    if hits < 0 or accesses < 0:
        raise ValueError(f"counts must be >= 0, got hits={hits}, accesses={accesses}")
    if hits > accesses:
        raise ValueError(f"hits ({hits}) exceed accesses ({accesses})")
    return hits / accesses if accesses else 0.0


def miss_reduction(baseline_misses: int, new_misses: int) -> float:
    """Fraction of baseline misses removed (0.25 = 25% fewer misses)."""
    if baseline_misses < 0 or new_misses < 0:
        raise ValueError("miss counts must be >= 0")
    if baseline_misses == 0:
        return 0.0
    return 1.0 - new_misses / baseline_misses


def observe_results(registry, results) -> None:
    """Fold a batch of :class:`~repro.sim.engine.SimResult` into metrics.

    Records per-policy job counters, LLC miss totals, and fixed-bucket
    histograms of per-core IPC / MPKI / LLC hit rate.  Occurrence
    weighted (a deduplicated job counts once per submission) and purely
    a function of the results, so cached and computed batches record
    identically.  ``None`` slots (failed jobs under ``strict=False``)
    are skipped.
    """
    for result in results:
        if result is None:
            continue
        registry.counter("sim.jobs", policy=result.policy).inc()
        registry.counter(
            "sim.llc_misses", policy=result.policy
        ).inc(result.total_llc_misses)
        for core in result.cores:
            registry.counter("sim.instructions").inc(core.instructions)
            registry.histogram(
                "sim.core_ipc", "ipc", policy=result.policy
            ).observe(core.ipc)
            registry.histogram(
                "sim.core_mpki", "mpki", policy=result.policy
            ).observe(core.mpki)
            registry.histogram(
                "sim.core_llc_hit_rate", "ratio", policy=result.policy
            ).observe(core.llc_hit_rate)


def observe_outcomes(registry, outcomes) -> None:
    """Fold a batch's per-job outcomes into execution counters.

    ``outcomes`` is :attr:`repro.exec.scheduler.Scheduler.last_outcomes`:
    per unique job, its status, attempt count and occurrence count.
    Counts depend on cache state (a warm store turns ``completed`` into
    ``cached``), which is why they live under the ``exec.`` namespace,
    apart from the cache-invariant ``sim.`` metrics.
    """
    for outcome in outcomes.values():
        registry.counter(
            "exec.jobs", status=str(outcome.get("status"))
        ).inc(int(outcome.get("occurrences", 1)))
        attempts = int(outcome.get("attempts", 0))
        if attempts:
            registry.counter("exec.failed_attempts").inc(attempts)
