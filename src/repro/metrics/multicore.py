"""Multiprogrammed-performance metrics.

All take per-core shared-run IPCs plus the corresponding alone-run IPCs
(the same workload monopolizing the same cache).  The paper's headline
numbers are weighted-speedup improvements over the LRU baseline.
"""

from __future__ import annotations

from typing import Sequence


def _check(shared: Sequence[float], alone: Sequence[float]) -> None:
    if len(shared) != len(alone):
        raise ValueError(
            f"shared ({len(shared)}) and alone ({len(alone)}) lengths differ"
        )
    if not shared:
        raise ValueError("need at least one core")
    if any(ipc <= 0 for ipc in alone):
        raise ValueError(f"alone IPCs must be positive, got {list(alone)}")
    if any(ipc < 0 for ipc in shared):
        raise ValueError(f"shared IPCs must be >= 0, got {list(shared)}")


def weighted_speedup(shared: Sequence[float], alone: Sequence[float]) -> float:
    """Sum of per-core normalized IPCs (system throughput)."""
    _check(shared, alone)
    return sum(s / a for s, a in zip(shared, alone))


def harmonic_mean_speedup(shared: Sequence[float], alone: Sequence[float]) -> float:
    """Harmonic mean of normalized IPCs (balances throughput/fairness)."""
    _check(shared, alone)
    if any(s == 0 for s in shared):
        return 0.0
    return len(shared) / sum(a / s for s, a in zip(shared, alone))


def average_normalized_turnaround(
    shared: Sequence[float], alone: Sequence[float]
) -> float:
    """ANTT: mean per-core slowdown (lower is better)."""
    _check(shared, alone)
    if any(s == 0 for s in shared):
        raise ValueError("ANTT undefined when a core made no progress")
    return sum(a / s for s, a in zip(shared, alone)) / len(shared)


def fairness(shared: Sequence[float], alone: Sequence[float]) -> float:
    """Min/max ratio of per-core normalized IPCs (1.0 = perfectly fair)."""
    _check(shared, alone)
    normalized = [s / a for s, a in zip(shared, alone)]
    top = max(normalized)
    if top == 0:
        return 0.0
    return min(normalized) / top


def improvement(metric_new: float, metric_base: float) -> float:
    """Relative improvement of a metric over a baseline (0.10 = +10%)."""
    if metric_base <= 0:
        raise ValueError(f"baseline metric must be positive, got {metric_base}")
    return metric_new / metric_base - 1.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for cross-mix averages)."""
    if not values:
        raise ValueError("need at least one value")
    if any(value <= 0 for value in values):
        raise ValueError(f"geometric mean needs positive values, got {list(values)}")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
