"""Profiling hooks: per-job ``cProfile`` capture and merged hot tables.

``nucache-repro run --profile`` wraps every simulation job — inline or
in a pool worker — with :class:`ProfiledExecute`, which runs the job
under :mod:`cProfile` and dumps the raw stats to one file per attempt
under the run's trace directory.  After each experiment the CLI merges
that experiment's dumps with :func:`merge_profiles` and renders the
cumulative hot-function table with :func:`render_hot_table`.

Profiling composes with every execution mode: the wrapper is picklable
(it carries only the inner callable and an output directory), so it
crosses the ``ProcessPoolExecutor`` boundary, and it never touches the
result — profiled runs produce byte-identical simulated numbers.
"""

from __future__ import annotations

import cProfile
import marshal
import os
import pstats
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

#: File suffix for raw per-job profile dumps.
PROFILE_SUFFIX = ".pstats"


class ProfiledExecute:
    """A picklable execute-wrapper that profiles each job it runs.

    Args:
        inner: the real job runner (must itself be picklable for pool
            use, e.g. :func:`repro.exec.job.execute_job`).
        out_dir: directory receiving one ``<pid>-<n>-<key>.pstats`` dump
            per executed attempt.
    """

    def __init__(self, inner: Callable, out_dir: Union[str, Path]) -> None:
        self.inner = inner
        self.out_dir = str(out_dir)

    def __call__(self, job):
        """Run ``job`` under cProfile; dump stats, return the result."""
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return self.inner(job)
        finally:
            profiler.disable()
            self._dump(profiler, job)

    def _dump(self, profiler: cProfile.Profile, job) -> None:
        out_dir = Path(self.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        key = getattr(job, "key", lambda: "job")()[:12]
        sequence = 0
        while True:
            path = out_dir / f"{os.getpid()}-{sequence}-{key}{PROFILE_SUFFIX}"
            if not path.exists():
                break
            sequence += 1
        profiler.create_stats()
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            marshal.dump(profiler.stats, handle)
        os.replace(tmp, path)


def merge_profiles(directory: Union[str, Path]) -> Optional[pstats.Stats]:
    """Merge every ``.pstats`` dump under ``directory`` into one Stats.

    Returns ``None`` when the directory holds no dumps (e.g. every job
    came from the result store, so nothing executed).
    """
    paths = sorted(Path(directory).glob(f"*{PROFILE_SUFFIX}")) if Path(
        directory
    ).is_dir() else []
    stats: Optional[pstats.Stats] = None
    for path in paths:
        try:
            stats = (
                pstats.Stats(str(path))
                if stats is None
                else stats.add(str(path))
            )
        except Exception:  # noqa: BLE001 — a torn dump must not sink the run
            continue
    return stats


def hot_functions(
    stats: pstats.Stats, top: int = 15
) -> List[Tuple[str, int, float, float]]:
    """The ``top`` functions by cumulative time.

    Returns ``(where, calls, total_time, cumulative_time)`` rows, where
    ``where`` is ``file:line(function)`` with the path shortened to its
    last two components.
    """
    rows: List[Tuple[str, int, float, float]] = []
    for (filename, lineno, funcname), (
        _cc, ncalls, tottime, cumtime, _callers
    ) in stats.stats.items():  # type: ignore[attr-defined]
        short = "/".join(Path(filename).parts[-2:]) if filename else "~"
        rows.append((f"{short}:{lineno}({funcname})", ncalls, tottime, cumtime))
    rows.sort(key=lambda row: (-row[3], -row[2], row[0]))
    return rows[:top]


def render_hot_table(stats: pstats.Stats, top: int = 15,
                     title: str = "hot functions") -> str:
    """A fixed-width text table of the hottest functions."""
    rows = hot_functions(stats, top)
    lines = [
        f"{title} (top {len(rows)} by cumulative time)",
        f"{'cum s':>9} {'tot s':>9} {'calls':>10}  where",
    ]
    for where, ncalls, tottime, cumtime in rows:
        lines.append(f"{cumtime:>9.3f} {tottime:>9.3f} {ncalls:>10d}  {where}")
    return "\n".join(lines)
