"""Structured event tracer: spans, events, counters, JSONL sink.

A :class:`Tracer` records structured events into a bounded in-memory
ring and flushes them as JSON lines to one file per process.  It is the
*observation* half of `repro.obs`: instrumented call sites (the engine's
phase boundaries, the cache's sampled counters, the scheduler's job
lifecycle) emit records through it, and offline tooling (``nucache-repro
runs show <id> --timings``) reads them back.

Design rules, in order of importance:

1. **Zero cost when disabled.**  Tracing is off unless the
   ``REPRO_TRACE_DIR`` environment variable points at a directory (the
   CLI sets it for ``run --trace``).  When off, :func:`active_tracer`
   returns ``None`` from a cached check and no tracer object is ever
   allocated; every instrumented call site guards with
   ``if tracer is not None``.
2. **Observe, never steer.**  A tracer must not change a single
   simulated number: nothing in this module touches simulator state,
   and all tracer output (including errors) stays off stdout.
3. **Crash-tolerant.**  Records buffer in a ring and flush whenever the
   ring fills, when a top-level span closes, and at :meth:`Tracer.close`
   (also registered via :mod:`atexit`).  Closing with spans still open
   — an interrupt, an exception — emits an ``end`` record per open span
   marked ``"aborted": true``, so partial runs still render.

Trace record schema (one JSON object per line)::

    {"type": "begin", "name": ..., "id": N, "parent": N|null,
     "depth": D, "ts": wall-clock, ...fields}
    {"type": "end",   "name": ..., "id": N, "dur": seconds,
     "aborted": true?, ...fields}
    {"type": "event", "name": ..., "span": N|null, "ts": ..., ...fields}
    {"type": "counter", "name": ..., "span": N|null, "value": V, ...fields}

``id`` is unique per process-file; cross-process ordering comes from the
``ts`` wall-clock fields.  Every process (the CLI itself and each worker
in the pool) writes its own ``proc-<pid>.jsonl`` under the run's trace
directory, so no cross-process locking is needed.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Environment variable that switches tracing on: the directory trace
#: files are written to (the CLI points it at
#: ``$REPRO_CACHE_DIR/traces/<run-id>/``).  Inherited by worker
#: processes, which is how tracing crosses the process-pool boundary.
TRACE_ENV_VAR = "REPRO_TRACE_DIR"

#: Records buffered before an automatic flush.
DEFAULT_RING_CAPACITY = 1024


class Span:
    """One timed region; use as a context manager for paired begin/end.

    Spans nest: each records its parent (the innermost span open on the
    same tracer when it began) and its depth.  Extra keyword fields
    passed to :meth:`Tracer.span` land on the ``begin`` record; fields
    passed to :meth:`done` land on the ``end`` record.
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "depth",
                 "_started", "closed")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], depth: int) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self._started = time.monotonic()
        self.closed = False

    def done(self, aborted: bool = False, **fields: object) -> None:
        """Emit the ``end`` record (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self.tracer._end_span(self, aborted=aborted, **fields)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.done(aborted=exc_type is not None)

    @property
    def elapsed(self) -> float:
        """Seconds since the span began."""
        return time.monotonic() - self._started


class Tracer:
    """Ring-buffered structured-event writer for one process.

    Args:
        path: JSONL sink file (parent directories are created).
        ring_capacity: records buffered before an automatic flush.
    """

    def __init__(self, path: Union[str, Path],
                 ring_capacity: int = DEFAULT_RING_CAPACITY) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.ring_capacity = max(1, int(ring_capacity))
        self._ring: List[str] = []
        self._open_spans: List[Span] = []
        self._next_id = 0
        self._pid = os.getpid()
        self.closed = False

    # ------------------------------------------------------------------
    # Recording API
    # ------------------------------------------------------------------

    def span(self, name: str, **fields: object) -> Span:
        """Open a nested timed region; close via ``with`` or ``.done()``."""
        parent = self._open_spans[-1] if self._open_spans else None
        span = Span(
            self,
            name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._open_spans),
        )
        self._next_id += 1
        self._open_spans.append(span)
        self._write({
            "type": "begin",
            "name": name,
            "id": span.span_id,
            "parent": span.parent_id,
            "depth": span.depth,
            "ts": time.time(),
            **fields,
        })
        return span

    def event(self, name: str, **fields: object) -> None:
        """Record one point-in-time event."""
        self._write({
            "type": "event",
            "name": name,
            "span": self._current_span_id(),
            "ts": time.time(),
            **fields,
        })

    def counter(self, name: str, value: object, **fields: object) -> None:
        """Record one counter sample (a monotonic or gauge value)."""
        self._write({
            "type": "counter",
            "name": name,
            "span": self._current_span_id(),
            "value": value,
            "ts": time.time(),
            **fields,
        })

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Append every buffered record to the sink file."""
        if not self._ring:
            return
        lines, self._ring = self._ring, []
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("".join(lines))

    def close(self) -> None:
        """Abort any open spans, flush, and stop accepting records.

        Safe to call more than once; also registered with ``atexit`` by
        :func:`active_tracer` so an interrupt or crash still leaves a
        readable trace (the flush-on-interrupt guarantee).
        """
        if self.closed:
            return
        while self._open_spans:
            self._open_spans[-1].done(aborted=True)
        self.flush()
        self.closed = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _current_span_id(self) -> Optional[int]:
        return self._open_spans[-1].span_id if self._open_spans else None

    def _end_span(self, span: Span, aborted: bool, **fields: object) -> None:
        # Close any child spans left open (nesting is strictly LIFO).
        while self._open_spans and self._open_spans[-1] is not span:
            self._open_spans[-1].done(aborted=True)
        if self._open_spans and self._open_spans[-1] is span:
            self._open_spans.pop()
        record: Dict[str, object] = {
            "type": "end",
            "name": span.name,
            "id": span.span_id,
            "dur": span.elapsed,
            "ts": time.time(),
        }
        if aborted:
            record["aborted"] = True
        record.update(fields)
        self._write(record)
        if not self._open_spans:
            self.flush()

    def _write(self, record: Dict[str, object]) -> None:
        if self.closed:
            return
        self._ring.append(json.dumps(record, sort_keys=True) + "\n")
        if len(self._ring) >= self.ring_capacity:
            self.flush()


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------

_active: Optional[Tracer] = None
_resolved = False


def active_tracer() -> Optional[Tracer]:
    """The process's tracer, or ``None`` when tracing is disabled.

    Resolution is lazy and cached: the first call checks
    ``$REPRO_TRACE_DIR`` and, when set, allocates a :class:`Tracer`
    writing to ``<dir>/proc-<pid>.jsonl``; when unset, every later call
    is a cached ``None`` (the zero-cost-disabled guarantee).  A process
    forked after resolution (a pool worker) gets its own fresh tracer —
    the parent's buffered records are never duplicated into the child.
    """
    global _active, _resolved
    if _active is not None and _active._pid == os.getpid():
        return _active
    if _active is None and _resolved:
        return None
    root = os.environ.get(TRACE_ENV_VAR)
    _resolved = True
    if not root:
        _active = None
        return None
    _active = Tracer(Path(root) / f"proc-{os.getpid()}.jsonl")
    atexit.register(_active.close)
    return _active


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install (or, with ``None``, clear) the process-wide tracer."""
    global _active, _resolved
    _active = tracer
    _resolved = tracer is not None


def reset_tracer() -> None:
    """Close any active tracer and re-read the environment on next use."""
    global _active, _resolved
    if _active is not None:
        _active.close()
    _active = None
    _resolved = False
