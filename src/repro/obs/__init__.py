"""`repro.obs` — opt-in observability: tracing, metrics, profiling.

The simulator's execution stack is instrumented at three altitudes, all
of them **observational** (they never change a simulated number) and all
**zero-cost when disabled** (no objects allocated, every call site
guarded):

* :mod:`repro.obs.trace` — a structured event tracer.  Enabled by the
  ``REPRO_TRACE_DIR`` environment variable (the CLI's ``run --trace``),
  it records phase boundaries from the engine, sampled cache counters,
  and job lifecycle events from the scheduler as JSONL files under
  ``$REPRO_CACHE_DIR/traces/<run-id>/``.
* :mod:`repro.obs.metrics` — a deterministic metrics registry
  (counters, gauges, fixed-bucket histograms) exported per run as
  ``metrics.json``.
* :mod:`repro.obs.profile` — per-job :mod:`cProfile` capture
  (``run --profile``) merged into per-experiment hot-function tables.
* :mod:`repro.obs.timings` — offline rendering of phase/job wall-clock
  breakdowns (``runs show <id> --timings``) from journal plus trace.

See ``docs/observability.md`` for usage, the trace schema, and the
overhead guarantees.
"""

from repro.obs.metrics import (
    BUCKET_LAYOUTS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    set_registry,
)
from repro.obs.trace import (
    TRACE_ENV_VAR,
    Span,
    Tracer,
    active_tracer,
    reset_tracer,
    set_tracer,
)

__all__ = [
    "BUCKET_LAYOUTS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TRACE_ENV_VAR",
    "Tracer",
    "active_registry",
    "active_tracer",
    "reset_tracer",
    "set_registry",
    "set_tracer",
]
