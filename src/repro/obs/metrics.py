"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the *aggregation* half of `repro.obs`: where the tracer
records a timeline, the registry folds a run down to named numbers that
can be diffed across commits.  It replaces the ad-hoc dictionary
plumbing that used to carry per-run aggregates (`BatchReport` merges in
``repro.exec.context``, bare ``level_counts`` dicts in the CLI) with
three typed instruments:

* :class:`Counter` — a monotonically increasing integer.
* :class:`Gauge` — a last-write-wins value.
* :class:`Histogram` — observation counts over a **fixed, named bucket
  layout** (:data:`BUCKET_LAYOUTS`).  Layouts are part of the schema:
  two runs of the same code always produce structurally identical
  output, so ``metrics.json`` files diff cleanly.

Determinism contract: :meth:`MetricsRegistry.to_dict` (and hence the
exported ``metrics.json``) is a pure function of the sequence of
recorded observations.  Instruments are keyed by ``name`` plus sorted
``labels``, serialization sorts every key, and **no wall-clock values
are ever recorded** — timings belong to the tracer.  That is what lets
the golden-file test pin ``metrics.json`` byte-for-byte across runs.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.common.errors import ReproError

#: Named fixed bucket layouts (upper bounds; one overflow bucket is
#: implicit).  Fixed layouts — rather than data-driven ones — are what
#: makes histogram output deterministic and diffable across runs.
BUCKET_LAYOUTS: Dict[str, Tuple[float, ...]] = {
    # Instructions-per-cycle of a simulated core (trace-driven IPC ≤ 1).
    "ipc": (0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0),
    # Misses per kilo-instruction.
    "mpki": (0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0),
    # Rates and fractions in [0, 1].
    "ratio": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    # Event counts (geometric, 1 .. 10^7).
    "count": (1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7),
}

#: Label tuple type: sorted ``(key, value)`` pairs.
LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A last-write-wins numeric metric."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge's value."""
        self.value = float(value)


class Histogram:
    """Observation counts over a fixed bucket layout.

    ``counts[i]`` counts observations ``v <= bounds[i]`` (cumulative-free
    form); the final slot counts overflow (``v > bounds[-1]``).  ``sum``
    accumulates raw values in observation order, so it is deterministic
    for a deterministic observation sequence.
    """

    __slots__ = ("name", "labels", "layout", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, labels: LabelItems, layout: str) -> None:
        if layout not in BUCKET_LAYOUTS:
            raise ReproError(
                f"unknown histogram layout {layout!r}; "
                f"known: {', '.join(sorted(BUCKET_LAYOUTS))}"
            )
        self.name = name
        self.labels = labels
        self.layout = layout
        self.bounds = BUCKET_LAYOUTS[layout]
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value


class MetricsRegistry:
    """A namespace of instruments, exportable as deterministic JSON.

    Instruments are created on first use and keyed by name plus sorted
    labels; asking for the same series twice returns the same object.
    Mixing instrument kinds under one series key is an error.
    """

    def __init__(self) -> None:
        self._series: Dict[str, object] = {}

    def _get(self, kind, name: str, labels: Dict[str, object], *args):
        key = _series_key(name, _label_items(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = kind(name, _label_items(labels), *args)
            self._series[key] = instrument
        elif not isinstance(instrument, kind):
            raise ReproError(
                f"metric {key!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter for ``name`` + ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the gauge for ``name`` + ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, layout: str, **labels: object) -> Histogram:
        """Get or create the histogram for ``name`` + ``labels``.

        ``layout`` must be a :data:`BUCKET_LAYOUTS` key and must match
        the layout the series was first created with.
        """
        histogram = self._get(Histogram, name, labels, layout)
        if histogram.layout != layout:
            raise ReproError(
                f"histogram {name!r} uses layout {histogram.layout!r}, "
                f"not {layout!r}"
            )
        return histogram

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Deterministic nested-dict form (sorted series keys)."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, object] = {}
        for key in sorted(self._series):
            instrument = self._series[key]
            if isinstance(instrument, Counter):
                counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.value
            else:
                histogram = instrument
                histograms[key] = {
                    "layout": histogram.layout,
                    "bounds": list(histogram.bounds),
                    "counts": list(histogram.counts),
                    "count": histogram.count,
                    "sum": histogram.sum,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def export(self, path: Union[str, Path]) -> Path:
        """Write ``metrics.json`` (sorted keys, stable byte-for-byte)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"
        path.write_text(payload, encoding="utf-8")
        return path


# ----------------------------------------------------------------------
# Process-wide activation (main process only — workers never aggregate)
# ----------------------------------------------------------------------

_active: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The run's registry, or ``None`` when metrics collection is off."""
    return _active


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Install (or, with ``None``, clear) the process-wide registry."""
    global _active
    _active = registry
