"""Wall-clock breakdowns for ``nucache-repro runs show <id> --timings``.

Combines the two observability sinks a run leaves behind:

* the **run journal** (always written): experiment wall times, scheduler
  batch wall times, and per-job settle times recorded in each batch's
  outcomes (serial runs time the attempt itself; pooled runs time
  submission-to-settle, queue wait included);
* the **trace directory** (written with ``run --trace``): per-process
  JSONL event files carrying simulation *phase* spans — warmup vs.
  measurement, NUcache selection rotations — that the journal cannot
  see because they happen inside worker processes.

The journal section always renders; the phase section appears only when
a trace directory exists for the run, and degrades gracefully when it is
partial (a killed worker flushes what it had on exit).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.exec.store import default_store_dir

#: Subdirectory of the store base holding per-run trace directories.
TRACES_DIR_NAME = "traces"

#: Slowest-job rows rendered per experiment.
TOP_JOBS = 5


def traces_root() -> Path:
    """Where per-run trace directories live (shares the store base)."""
    return default_store_dir() / TRACES_DIR_NAME


def trace_dir_for(run_id: str) -> Path:
    """The trace directory a run with ``run_id`` would have written."""
    return traces_root() / run_id


def load_trace_records(trace_dir: Union[str, Path]) -> List[Dict[str, object]]:
    """Every record from every ``proc-*.jsonl`` file under ``trace_dir``.

    Tolerates torn lines (a killed process loses at most the line in
    flight) and returns ``[]`` for a missing directory.
    """
    trace_dir = Path(trace_dir)
    if not trace_dir.is_dir():
        return []
    records: List[Dict[str, object]] = []
    for path in sorted(trace_dir.glob("proc-*.jsonl")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def _phase_totals(trace_records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate phase durations and epoch counts from trace records."""
    phase_seconds: Dict[str, float] = {}
    phase_counts: Dict[str, int] = {}
    epochs = 0
    job_seconds: List[float] = []
    for record in trace_records:
        name = record.get("name")
        if record.get("type") == "event" and name == "sim.phase":
            phase = str(record.get("phase", "?"))
            duration = float(record.get("dur", 0.0) or 0.0)
            phase_seconds[phase] = phase_seconds.get(phase, 0.0) + duration
            phase_counts[phase] = phase_counts.get(phase, 0) + 1
        elif record.get("type") == "event" and name == "nucache.epoch":
            epochs += 1
        elif record.get("type") == "end" and name == "exec.job":
            job_seconds.append(float(record.get("dur", 0.0) or 0.0))
    return {
        "phase_seconds": phase_seconds,
        "phase_counts": phase_counts,
        "epochs": epochs,
        "job_seconds": job_seconds,
    }


def _slowest_jobs(outcomes: Dict[str, Dict[str, object]]) -> List[Dict[str, object]]:
    rows = []
    for key, outcome in outcomes.items():
        timings = outcome.get("timings") or []
        if not timings:
            continue
        rows.append({
            "key": key,
            "label": outcome.get("label", key[:12]),
            "seconds": float(timings[-1]),
            "attempts": len(timings),
            "status": outcome.get("status"),
        })
    rows.sort(key=lambda row: (-row["seconds"], row["key"]))
    return rows[:TOP_JOBS]


def render_timings(
    summary,
    records: Sequence[Dict[str, object]],
    trace_records: Optional[Sequence[Dict[str, object]]] = None,
) -> str:
    """Render the per-phase / per-job wall-clock breakdown of one run.

    Args:
        summary: the run's :class:`~repro.exec.journal.RunSummary`.
        records: the run's parsed journal records, in file order.
        trace_records: records from the run's trace directory, or
            ``None``/empty when the run was not traced.
    """
    lines: List[str] = [f"timings for {summary.run_id} ({summary.status})"]

    # --- journal side: experiments, batches, per-job attempt timings --
    experiment: Optional[str] = None
    batch_no = 0
    for record in records:
        kind = record.get("record")
        if kind == "experiment_start":
            experiment = str(record.get("experiment"))
            batch_no = 0
        elif kind == "batch":
            batch_no += 1
            report = record.get("report") or {}
            wall = float(report.get("wall_time", 0.0) or 0.0)
            lines.append(
                f"  {experiment or '?'} batch {batch_no} "
                f"[{record.get('label')}]: {wall:.2f}s scheduler wall — "
                f"{report.get('completed', 0)} computed, "
                f"{report.get('cached', 0)} cached, "
                f"{report.get('failed', 0)} failed"
            )
            outcomes = record.get("outcomes") or {}
            for row in _slowest_jobs(outcomes):
                lines.append(
                    f"    {row['seconds']:>8.2f}s  {row['label']} "
                    f"({row['status']}, {row['attempts']} attempt"
                    f"{'s' if row['attempts'] != 1 else ''})"
                )
        elif kind == "experiment_end":
            elapsed = record.get("elapsed")
            if elapsed is not None:
                lines.append(
                    f"  {record.get('experiment')}: {record.get('status')} "
                    f"in {float(elapsed):.2f}s"
                )

    # --- trace side: simulation phases, epochs ------------------------
    if trace_records:
        totals = _phase_totals(trace_records)
        phase_seconds: Dict[str, float] = totals["phase_seconds"]
        job_seconds: List[float] = totals["job_seconds"]
        lines.append("")
        lines.append(
            f"simulation phases (from trace, {len(job_seconds)} job spans)"
        )
        grand = sum(phase_seconds.values())
        for phase in sorted(phase_seconds):
            seconds = phase_seconds[phase]
            count = totals["phase_counts"][phase]
            share = f" ({seconds / grand:.0%})" if grand > 0 else ""
            lines.append(
                f"  {phase:<10} {seconds:>8.2f}s over {count} runs{share}"
            )
        if totals["epochs"]:
            lines.append(
                f"  epochs     {totals['epochs']} NUcache selection rotations"
            )
        if job_seconds:
            lines.append(
                f"  job wall   {sum(job_seconds):>8.2f}s total, "
                f"{max(job_seconds):.2f}s max"
            )
    elif trace_records is not None:
        lines.append("")
        lines.append(
            "no trace records for this run "
            "(re-run with --trace for per-phase breakdowns)"
        )
    return "\n".join(lines)
