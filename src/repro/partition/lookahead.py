"""UCP's lookahead partitioning algorithm (Qureshi & Patt, MICRO 2006).

Given each core's utility curve (hits as a function of allocated ways),
split the LLC's ways to maximize total hits.  The exact problem is
NP-hard for non-convex curves; *lookahead* greedily grants, at each
step, the block of ways with the highest marginal utility **per way**,
looking ahead past plateaus in a curve (a core whose curve is flat for
two ways and then jumps still gets considered at its jump).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def _best_step(curve: Sequence[int], current: int, budget: int) -> Tuple[float, int]:
    """Best (utility-per-way, ways) step for one core.

    Scans every feasible extension of the core's allocation and returns
    the one with the highest marginal utility per way granted.
    """
    best_rate = -1.0
    best_ways = 0
    base = curve[current]
    for extra in range(1, budget + 1):
        gain = curve[current + extra] - base
        rate = gain / extra
        if rate > best_rate:
            best_rate = rate
            best_ways = extra
    return best_rate, best_ways


def lookahead_partition(
    curves: Sequence[Sequence[int]], total_ways: int, min_ways: int = 1
) -> List[int]:
    """Partition ``total_ways`` among cores using lookahead.

    Args:
        curves: per-core utility curves, ``curves[i][w]`` = hits of core
            ``i`` with ``w`` ways, for ``w in 0..ways``; each curve must
            be defined at least up to ``total_ways`` entries or its own
            maximum (allocation never exceeds ``len(curve) - 1``).
        total_ways: ways available in each set.
        min_ways: guaranteed minimum per core (UCP uses 1 so no core is
            completely starved).

    Returns:
        Per-core way allocations summing to ``total_ways``.
    """
    num_cores = len(curves)
    if num_cores == 0:
        raise ValueError("need at least one core to partition for")
    if total_ways < num_cores * min_ways:
        raise ValueError(
            f"{total_ways} ways cannot give {num_cores} cores {min_ways} each"
        )
    allocation = [min_ways] * num_cores
    remaining = total_ways - num_cores * min_ways
    while remaining > 0:
        winner = -1
        winner_ways = 0
        winner_rate = -1.0
        for core, curve in enumerate(curves):
            headroom = min(remaining, len(curve) - 1 - allocation[core])
            if headroom <= 0:
                continue
            rate, ways = _best_step(curve, allocation[core], headroom)
            # Ties go to the core holding fewer ways so equal-utility
            # cores converge to an even split instead of starving.
            beats = rate > winner_rate or (
                rate == winner_rate
                and winner >= 0
                and allocation[core] < allocation[winner]
            )
            if beats:
                winner_rate = rate
                winner = core
                winner_ways = ways
        if winner < 0 or winner_ways == 0:
            # Every curve exhausted (all cores at their curve's end);
            # spread the remainder round-robin to keep the sum exact.
            for core in range(num_cores):
                if remaining == 0:
                    break
                allocation[core] += 1
                remaining -= 1
            break
        allocation[winner] += winner_ways
        remaining -= winner_ways
    return allocation
