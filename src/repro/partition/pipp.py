"""PIPP — Promotion/Insertion Pseudo-Partitioning (Xie & Loh, ISCA 2009).

PIPP realizes a target partition *implicitly* through the recency stack
rather than through strict quotas:

* **Insertion**: a miss by core ``i`` inserts the new line at stack
  depth ``ways - pi_i`` (counting MRU = 0), where ``pi_i`` is core
  ``i``'s target allocation from UCP's lookahead over UMON curves — a
  core with a big allocation inserts near MRU, a core with a small one
  near LRU.
* **Promotion**: a hit promotes the line by a *single* position, with
  probability ``p_prom`` (3/4), instead of jumping to MRU.
* **Stream handling**: cores classified as streaming (high miss traffic
  with near-zero UMON utility) are demoted to a fixed insertion depth
  of ``pi_stream = 1`` and promote with a much lower probability,
  preventing scans from acquiring stack depth.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.cache.cache import LastLevelCache
from repro.cache.line import CacheLine
from repro.common.config import CacheGeometry
from repro.common.rng import derive_seed
from repro.partition.lookahead import lookahead_partition
from repro.partition.umon import UtilityMonitor

#: Probability a hit promotes a line by one stack position.
PROMOTION_PROBABILITY = 0.75
#: Promotion probability for lines of streaming cores.
STREAM_PROMOTION_PROBABILITY = 1.0 / 128.0
#: Insertion allocation used for streaming cores.
STREAM_ALLOCATION = 1
#: A core is streaming when its UMON hit/access ratio is below this.
STREAM_UTILITY_THRESHOLD = 0.02


class _PIPPSet:
    """One set: lines plus a priority stack (index 0 = highest priority)."""

    __slots__ = ("lines", "tag_to_way", "stack", "free_ways")

    def __init__(self, ways: int) -> None:
        self.lines = [CacheLine() for _ in range(ways)]
        self.tag_to_way: Dict[int, int] = {}
        self.stack: List[int] = []
        self.free_ways = list(range(ways - 1, -1, -1))


class PIPPCache(LastLevelCache):
    """Shared LLC under promotion/insertion pseudo-partitioning."""

    name = "pipp"

    def __init__(
        self,
        geometry: CacheGeometry,
        num_cores: int,
        repartition_period: int = 50_000,
        umon_sample_period: int = 32,
        seed: int = 0,
        stream_detection: bool = True,
    ) -> None:
        super().__init__(geometry)
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        if geometry.ways < num_cores:
            raise ValueError(
                f"{geometry.ways}-way cache cannot allocate to {num_cores} cores"
            )
        self.num_cores = num_cores
        self.repartition_period = repartition_period
        self.stream_detection = stream_detection
        self.monitors = [
            UtilityMonitor(geometry, umon_sample_period) for _ in range(num_cores)
        ]
        base = geometry.ways // num_cores
        self.allocation = [base] * num_cores
        self.streaming = [False] * num_cores
        self.sets = [_PIPPSet(geometry.ways) for _ in range(geometry.num_sets)]
        self._set_mask = geometry.num_sets - 1
        self._index_bits = geometry.num_sets.bit_length() - 1
        self._rng = random.Random(derive_seed(seed, "pipp"))
        self._accesses_since_repartition = 0
        self.repartitions = 0

    # ------------------------------------------------------------------
    # LastLevelCache interface
    # ------------------------------------------------------------------

    def access(self, block_addr: int, core: int, pc: int, is_write: bool) -> bool:
        self.monitors[core].observe(block_addr)
        self._accesses_since_repartition += 1
        if self._accesses_since_repartition >= self.repartition_period:
            self.repartition()

        pipp_set = self.sets[block_addr & self._set_mask]
        tag = block_addr >> self._index_bits
        way = pipp_set.tag_to_way.get(tag, -1)
        if way >= 0:
            self._promote(pipp_set, way, core)
            if is_write:
                pipp_set.lines[way].dirty = True
            self.stats.record(core, hit=True)
            return True

        self.stats.record(core, hit=False)
        self._fill(pipp_set, tag, core, pc, is_write)
        return False

    def repartition(self) -> List[int]:
        """Refresh target allocations and streaming classifications."""
        curves = [monitor.utility_curve() for monitor in self.monitors]
        self.allocation = lookahead_partition(curves, self.geometry.ways, min_ways=1)
        if self.stream_detection:
            for core, monitor in enumerate(self.monitors):
                accesses = monitor.accesses
                hits = accesses - monitor.misses
                self.streaming[core] = (
                    accesses >= 64 and hits / accesses < STREAM_UTILITY_THRESHOLD
                )
        for monitor in self.monitors:
            monitor.decay()
        self._accesses_since_repartition = 0
        self.repartitions += 1
        return self.allocation

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _promote(self, pipp_set: _PIPPSet, way: int, core: int) -> None:
        probability = (
            STREAM_PROMOTION_PROBABILITY
            if self.streaming[core]
            else PROMOTION_PROBABILITY
        )
        if self._rng.random() >= probability:
            return
        position = pipp_set.stack.index(way)
        if position > 0:
            pipp_set.stack[position], pipp_set.stack[position - 1] = (
                pipp_set.stack[position - 1],
                pipp_set.stack[position],
            )

    def _fill(self, pipp_set: _PIPPSet, tag: int, core: int, pc: int, dirty: bool) -> None:
        if pipp_set.free_ways:
            way = pipp_set.free_ways.pop()
        else:
            way = pipp_set.stack.pop()
            victim = pipp_set.lines[way]
            del pipp_set.tag_to_way[victim.tag]
            self.stats.total.evictions += 1
            if victim.dirty:
                self.stats.total.writebacks += 1
        pipp_set.lines[way].fill(tag, core, pc, dirty)
        pipp_set.tag_to_way[tag] = way
        allocation = (
            STREAM_ALLOCATION
            if self.stream_detection and self.streaming[core]
            else self.allocation[core]
        )
        depth = max(0, min(len(pipp_set.stack), self.geometry.ways - allocation))
        pipp_set.stack.insert(depth, way)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def occupancy_by_core(self) -> dict:
        counts: dict = {}
        for pipp_set in self.sets:
            for way in pipp_set.stack:
                owner = pipp_set.lines[way].core
                counts[owner] = counts.get(owner, 0) + 1
        return counts
