"""Cache-partitioning baselines: UMON, UCP lookahead, UCP, PIPP."""

from repro.partition.lookahead import lookahead_partition
from repro.partition.pipp import (
    PIPPCache,
    PROMOTION_PROBABILITY,
    STREAM_ALLOCATION,
    STREAM_PROMOTION_PROBABILITY,
    STREAM_UTILITY_THRESHOLD,
)
from repro.partition.ucp import UCPCache
from repro.partition.umon import UtilityMonitor

__all__ = [
    "PIPPCache",
    "PROMOTION_PROBABILITY",
    "STREAM_ALLOCATION",
    "STREAM_PROMOTION_PROBABILITY",
    "STREAM_UTILITY_THRESHOLD",
    "UCPCache",
    "UtilityMonitor",
    "lookahead_partition",
]
