"""UMON — utility monitors (Qureshi & Patt, MICRO 2006).

A UMON is a per-core auxiliary tag directory (ATD) over a sample of the
LLC's sets.  It replays the core's LLC accesses against a private,
full-associativity-of-the-LLC LRU stack and counts hits *per recency
position*.  Because of the LRU stack property, the number of hits the
core would enjoy with ``w`` ways to itself equals the sum of position
counters ``0 .. w-1`` — the marginal-utility curve that UCP's lookahead
algorithm partitions on and that PIPP turns into insertion positions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import CacheGeometry


class _ATDSet:
    """One sampled set's LRU tag stack (MRU first)."""

    __slots__ = ("tags",)

    def __init__(self) -> None:
        self.tags: List[int] = []


class UtilityMonitor:
    """Per-core UMON with dynamic set sampling.

    Args:
        geometry: geometry of the monitored LLC (sets/ways).
        sample_period: monitor every Nth set (UMON-DSS; 1 = global).
    """

    def __init__(self, geometry: CacheGeometry, sample_period: int = 32) -> None:
        if sample_period <= 0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        self.ways = geometry.ways
        self.sample_period = sample_period
        self._set_mask = geometry.num_sets - 1
        self._index_bits = geometry.num_sets.bit_length() - 1
        self._sampled: Dict[int, _ATDSet] = {}
        self.position_hits = [0] * self.ways
        self.misses = 0

    def observe(self, block_addr: int) -> None:
        """Replay one LLC access by the monitored core."""
        set_index = block_addr & self._set_mask
        if set_index % self.sample_period != 0:
            return
        atd = self._sampled.get(set_index)
        if atd is None:
            atd = self._sampled.setdefault(set_index, _ATDSet())
        tag = block_addr >> self._index_bits
        tags = atd.tags
        try:
            position = tags.index(tag)
        except ValueError:
            self.misses += 1
            tags.insert(0, tag)
            if len(tags) > self.ways:
                tags.pop()
            return
        self.position_hits[position] += 1
        del tags[position]
        tags.insert(0, tag)

    def utility_curve(self) -> List[int]:
        """``curve[w]`` = hits with ``w`` ways; ``curve[0] == 0``."""
        curve = [0] * (self.ways + 1)
        running = 0
        for way in range(self.ways):
            running += self.position_hits[way]
            curve[way + 1] = running
        return curve

    @property
    def accesses(self) -> int:
        """Sampled accesses observed (hits at any depth + misses)."""
        return sum(self.position_hits) + self.misses

    def decay(self, factor: int = 2) -> None:
        """Halve the counters at an interval boundary (UCP's aging)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.position_hits = [count // factor for count in self.position_hits]
        self.misses //= factor
