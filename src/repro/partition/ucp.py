"""UCP — Utility-based Cache Partitioning (Qureshi & Patt, MICRO 2006).

Way-partitions the shared LLC among cores.  Per-core UMONs measure each
core's utility curve; every repartitioning interval the lookahead
algorithm recomputes the per-core way quotas.  Enforcement is the
standard *replacement-based* scheme: on a miss by core ``i``,

* if some core is over its quota in the victim set, evict that core's
  LRU line (lazily reclaiming ways after a repartition),
* otherwise evict core ``i``'s own LRU line (keeping ``i`` at quota).

Lines are never migrated at repartition time; quotas converge lazily,
exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.cache import LastLevelCache
from repro.cache.line import CacheLine
from repro.common.config import CacheGeometry
from repro.partition.lookahead import lookahead_partition
from repro.partition.umon import UtilityMonitor


class _UCPSet:
    """One way-partitioned set: LRU stack annotated with line owners."""

    __slots__ = ("lines", "tag_to_way", "stack", "free_ways", "owner_count")

    def __init__(self, ways: int, num_cores: int) -> None:
        self.lines = [CacheLine() for _ in range(ways)]
        self.tag_to_way: Dict[int, int] = {}
        self.stack: List[int] = []  # valid ways only, MRU first
        self.free_ways = list(range(ways - 1, -1, -1))
        self.owner_count = [0] * num_cores


class UCPCache(LastLevelCache):
    """Shared LLC under utility-based way partitioning."""

    name = "ucp"

    def __init__(
        self,
        geometry: CacheGeometry,
        num_cores: int,
        repartition_period: int = 50_000,
        umon_sample_period: int = 32,
    ) -> None:
        super().__init__(geometry)
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        if geometry.ways < num_cores:
            raise ValueError(
                f"{geometry.ways}-way cache cannot guarantee a way to {num_cores} cores"
            )
        self.num_cores = num_cores
        self.repartition_period = repartition_period
        self.monitors = [
            UtilityMonitor(geometry, umon_sample_period) for _ in range(num_cores)
        ]
        self.allocation = self._even_allocation()
        self.sets = [_UCPSet(geometry.ways, num_cores) for _ in range(geometry.num_sets)]
        self._set_mask = geometry.num_sets - 1
        self._index_bits = geometry.num_sets.bit_length() - 1
        self._accesses_since_repartition = 0
        self.repartitions = 0

    def _even_allocation(self) -> List[int]:
        base = self.geometry.ways // self.num_cores
        allocation = [base] * self.num_cores
        for core in range(self.geometry.ways - base * self.num_cores):
            allocation[core] += 1
        return allocation

    # ------------------------------------------------------------------
    # LastLevelCache interface
    # ------------------------------------------------------------------

    def access(self, block_addr: int, core: int, pc: int, is_write: bool) -> bool:
        self.monitors[core].observe(block_addr)
        self._accesses_since_repartition += 1
        if self._accesses_since_repartition >= self.repartition_period:
            self.repartition()

        ucp_set = self.sets[block_addr & self._set_mask]
        tag = block_addr >> self._index_bits
        way = ucp_set.tag_to_way.get(tag, -1)
        if way >= 0:
            ucp_set.stack.remove(way)
            ucp_set.stack.insert(0, way)
            if is_write:
                ucp_set.lines[way].dirty = True
            self.stats.record(core, hit=True)
            return True

        self.stats.record(core, hit=False)
        self._fill(ucp_set, tag, core, pc, is_write)
        return False

    def repartition(self) -> List[int]:
        """Recompute quotas from the UMON curves; returns the new quotas."""
        curves = [monitor.utility_curve() for monitor in self.monitors]
        self.allocation = lookahead_partition(curves, self.geometry.ways, min_ways=1)
        for monitor in self.monitors:
            monitor.decay()
        self._accesses_since_repartition = 0
        self.repartitions += 1
        return self.allocation

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fill(self, ucp_set: _UCPSet, tag: int, core: int, pc: int, dirty: bool) -> None:
        if ucp_set.free_ways:
            way = ucp_set.free_ways.pop()
        else:
            way = self._choose_victim(ucp_set, core)
            victim = ucp_set.lines[way]
            del ucp_set.tag_to_way[victim.tag]
            ucp_set.owner_count[victim.core] -= 1
            ucp_set.stack.remove(way)
            self.stats.total.evictions += 1
            if victim.dirty:
                self.stats.total.writebacks += 1
        ucp_set.lines[way].fill(tag, core, pc, dirty)
        ucp_set.tag_to_way[tag] = way
        ucp_set.owner_count[core] += 1
        ucp_set.stack.insert(0, way)

    def _choose_victim(self, ucp_set: _UCPSet, requester: int) -> int:
        """Replacement-based quota enforcement (see module docstring)."""
        over_quota = self._lru_way_of_over_quota_core(ucp_set, exclude=requester)
        if over_quota is not None:
            return over_quota
        own = self._lru_way_of_core(ucp_set, requester)
        if own is not None:
            return own
        # Requester holds nothing here and nobody is over quota (can
        # happen right after a repartition): fall back to global LRU.
        return ucp_set.stack[-1]

    def _lru_way_of_over_quota_core(self, ucp_set: _UCPSet, exclude: int) -> Optional[int]:
        for way in reversed(ucp_set.stack):
            owner = ucp_set.lines[way].core
            if owner != exclude and ucp_set.owner_count[owner] > self.allocation[owner]:
                return way
        return None

    def _lru_way_of_core(self, ucp_set: _UCPSet, core: int) -> Optional[int]:
        for way in reversed(ucp_set.stack):
            if ucp_set.lines[way].core == core:
                return way
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def occupancy_by_core(self) -> dict:
        counts: dict = {}
        for ucp_set in self.sets:
            for core, count in enumerate(ucp_set.owner_count):
                if count:
                    counts[core] = counts.get(core, 0) + count
        return counts

    def set_of(self, block_addr: int) -> _UCPSet:
        """The set a block maps to (for tests)."""
        return self.sets[block_addr & self._set_mask]
