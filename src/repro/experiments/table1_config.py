"""Table 1 — simulated system configuration.

Rendered from the preset configs so the table can never drift from what
the simulator actually runs.
"""

from __future__ import annotations

from repro.common.config import paper_system_config
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "table1"
TITLE = "Simulated system configuration"


def run() -> ExperimentResult:
    """Build the configuration table for 1/2/4/8-core machines."""
    from repro.common.config import config_table

    rows = []
    for num_cores in (1, 2, 4, 8):
        config = paper_system_config(num_cores)
        row: dict = {"cores": num_cores}
        for parameter, value in config_table(config):
            if parameter == "Cores":
                continue
            row[parameter] = value
        rows.append(row)
    notes = (
        "Geometry follows the paper scaled 4x down in capacity "
        "(DESIGN.md, Substitutions); LLC capacity grows with core count."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)


def main() -> None:
    """Print the table."""
    print(run().to_text())


if __name__ == "__main__":
    main()
