"""Figs. 5/6/7 — multicore weighted speedup: NUcache vs LRU.

The paper's headline: NUcache improves weighted speedup over the LRU
baseline by 9.6% / 30% / 33% for dual / quad / eight-core SPEC mixes.
Each figure is the same experiment at a different core count; the shape
targets are (a) a positive gmean improvement at every core count and
(b) the improvement growing from 2 cores to 4/8 cores.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.experiments.harness import multicore_comparison

DEFAULT_ACCESSES = 120_000
POLICIES = ("lru", "nucache")

_FIGURES = {
    "fig5": (2, "Dual-core weighted speedup: NUcache vs LRU (paper: +9.6%)"),
    "fig6": (4, "Quad-core weighted speedup: NUcache vs LRU (paper: +30%)"),
    "fig7": (8, "Eight-core weighted speedup: NUcache vs LRU (paper: +33%)"),
}


def run_cores(
    num_cores: int, accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Run the NUcache-vs-LRU comparison for one core count."""
    experiment_id = {cores: fig for fig, (cores, _t) in _FIGURES.items()}[num_cores]
    title = _FIGURES[experiment_id][1]
    accesses = scaled_accesses(accesses)
    rows = multicore_comparison(num_cores, POLICIES, accesses, seed)
    gmean_row = rows[-1]
    summary = {"gmean_improvement": float(gmean_row["nucache_vs_lru"])}
    notes = (
        "ws_* columns are weighted speedups (alone = LRU on the full "
        "LLC); nucache_vs_lru is the relative improvement the paper "
        "reports per mix."
    )
    return ExperimentResult(experiment_id, title, rows, notes, summary)


def run_fig5(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Fig. 5: dual-core mixes."""
    return run_cores(2, accesses, seed)


def run_fig6(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Fig. 6: quad-core mixes."""
    return run_cores(4, accesses, seed)


def run_fig7(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Fig. 7: eight-core mixes."""
    return run_cores(8, accesses, seed)


def main() -> None:
    """Print all three figures' data."""
    for runner in (run_fig5, run_fig6, run_fig7):
        print(runner().to_text())
        print()


if __name__ == "__main__":
    main()
