"""Experiment drivers: one module per table/figure of the evaluation."""

from typing import Callable, Dict, List

from repro.common.errors import ExperimentError
from repro.experiments import (
    fig1_delinquent_pcs,
    fig2_nextuse_cdf,
    fig3_single_core,
    fig4_deliway_sweep,
    fig567_multicore,
    fig8_vs_partitioning,
    fig9_selection_ablation,
    fig10_hardware_ablations,
    fig11_pc_policies,
    fig12_prefetch,
    fig13_bandwidth,
    fig14_phases,
    fig15_llc_size,
    table1_config,
    table3_fairness,
    table5_seeds,
    table2_overhead,
)
from repro.experiments.base import (
    ExperimentResult,
    render_table,
    scaled_accesses,
    sim_grid,
)
from repro.experiments.harness import (
    grid_weighted_speedups,
    mix_weighted_speedups,
    multicore_comparison,
)
from repro.experiments.plots import bar_chart, render_with_bars, result_bars, sparkline

#: Registry mapping experiment ids to zero-argument runners.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1_config.run,
    "fig1": fig1_delinquent_pcs.run,
    "fig2": fig2_nextuse_cdf.run,
    "fig3": fig3_single_core.run,
    "fig4": fig4_deliway_sweep.run,
    "fig5": fig567_multicore.run_fig5,
    "fig6": fig567_multicore.run_fig6,
    "fig7": fig567_multicore.run_fig7,
    "fig8": fig8_vs_partitioning.run,
    "fig9": fig9_selection_ablation.run,
    "fig10": fig10_hardware_ablations.run,
    "fig11": fig11_pc_policies.run,
    "fig12": fig12_prefetch.run,
    "fig13": fig13_bandwidth.run,
    "fig14": fig14_phases.run,
    "fig15": fig15_llc_size.run,
    "table2": table2_overhead.run,
    "table3": table3_fairness.run,
    "table5": table5_seeds.run,
}


def experiment_ids() -> List[str]:
    """All experiment ids in presentation order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    return runner()


__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "bar_chart",
    "experiment_ids",
    "grid_weighted_speedups",
    "mix_weighted_speedups",
    "multicore_comparison",
    "render_table",
    "render_with_bars",
    "result_bars",
    "run_experiment",
    "scaled_accesses",
    "sim_grid",
    "sparkline",
]
