"""Fig. 11 — NUcache vs later PC-based policies (extension).

NUcache (HPCA 2011) was followed within months by SHiP (MICRO 2011),
the other landmark PC-centric LLC policy, and sits alongside the RRIP
family (ISCA 2010).  This extension runs the quad-core comparison of
Fig. 8 with those added: SHiP learns per-PC *insertion priority* (and
optionally bypasses dead-on-arrival PCs) while NUcache grants *extra
lifetime* to a cost-benefit-selected PC subset.  The paper's future-work
hybrid — UCP-partitioned MainWays with NUcache DeliWays
(``nucache-ucp``) — is included as well.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.experiments.harness import multicore_comparison

EXPERIMENT_ID = "fig11"
TITLE = "Quad-core weighted speedup: NUcache vs SHiP / SDBP / DRRIP / TADIP-F (+hybrid)"
DEFAULT_ACCESSES = 120_000
POLICIES = ("lru", "drrip", "tadip", "sdbp", "ship", "ship-bypass", "nucache", "nucache-ucp")


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED,
        num_cores: int = 4) -> ExperimentResult:
    """Run the extended policy comparison."""
    accesses = scaled_accesses(accesses)
    rows = multicore_comparison(num_cores, POLICIES, accesses, seed)
    gmean_row = rows[-1]
    summary = {
        f"gmean_{policy}_vs_lru": float(gmean_row[f"{policy}_vs_lru"])
        for policy in POLICIES
        if policy != "lru"
    }
    notes = (
        "Extension beyond the paper (SHiP/DRRIP postdate it).  Shape "
        "target: the PC-based schemes (SHiP, NUcache) lead the PC-blind "
        "ones; NUcache remains competitive with SHiP — they exploit the "
        "same signal through different mechanisms."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes, summary)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
