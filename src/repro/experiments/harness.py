"""Shared machinery for the experiment drivers.

The multicore figures all follow the same recipe: run every mix of a
core count under a set of LLC policies, normalize each policy's weighted
speedup to the LRU baseline, and report per-mix rows plus a geometric
mean.  This module implements that recipe once.

The full (mix x policy) grid — including every alone-run denominator —
is built as one batch of :class:`~repro.exec.job.SimJob` specs and
submitted through the scheduler (:func:`repro.exec.run_jobs`): cache
hits come back from the persistent result store, misses fan out across
worker processes, and repeated alone runs are deduplicated inside the
batch.  Because every simulation is a pure function of its job spec,
the assembled rows are identical at any worker count or cache state.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.rng import DEFAULT_SEED
from repro.exec import SimJob, run_jobs
from repro.metrics.multicore import geometric_mean, weighted_speedup
from repro.workloads.mixes import mix_members, mix_names


def grid_weighted_speedups(
    mixes: Sequence[str],
    policies: Sequence[str],
    accesses: int,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Dict[str, float]]:
    """Weighted speedups for every (mix, policy) pair of a grid.

    One scheduler batch resolves all mix runs plus the alone-IPC
    denominators (LRU on the full shared LLC — the standard convention,
    shared by every policy, which is what makes the headline "X% over
    baseline" comparable across policies).
    """
    mix_jobs = [
        SimJob.mix(mix_name, policy, accesses, seed)
        for mix_name in mixes
        for policy in policies
    ]
    alone_jobs = [
        SimJob.alone(name, len(mix_members(mix_name)), accesses, seed)
        for mix_name in mixes
        for name in mix_members(mix_name)
    ]
    batch = mix_jobs + alone_jobs
    label = f"speedup-grid:{len(mixes)}mixes x {len(policies)}policies"
    resolved = dict(zip((job.key() for job in batch), run_jobs(batch, label=label)))

    speedups: Dict[str, Dict[str, float]] = {}
    for mix_name in mixes:
        members = mix_members(mix_name)
        alone = [
            resolved[SimJob.alone(name, len(members), accesses, seed).key()]
            .cores[0]
            .ipc
            for name in members
        ]
        speedups[mix_name] = {
            policy: weighted_speedup(
                resolved[SimJob.mix(mix_name, policy, accesses, seed).key()].ipcs,
                alone,
            )
            for policy in policies
        }
    return speedups


def mix_weighted_speedups(
    mix_name: str,
    policies: Sequence[str],
    accesses: int,
    seed: int = DEFAULT_SEED,
) -> Dict[str, float]:
    """Weighted speedup of one mix under each policy."""
    return grid_weighted_speedups([mix_name], policies, accesses, seed)[mix_name]


def multicore_comparison(
    num_cores: int,
    policies: Sequence[str],
    accesses: int,
    seed: int = DEFAULT_SEED,
    baseline: str = "lru",
) -> List[Dict[str, object]]:
    """Per-mix weighted speedups for a core count, plus a gmean row.

    Each row carries the raw weighted speedup per policy and, for every
    non-baseline policy, a ``<policy>_vs_<baseline>`` relative
    improvement.  The final row holds geometric means over mixes.
    """
    if baseline not in policies:
        raise ValueError(f"baseline {baseline!r} must be among policies {policies}")
    mixes = mix_names(num_cores)
    grid = grid_weighted_speedups(mixes, policies, accesses, seed)
    rows: List[Dict[str, object]] = []
    per_policy: Dict[str, List[float]] = {policy: [] for policy in policies}
    for mix_name in mixes:
        speedups = grid[mix_name]
        row: Dict[str, object] = {"mix": mix_name}
        for policy in policies:
            row[f"ws_{policy}"] = round(speedups[policy], 4)
            per_policy[policy].append(speedups[policy])
        for policy in policies:
            if policy != baseline:
                row[f"{policy}_vs_{baseline}"] = round(
                    speedups[policy] / speedups[baseline] - 1.0, 4
                )
        rows.append(row)

    gmean_row: Dict[str, object] = {"mix": "gmean"}
    base_gmean = geometric_mean(per_policy[baseline])
    for policy in policies:
        policy_gmean = geometric_mean(per_policy[policy])
        gmean_row[f"ws_{policy}"] = round(policy_gmean, 4)
        if policy != baseline:
            gmean_row[f"{policy}_vs_{baseline}"] = round(
                policy_gmean / base_gmean - 1.0, 4
            )
    rows.append(gmean_row)
    return rows
