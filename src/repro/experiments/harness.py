"""Shared machinery for the experiment drivers.

The multicore figures all follow the same recipe: run every mix of a
core count under a set of LLC policies, normalize each policy's weighted
speedup to the LRU baseline, and report per-mix rows plus a geometric
mean.  This module implements that recipe once.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.rng import DEFAULT_SEED
from repro.metrics.multicore import geometric_mean, weighted_speedup
from repro.sim.runner import alone_ipc, run_mix
from repro.workloads.mixes import mix_members, mix_names


def mix_weighted_speedups(
    mix_name: str,
    policies: Sequence[str],
    accesses: int,
    seed: int = DEFAULT_SEED,
) -> Dict[str, float]:
    """Weighted speedup of one mix under each policy.

    The alone-IPC denominators use LRU on the full shared LLC, shared by
    every policy (the standard convention, and what makes the headline
    "X% over baseline" comparable across policies).
    """
    members = mix_members(mix_name)
    alone = [alone_ipc(name, len(members), accesses, seed) for name in members]
    speedups: Dict[str, float] = {}
    for policy in policies:
        result = run_mix(mix_name, policy, accesses, seed)
        speedups[policy] = weighted_speedup(result.ipcs, alone)
    return speedups


def multicore_comparison(
    num_cores: int,
    policies: Sequence[str],
    accesses: int,
    seed: int = DEFAULT_SEED,
    baseline: str = "lru",
) -> List[Dict[str, object]]:
    """Per-mix weighted speedups for a core count, plus a gmean row.

    Each row carries the raw weighted speedup per policy and, for every
    non-baseline policy, a ``<policy>_vs_<baseline>`` relative
    improvement.  The final row holds geometric means over mixes.
    """
    if baseline not in policies:
        raise ValueError(f"baseline {baseline!r} must be among policies {policies}")
    rows: List[Dict[str, object]] = []
    per_policy: Dict[str, List[float]] = {policy: [] for policy in policies}
    for mix_name in mix_names(num_cores):
        speedups = mix_weighted_speedups(mix_name, policies, accesses, seed)
        row: Dict[str, object] = {"mix": mix_name}
        for policy in policies:
            row[f"ws_{policy}"] = round(speedups[policy], 4)
            per_policy[policy].append(speedups[policy])
        for policy in policies:
            if policy != baseline:
                row[f"{policy}_vs_{baseline}"] = round(
                    speedups[policy] / speedups[baseline] - 1.0, 4
                )
        rows.append(row)

    gmean_row: Dict[str, object] = {"mix": "gmean"}
    base_gmean = geometric_mean(per_policy[baseline])
    for policy in policies:
        policy_gmean = geometric_mean(per_policy[policy])
        gmean_row[f"ws_{policy}"] = round(policy_gmean, 4)
        if policy != baseline:
            gmean_row[f"{policy}_vs_{baseline}"] = round(
                policy_gmean / base_gmean - 1.0, 4
            )
    rows.append(gmean_row)
    return rows
