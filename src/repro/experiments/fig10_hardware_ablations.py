"""Fig. 10 — hardware-realism ablations (extension).

The simulator profiles Next-Use exactly; the paper's hardware cannot.
This experiment quantifies what each hardware concession costs:

* **Set sampling** — profile every Nth set only (the monitor the
  hardware budget of Table 2 assumes is the 1-in-32 variant).
* **History capacity** — how many evicted tags the monitor remembers
  while waiting for their next use.
* **DeliWay hit handling** — promote to the MainWays (the paper) vs
  refresh inside the DeliWays (a cheaper datapath).
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.sim.runner import run_single

EXPERIMENT_ID = "fig10"
TITLE = "Hardware-realism ablations: sampling, history size, DeliWay hits"
DEFAULT_ACCESSES = 150_000
SAMPLE_PERIODS = (1, 8, 32, 64)
HISTORY_CAPACITIES = (512, 2048, 8192, 32768)
BENCHMARKS = ("art_like", "ammp_like", "soplex_like")


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run the three ablations; rows tagged by the ``ablation`` column."""
    accesses = scaled_accesses(accesses)
    rows = []
    for name in BENCHMARKS:
        baseline_ipc = run_single(name, "lru", accesses, seed).cores[0].ipc
        row: dict = {"ablation": "sampling", "benchmark": name}
        for period in SAMPLE_PERIODS:
            result = run_single(name, "nucache", accesses, seed, sample_period=period)
            row[f"1/{period}"] = round(result.cores[0].ipc / baseline_ipc, 4)
        rows.append(row)
    for name in BENCHMARKS:
        baseline_ipc = run_single(name, "lru", accesses, seed).cores[0].ipc
        row = {"ablation": "history", "benchmark": name}
        for capacity in HISTORY_CAPACITIES:
            result = run_single(
                name, "nucache", accesses, seed, history_capacity=capacity
            )
            row[f"H={capacity}"] = round(result.cores[0].ipc / baseline_ipc, 4)
        rows.append(row)
    for name in BENCHMARKS:
        baseline_ipc = run_single(name, "lru", accesses, seed).cores[0].ipc
        row = {"ablation": "deli-hit", "benchmark": name}
        for mode in ("fifo", "lru"):
            result = run_single(
                name, "nucache", accesses, seed, deli_replacement=mode
            )
            label = "promote" if mode == "fifo" else "refresh"
            row[label] = round(result.cores[0].ipc / baseline_ipc, 4)
        rows.append(row)
    notes = (
        "Cells are IPC normalized to LRU.  Shape targets: moderate "
        "sampling (1/8, 1/32) keeps most of the exact-profiling gain; "
        "a too-small history forfeits it (reuses fall off the monitor "
        "before being observed); promote-vs-refresh is second order."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
