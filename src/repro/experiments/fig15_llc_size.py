"""Fig. 15 — sensitivity to LLC capacity (extension of the paper's
cache-size sensitivity discussion).

NUcache's benefit window is bounded on both sides: a small-enough LLC
cannot capture the delinquent loops at all (their Next-Use distances
exceed any retention the DeliWays can afford), a big-enough LLC holds
them under plain LRU (nothing left to capture).  This sweep moves the
single-core LLC from half to four times the default 256 KB and reports
NUcache's IPC gain over same-size LRU at each point — the expected
shape is a hump with its peak near the default (the workloads were
calibrated there, mirroring the paper's choice of SPEC-vs-1MB).
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import CacheGeometry, paper_system_config
from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.metrics.multicore import geometric_mean
from repro.sim.engine import MulticoreEngine
from repro.sim.memory import FixedLatencyMemory
from repro.sim.policies import make_llc
from repro.sim.runner import make_traces

EXPERIMENT_ID = "fig15"
TITLE = "NUcache gain vs LLC capacity (single core, same-size LRU baseline)"
DEFAULT_ACCESSES = 120_000
#: LLC sizes in KB (default machine is 256 KB per core).
SIZE_SWEEP_KB = (128, 256, 512, 1024)
BENCHMARKS = ("art_like", "ammp_like", "soplex_like", "equake_like")


def _run_at_size(name: str, policy: str, size_kb: int, accesses: int,
                 seed: int) -> float:
    base = paper_system_config(1)
    config = replace(
        base, llc=CacheGeometry(size_bytes=size_kb * 1024, block_bytes=64, ways=16)
    )
    traces = make_traces([name], accesses, seed)
    llc = make_llc(policy, config, seed)
    engine = MulticoreEngine(
        traces, llc, config, FixedLatencyMemory(config.latency.memory),
        warmup_fraction=0.25,
    )
    return engine.run().cores[0].ipc


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Sweep the LLC size for the delinquent benchmarks."""
    accesses = scaled_accesses(accesses)
    rows = []
    per_size = {size: [] for size in SIZE_SWEEP_KB}
    for name in BENCHMARKS:
        row: dict = {"benchmark": name}
        for size_kb in SIZE_SWEEP_KB:
            lru_ipc = _run_at_size(name, "lru", size_kb, accesses, seed)
            nuca_ipc = _run_at_size(name, "nucache", size_kb, accesses, seed)
            ratio = nuca_ipc / lru_ipc if lru_ipc else 1.0
            row[f"{size_kb}KB"] = round(ratio, 4)
            per_size[size_kb].append(ratio)
        rows.append(row)
    gmean_row: dict = {"benchmark": "gmean"}
    for size_kb in SIZE_SWEEP_KB:
        gmean_row[f"{size_kb}KB"] = round(geometric_mean(per_size[size_kb]), 4)
    rows.append(gmean_row)
    notes = (
        "Cells are NUcache IPC over same-size 16-way LRU.  Shape "
        "target: a hump — little to gain when the LLC is far too small "
        "or big enough for LRU, the peak near the calibrated 256 KB."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
