"""Table 5 — seed sensitivity of the headline results (extension).

The workloads are synthetic, so every result in this reproduction is a
function of the generator seed.  This table reruns the quad-core
NUcache-vs-LRU comparison under several independent seeds and reports
the spread of the gmean improvement — the error bar on the headline.
"""

from __future__ import annotations

import math
from typing import List

from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.experiments.harness import multicore_comparison

EXPERIMENT_ID = "table5"
TITLE = "Seed sensitivity: quad-core NUcache-vs-LRU gmean across generator seeds"
DEFAULT_ACCESSES = 100_000
NUM_SEEDS = 4


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED,
        num_cores: int = 4, num_seeds: int = NUM_SEEDS) -> ExperimentResult:
    """Rerun the headline comparison under ``num_seeds`` seeds."""
    accesses = scaled_accesses(accesses)
    rows = []
    improvements: List[float] = []
    for offset in range(num_seeds):
        run_seed = seed + offset
        comparison = multicore_comparison(
            num_cores, ("lru", "nucache"), accesses, run_seed
        )
        improvement = float(comparison[-1]["nucache_vs_lru"])
        improvements.append(improvement)
        rows.append({"seed": run_seed, "gmean_improvement": round(improvement, 4)})
    mean = sum(improvements) / len(improvements)
    variance = sum((value - mean) ** 2 for value in improvements) / len(improvements)
    std = math.sqrt(variance)
    rows.append({"seed": "mean +- std",
                 "gmean_improvement": f"{mean:.4f} +- {std:.4f}"})
    summary = {"mean": mean, "std": std,
               "min": min(improvements), "max": max(improvements)}
    notes = (
        "Shape target: the improvement is positive under every seed and "
        "its spread is small relative to its size (the headline is a "
        "property of the workload *class*, not of one lucky trace)."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes, summary)


def main() -> None:
    """Print the table."""
    print(run().to_text())


if __name__ == "__main__":
    main()
