"""Experiment result container and rendering helpers.

Every experiment driver returns an :class:`ExperimentResult`: an
identifier, a title, a list of uniform row dicts and free-form notes.
The same object feeds the CLI's text tables, the pytest-benchmark
harness and EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ExperimentError

#: Environment variable scaling experiment trace lengths (e.g. 0.5 for
#: half-length traces); used to keep the benchmark harness quick.
SCALE_ENV_VAR = "REPRO_SCALE"


def sim_grid(jobs: Sequence["object"], label: Optional[str] = None) -> List["object"]:
    """Resolve a batch of :class:`~repro.exec.job.SimJob` specs.

    The grid-shaped drivers build their whole (benchmark x variant)
    batch up front and submit it here: results come back in submission
    order, cache-first and parallel on miss, under the process-wide
    execution defaults (``run --jobs N --no-cache``, ``REPRO_JOBS``).
    ``label`` names the batch in the run journal.
    """
    from repro.exec import run_jobs

    return run_jobs(jobs, label=label or f"grid:{len(jobs)}jobs")


def scaled_accesses(default: int) -> int:
    """Apply the ``REPRO_SCALE`` environment scaling to a trace length."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return default
    try:
        scale = float(raw)
    except ValueError:
        raise ExperimentError(f"{SCALE_ENV_VAR} must be a float, got {raw!r}") from None
    if scale <= 0:
        raise ExperimentError(f"{SCALE_ENV_VAR} must be positive, got {scale}")
    return max(10_000, int(default * scale))


@dataclass
class ExperimentResult:
    """Rows plus metadata for one table/figure reproduction."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]]
    notes: str = ""
    summary: Dict[str, float] = field(default_factory=dict)

    def column_names(self) -> List[str]:
        """Union of row keys, in first-appearance order."""
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def column(self, name: str) -> List[object]:
        """All values of one column (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned text table with title and notes."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(render_table(self.rows))
        if self.summary:
            parts = ", ".join(f"{key}={_fmt(value)}" for key, value in self.summary.items())
            lines.append(f"summary: {parts}")
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None) -> str:
    """Render row dicts as an aligned, pipe-separated text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[index]) for line in cells))
        for index, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(width) for col, width in zip(columns, widths))
    rule = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in cells
    ]
    return "\n".join([header, rule] + body)
