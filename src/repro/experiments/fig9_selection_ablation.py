"""Fig. 9 — selection-mechanism and epoch-length ablations.

Two claims behind the PC-selection design are tested here:

* **Cost-benefit matters** — comparing the paper's greedy cost-benefit
  selector against the naive "retain the top-k miss PCs" strawman, the
  "retain everything" victim-buffer extreme, and an exhaustive oracle
  (on a reduced candidate pool so the oracle is tractable).  On the
  delinquent benchmarks topk/all also retain the streaming/chase PCs
  (they miss the most), flooding the DeliWays so nothing survives to
  its next use — they collapse to LRU-level while cost-benefit
  selection declines the far-reuse PCs and wins.
* **Epoch length** — too short re-decides on noise, too long adapts
  slowly; the mechanism should be flat over a wide middle range.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.sim.runner import run_single

EXPERIMENT_ID = "fig9"
TITLE = "Ablations: PC-selection mechanism and epoch length (single core)"
DEFAULT_ACCESSES = 150_000
SELECTORS = ("greedy", "topk", "all", "oracle")
EPOCH_SWEEP = (2_500, 5_000, 10_000, 20_000, 40_000)
BENCHMARKS = ("art_like", "ammp_like", "mcf_like", "soplex_like")
#: Reduced pool so the oracle's exhaustive search stays tractable.
ORACLE_CANDIDATES = 10
ORACLE_MAX_SELECTED = 5


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run both ablations; rows are tagged by the ``ablation`` column."""
    accesses = scaled_accesses(accesses)
    rows = []
    for name in BENCHMARKS:
        baseline_ipc = run_single(name, "lru", accesses, seed).cores[0].ipc
        row: dict = {"ablation": "selector", "benchmark": name}
        for selector in SELECTORS:
            result = run_single(
                name, "nucache", accesses, seed,
                selector=selector,
                num_candidate_pcs=ORACLE_CANDIDATES,
                max_selected_pcs=ORACLE_MAX_SELECTED,
            )
            row[selector] = round(result.cores[0].ipc / baseline_ipc, 4)
        rows.append(row)
    for name in BENCHMARKS:
        baseline_ipc = run_single(name, "lru", accesses, seed).cores[0].ipc
        row = {"ablation": "epoch", "benchmark": name}
        for epoch in EPOCH_SWEEP:
            result = run_single(name, "nucache", accesses, seed, epoch_misses=epoch)
            row[f"E={epoch}"] = round(result.cores[0].ipc / baseline_ipc, 4)
        rows.append(row)
    notes = (
        "Cells are IPC normalized to LRU.  Shape targets: greedy ~ oracle "
        ">> topk ~ 1.0 on the delinquent benchmarks (topk floods the "
        "DeliWays with stream lines); epoch sensitivity roughly flat over "
        "the middle of the sweep."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
