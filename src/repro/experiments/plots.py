"""Terminal plotting for experiment results.

Pure-text rendering (no plotting dependency is available offline):
horizontal bar charts for per-row values and simple sparkline-style
series for sweeps.  Used by the CLI's ``--bars`` option and handy in
notebooks/REPLs when eyeballing a sweep.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.base import ExperimentResult

#: Width of the bar area in characters.
DEFAULT_WIDTH = 40
#: Eight-level vertical resolution for sparklines.
_SPARK_LEVELS = " .:-=+*#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = DEFAULT_WIDTH,
    reference: Optional[float] = None,
) -> str:
    """Render labelled horizontal bars.

    Args:
        labels: one label per bar.
        values: bar lengths (non-negative scale is derived from data).
        width: character budget for the longest bar.
        reference: optional value marked with ``|`` inside each bar's
            track (e.g. 1.0 for normalized results).
    """
    if len(labels) != len(values):
        raise ValueError(
            f"labels ({len(labels)}) and values ({len(values)}) differ in length"
        )
    if not labels:
        return "(no data)"
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    top = max(max(values), reference if reference is not None else 0.0)
    if top <= 0:
        top = 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = max(0, min(width, round(width * value / top)))
        track = ["#"] * filled + [" "] * (width - filled)
        if reference is not None:
            mark = max(0, min(width - 1, round(width * reference / top)))
            track[mark] = "|"
        lines.append(
            f"{str(label).ljust(label_width)}  {''.join(track)}  {value:.4g}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sketch of a series (min..max mapped to 8 glyph levels)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(values)
    span = high - low
    glyphs = []
    for value in values:
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        glyphs.append(_SPARK_LEVELS[level])
    return "".join(glyphs)


def result_bars(
    result: ExperimentResult,
    value_column: str,
    label_column: Optional[str] = None,
    reference: Optional[float] = None,
    width: int = DEFAULT_WIDTH,
) -> str:
    """Bar chart of one numeric column of an experiment result.

    Rows whose value cell is missing or non-numeric are skipped (e.g.
    rows of another ablation in a combined table).
    """
    if label_column is None:
        label_column = result.column_names()[0]
    labels: List[str] = []
    values: List[float] = []
    for row in result.rows:
        value = row.get(value_column)
        if isinstance(value, (int, float)):
            labels.append(str(row.get(label_column, "?")))
            values.append(float(value))
    if not labels:
        return f"(no numeric values in column {value_column!r})"
    header = f"{result.experiment_id}: {value_column}"
    return header + "\n" + bar_chart(labels, values, width, reference)


def guess_bar_column(result: ExperimentResult) -> Optional[str]:
    """Pick a sensible default column to chart for a result.

    Preference order: a ``*_vs_*`` relative column, then ``speedup``,
    then any numeric column that is not the label.
    """
    names = result.column_names()
    for name in names:
        if "_vs_" in name:
            return name
    for name in ("speedup", "gain", "ipc"):
        if name in names:
            return name
    for name in names[1:]:
        if any(isinstance(row.get(name), (int, float)) for row in result.rows):
            return name
    return None


def render_with_bars(result: ExperimentResult) -> str:
    """The standard text table plus an automatic bar chart when one
    of the columns lends itself to it."""
    text = result.to_text()
    column = guess_bar_column(result)
    if column is None:
        return text
    reference = 1.0 if "speedup" in column or "ipc" in column else None
    return text + "\n\n" + result_bars(result, column, reference=reference)
