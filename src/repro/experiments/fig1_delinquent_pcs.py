"""Fig. 1 — miss concentration in delinquent PCs.

The paper's motivating observation: a handful of static PCs account for
the overwhelming majority of LLC misses.  For every benchmark we run the
LRU baseline, rank PCs by miss count and report the cumulative miss
coverage of the top 1/2/4/8/16/32 PCs.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.experiments.probe import llc_miss_profile
from repro.workloads.spec_like import benchmark_names

EXPERIMENT_ID = "fig1"
TITLE = "LLC miss coverage of the top-k delinquent PCs (LRU baseline)"
DEFAULT_ACCESSES = 120_000
TOP_K = (1, 2, 4, 8, 16, 32)


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Compute miss-coverage rows for every benchmark."""
    accesses = scaled_accesses(accesses)
    rows = []
    coverages_at_8 = []
    for name in benchmark_names():
        misses = llc_miss_profile(name, accesses, seed)
        total = sum(misses.values())
        ranked = [count for _pc, count in misses.most_common()]
        row: dict = {"benchmark": name, "total_misses": total, "miss_pcs": len(ranked)}
        for k in TOP_K:
            covered = sum(ranked[:k])
            row[f"top{k}"] = round(covered / total, 4) if total else 0.0
        rows.append(row)
        if total:
            coverages_at_8.append(row["top8"])
    summary = {}
    if coverages_at_8:
        summary["mean_top8_coverage"] = sum(coverages_at_8) / len(coverages_at_8)
    notes = (
        "Shape target: top-8 PCs should cover the large majority of "
        "misses on every benchmark (the DelinquentPC property)."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes, summary)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
