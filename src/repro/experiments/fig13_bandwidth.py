"""Fig. 13 — sensitivity to memory-bandwidth contention (extension).

The default timing model charges a fixed latency per miss; real DRAM
serializes requests, so eight miss-heavy cores see queueing delay on
top.  This extension re-runs the eight-core comparison with the
bandwidth-limited channel model and checks that NUcache's advantage
*grows* there: every miss it removes also removes a queue slot, so the
benefit compounds under contention.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.exec import SimJob
from repro.experiments.base import ExperimentResult, scaled_accesses, sim_grid
from repro.metrics.multicore import geometric_mean, weighted_speedup
from repro.sim.runner import alone_ipc
from repro.workloads.mixes import mix_members, mix_names

EXPERIMENT_ID = "fig13"
TITLE = "Eight-core NUcache vs LRU under fixed-latency and bandwidth-limited memory"
DEFAULT_ACCESSES = 100_000
MEMORY_MODELS = ("fixed", "bandwidth")


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED,
        num_cores: int = 8) -> ExperimentResult:
    """Run the mix table under both memory models."""
    accesses = scaled_accesses(accesses)
    mixes = mix_names(num_cores)
    results = iter(
        sim_grid(
            [
                SimJob.mix(mix_name, policy, accesses, seed, memory_model=model)
                for mix_name in mixes
                for model in MEMORY_MODELS
                for policy in ("lru", "nucache")
            ]
        )
    )
    rows = []
    improvements = {model: [] for model in MEMORY_MODELS}
    for mix_name in mixes:
        members = mix_members(mix_name)
        alone = [alone_ipc(name, num_cores, accesses, seed) for name in members]
        row: dict = {"mix": mix_name}
        for model in MEMORY_MODELS:
            base = next(results)
            nuca = next(results)
            base_ws = weighted_speedup(base.ipcs, alone)
            nuca_ws = weighted_speedup(nuca.ipcs, alone)
            gain = nuca_ws / base_ws - 1.0
            row[f"{model}:ws_lru"] = round(base_ws, 4)
            row[f"{model}:gain"] = round(gain, 4)
            improvements[model].append(1.0 + gain)
        rows.append(row)
    gmean_row: dict = {"mix": "gmean"}
    for model in MEMORY_MODELS:
        gmean_row[f"{model}:gain"] = round(geometric_mean(improvements[model]) - 1.0, 4)
    rows.append(gmean_row)
    summary = {
        f"gmean_gain_{model}": float(gmean_row[f"{model}:gain"])
        for model in MEMORY_MODELS
    }
    notes = (
        "The alone-run denominators use fixed-latency memory in both "
        "columns, so ':gain' compares like against like (NUcache/LRU "
        "ratio under each model).  Shape target: the bandwidth-limited "
        "gain is at least the fixed-latency gain."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes, summary)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
