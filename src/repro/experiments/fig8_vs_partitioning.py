"""Fig. 8 — NUcache vs cache-partitioning/insertion baselines.

The paper's comparison claim: NUcache is more effective than well-known
cache-partitioning algorithms.  We compare, on the quad-core mixes,
against UCP (utility-based way partitioning), PIPP (promotion/insertion
pseudo-partitioning) and TADIP-F (thread-aware dynamic insertion), all
implemented in :mod:`repro.partition` and :mod:`repro.cache.replacement`.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.experiments.harness import multicore_comparison

EXPERIMENT_ID = "fig8"
TITLE = "Quad-core weighted speedup: NUcache vs UCP / PIPP / TADIP-F"
DEFAULT_ACCESSES = 120_000
POLICIES = ("lru", "tadip", "pipp", "ucp", "nucache")


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED,
        num_cores: int = 4) -> ExperimentResult:
    """Run the policy comparison (quad-core by default)."""
    accesses = scaled_accesses(accesses)
    rows = multicore_comparison(num_cores, POLICIES, accesses, seed)
    gmean_row = rows[-1]
    summary = {
        f"gmean_{policy}_vs_lru": float(gmean_row[f"{policy}_vs_lru"])
        for policy in POLICIES
        if policy != "lru"
    }
    notes = (
        "Shape target: every scheme beats LRU on average; NUcache's "
        "gmean improvement is the largest (the paper's ordering)."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes, summary)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
