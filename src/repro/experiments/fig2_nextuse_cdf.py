"""Fig. 2 — Next-Use distance distribution of delinquent-PC lines.

The paper's second observation: the lines delinquent PCs bring in are
reused *shortly after* eviction — their Next-Use distance (misses between
eviction and next use) is small relative to the cache, which is what
makes modest DeliWay retention profitable.  We reproduce the CDF over
power-of-two distance buckets, measured on the baseline eviction stream.

The distance reported per reuse event is the *solo* Next-Use distance:
evictions from the line's own filling PC between its eviction and its
next use — exactly the distance that decides whether the DeliWays would
capture the reuse if that PC alone were selected, and hence the quantity
the cost-benefit selection reasons about.
"""

from __future__ import annotations

import numpy as np

from repro.common.config import paper_system_config
from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.experiments.probe import nextuse_profiles
from repro.workloads.spec_like import benchmark_names

EXPERIMENT_ID = "fig2"
TITLE = "Next-Use distance CDF of candidate-PC reuses (baseline eviction stream)"
DEFAULT_ACCESSES = 120_000
#: Power-of-two bucket edges, in units of candidate evictions.
BUCKET_EDGES = (256, 512, 1024, 2048, 4096, 8192)


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Compute the per-benchmark Next-Use distance CDF."""
    accesses = scaled_accesses(accesses)
    deli_capacity = (
        paper_system_config(1).nucache.deli_ways
        * paper_system_config(1).llc.num_sets
    )
    rows = []
    for name in benchmark_names():
        profiles = nextuse_profiles(name, accesses, seed)
        distances = [
            profile.event_deltas[
                np.arange(profile.num_events), profile.event_pc
            ]
            for profile in profiles
            if profile.num_events
        ]
        row: dict = {"benchmark": name}
        if not distances:
            row["events"] = 0
            for edge in BUCKET_EDGES:
                row[f"<= {edge}"] = 0.0
            rows.append(row)
            continue
        all_distances = np.concatenate(distances)
        row["events"] = int(all_distances.shape[0])
        for edge in BUCKET_EDGES:
            row[f"<= {edge}"] = round(
                float(np.mean(all_distances <= edge)), 4
            )
        rows.append(row)
    notes = (
        f"DeliWay capacity at the default split is {deli_capacity} lines; "
        "delinquent-class benchmarks should have most reuse mass at or "
        "below that distance, streaming ones should have (almost) no "
        "events at all."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
