"""Measurement probes used by the characterization figures.

These run ordinary simulations with a thin recording wrapper around the
shared LLC — the software equivalent of attaching a logic analyzer, with
no behavioural effect on the run.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.common.config import paper_system_config
from repro.common.rng import DEFAULT_SEED
from repro.nucache.nextuse import EpochProfile
from repro.sim.engine import MulticoreEngine
from repro.sim.memory import FixedLatencyMemory
from repro.sim.policies import make_llc
from repro.sim.runner import make_traces


def llc_miss_profile(
    benchmark_name: str, accesses: int, seed: int = DEFAULT_SEED
) -> Counter:
    """Per-PC LLC miss counts of a benchmark under baseline LRU."""
    config = paper_system_config(1)
    traces = make_traces([benchmark_name], accesses, seed)
    llc = make_llc("lru", config, seed)
    misses: Counter = Counter()
    original_access = llc.access

    def recording_access(block: int, core: int, pc: int, is_write: bool) -> bool:
        hit = original_access(block, core, pc, is_write)
        if not hit:
            misses[pc] += 1
        return hit

    llc.access = recording_access  # type: ignore[method-assign]
    MulticoreEngine(
        traces, llc, config, FixedLatencyMemory(config.latency.memory)
    ).run()
    return misses


def nextuse_profiles(
    benchmark_name: str, accesses: int, seed: int = DEFAULT_SEED
) -> List[EpochProfile]:
    """Epoch-by-epoch Next-Use profiles of a benchmark.

    Runs NUcache with zero DeliWays — behaviourally a plain 16-way LRU
    cache — so the profiles describe the *baseline* eviction stream, the
    way the paper characterizes Next-Use distances before applying the
    mechanism.
    """
    config = paper_system_config(1, deli_ways=0)
    traces = make_traces([benchmark_name], accesses, seed)
    llc = make_llc("nucache", config, seed)
    llc.controller.keep_profiles = True
    MulticoreEngine(
        traces, llc, config, FixedLatencyMemory(config.latency.memory)
    ).run()
    return llc.controller.profile_history
