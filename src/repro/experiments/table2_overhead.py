"""Table 2 — hardware overhead of the NUcache structures.

Computed from the configuration: per-line fill-PC annotation, the
Next-Use history buffer, the delinquent-PC table and the histogram
counters, reported in KB and as a percentage of LLC data capacity.
"""

from __future__ import annotations

from repro.common.config import paper_system_config
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "table2"
TITLE = "NUcache storage overhead by structure"


def run() -> ExperimentResult:
    """Compute the overhead table for 1/2/4/8-core machines."""
    rows = []
    for num_cores in (1, 2, 4, 8):
        config = paper_system_config(num_cores)
        report = config.overhead_report()
        total_bits = sum(report.values())
        llc_bits = config.llc.size_bytes * 8
        row: dict = {"cores": num_cores}
        for structure, bits in report.items():
            row[structure.replace("_bits", "_KB")] = round(bits / 8 / 1024, 2)
        row["total_KB"] = round(total_bits / 8 / 1024, 2)
        row["pct_of_llc"] = round(100.0 * total_bits / llc_bits, 2)
        rows.append(row)
    notes = (
        "Shape target: total overhead a small single-digit percentage of "
        "LLC capacity (the paper argues the mechanism is cheap)."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)


def main() -> None:
    """Print the table."""
    print(run().to_text())


if __name__ == "__main__":
    main()
