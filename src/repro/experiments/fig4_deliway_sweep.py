"""Fig. 4 — sensitivity to the MainWays/DeliWays split.

With total associativity fixed at 16, sweep the number of DeliWays.
Zero DeliWays is plain 16-way LRU; more DeliWays grow the retention
capacity at the expense of LRU-managed MainWays.  The paper's point is
that the mechanism is not knife-edge sensitive to the split; in this
reproduction gains rise to a plateau and friendly controls stay at
parity across the sweep.  (The falling edge at extreme splits is a
*robustness* effect — with 2 MainWays a program whose PCs fail to be
selected would run on a 2-way cache — which a working selector hides;
see EXPERIMENTS.md.)
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.exec import SimJob
from repro.experiments.base import ExperimentResult, scaled_accesses, sim_grid
from repro.metrics.multicore import geometric_mean

EXPERIMENT_ID = "fig4"
TITLE = "IPC vs number of DeliWays (16-way LLC, single core)"
DEFAULT_ACCESSES = 150_000
DELI_SWEEP = (0, 2, 4, 6, 8, 10, 12, 14)
#: Representative benchmarks: the delinquent class plus one friendly
#: control that must stay flat.
BENCHMARKS = (
    "art_like", "ammp_like", "soplex_like", "equake_like",
    "twolf_like", "gcc_like",
)


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Sweep deli_ways for the representative benchmarks."""
    accesses = scaled_accesses(accesses)
    batch = []
    for name in BENCHMARKS:
        batch.append(SimJob.single(name, "lru", accesses, seed))
        batch.extend(
            SimJob.single(name, "nucache", accesses, seed, deli_ways=deli)
            for deli in DELI_SWEEP
        )
    results = iter(sim_grid(batch))
    rows = []
    per_split = {deli: [] for deli in DELI_SWEEP}
    for name in BENCHMARKS:
        baseline_ipc = next(results).cores[0].ipc
        row: dict = {"benchmark": name, "lru_ipc": round(baseline_ipc, 4)}
        for deli in DELI_SWEEP:
            result = next(results)
            relative = result.cores[0].ipc / baseline_ipc if baseline_ipc else 1.0
            row[f"D={deli}"] = round(relative, 4)
            per_split[deli].append(relative)
        rows.append(row)
    gmean_row: dict = {"benchmark": "gmean", "lru_ipc": ""}
    for deli in DELI_SWEEP:
        gmean_row[f"D={deli}"] = round(geometric_mean(per_split[deli]), 4)
    rows.append(gmean_row)
    notes = (
        "Cells are IPC normalized to 16-way LRU.  Shape target: D=0 is "
        "1.0 by construction-equivalence; gains rise to a plateau with "
        "the default split (D=8) capturing most of the benefit; the "
        "friendly controls (twolf, gcc) stay near parity at every "
        "split (within ~5% even at the extreme D=14)."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
