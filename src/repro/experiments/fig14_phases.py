"""Fig. 14 — adaptivity to program phases (extension).

Real programs change their delinquent PCs across phases.  This
experiment builds a phased workload that alternates between two
delinquent "personalities" (different loop regions driven by different
PCs, each under its own streaming traffic) and measures how well the
epoch mechanism tracks the change:

* **LRU** — the baseline; thrashes in every phase.
* **NUcache (default epochs)** — must drop the stale PC and select the
  new one shortly after each phase change.
* **NUcache (one giant epoch)** — selection frozen after the first
  decision; pays for staleness in every later phase.

The gap between the last two is the value of re-selection.
"""

from __future__ import annotations

from typing import List

from repro.common.config import paper_system_config
from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.sim.engine import MulticoreEngine
from repro.sim.memory import FixedLatencyMemory
from repro.sim.policies import make_llc
from repro.workloads.synthetic import BenchmarkSpec, StreamSpec, generate_trace
from repro.workloads.textio import concatenate

EXPERIMENT_ID = "fig14"
TITLE = "Phase adaptivity: re-selection across alternating delinquent phases"
DEFAULT_ACCESSES = 160_000
NUM_PHASES = 4

KB = 1024
MB = 1024 * KB


def _personality(tag: str) -> BenchmarkSpec:
    """One phase's behaviour: a capturable loop under its own stream.

    ``tag`` varies the name so the two personalities draw different RNG
    streams (disjoint regions and PCs come from their stream indices
    *and* the differing generation seeds derived from the name).
    """
    return BenchmarkSpec(
        f"phase_{tag}",
        (
            StreamSpec("loop", region_bytes=112 * KB, weight=0.30, num_pcs=1),
            StreamSpec("loop", region_bytes=64 * MB, weight=0.55, num_pcs=1),
            StreamSpec("hot", region_bytes=8 * KB, weight=0.15),
        ),
        instruction_gap=2,
    )


def _phased_trace(accesses: int, seed: int):
    """Alternate the two personalities over NUM_PHASES phases."""
    phase_length = accesses // NUM_PHASES
    phases: List = []
    for index in range(NUM_PHASES):
        spec = _personality("a" if index % 2 == 0 else "b")
        trace = generate_trace(spec, phase_length, seed + index % 2)
        # Relocate personality b so its regions and PCs are disjoint.
        if index % 2 == 1:
            trace = trace.relocated(1, tag_shift=45)
        phases.append(trace)
    return concatenate(phases, name="phased")


def _run(trace, policy: str, seed: int, **overrides: object) -> float:
    config = paper_system_config(1, **overrides)
    llc = make_llc(policy, config, seed)
    engine = MulticoreEngine(
        (trace,), llc, config, FixedLatencyMemory(config.latency.memory),
        warmup_fraction=0.1,
    )
    return engine.run().cores[0].ipc


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run the phased workload under the three configurations."""
    accesses = scaled_accesses(accesses)
    trace = _phased_trace(accesses, seed)
    lru_ipc = _run(trace, "lru", seed)
    adaptive_ipc = _run(trace, "nucache", seed)
    frozen_ipc = _run(trace, "nucache", seed, epoch_misses=100_000_000)
    rows = [
        {"configuration": "lru", "ipc": round(lru_ipc, 4), "vs_lru": 1.0},
        {
            "configuration": "nucache (default epochs)",
            "ipc": round(adaptive_ipc, 4),
            "vs_lru": round(adaptive_ipc / lru_ipc, 4),
        },
        {
            "configuration": "nucache (selection frozen)",
            "ipc": round(frozen_ipc, 4),
            "vs_lru": round(frozen_ipc / lru_ipc, 4),
        },
    ]
    summary = {
        "adaptive_vs_frozen": adaptive_ipc / frozen_ipc if frozen_ipc else 0.0,
    }
    notes = (
        f"{NUM_PHASES} phases alternating two disjoint delinquent "
        "personalities.  Shape target: adaptive NUcache beats LRU in "
        "every phase and beats the frozen-selection variant overall — "
        "the epoch mechanism, not a one-shot decision, carries the "
        "mechanism through phase changes."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes, summary)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
