"""Table 3 — fairness-oriented metrics (extension).

Weighted speedup is throughput-biased; the shared-cache literature also
reports ANTT (average normalized turnaround time, lower better),
harmonic-mean speedup and min/max fairness.  This table reports all
three for every quad-core mix under LRU and NUcache, verifying that
NUcache's throughput gain does not come out of one core's hide.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.exec import SimJob
from repro.experiments.base import ExperimentResult, scaled_accesses, sim_grid
from repro.metrics.multicore import (
    average_normalized_turnaround,
    fairness,
    harmonic_mean_speedup,
)
from repro.sim.runner import alone_ipc
from repro.workloads.mixes import mix_members, mix_names

EXPERIMENT_ID = "table3"
TITLE = "Quad-core fairness metrics: ANTT, harmonic speedup, min/max fairness"
DEFAULT_ACCESSES = 120_000


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED,
        num_cores: int = 4) -> ExperimentResult:
    """Compute the fairness table."""
    accesses = scaled_accesses(accesses)
    mixes = mix_names(num_cores)
    results = iter(
        sim_grid(
            [
                SimJob.mix(mix_name, policy, accesses, seed)
                for mix_name in mixes
                for policy in ("lru", "nucache")
            ]
        )
    )
    rows = []
    for mix_name in mixes:
        members = mix_members(mix_name)
        alone = [alone_ipc(name, num_cores, accesses, seed) for name in members]
        row: dict = {"mix": mix_name}
        for policy in ("lru", "nucache"):
            result = next(results)
            row[f"{policy}:antt"] = round(
                average_normalized_turnaround(result.ipcs, alone), 3
            )
            row[f"{policy}:hmean"] = round(
                harmonic_mean_speedup(result.ipcs, alone), 3
            )
            row[f"{policy}:fairness"] = round(fairness(result.ipcs, alone), 3)
        rows.append(row)
    better_antt = sum(
        1 for row in rows if row["nucache:antt"] <= row["lru:antt"] + 1e-9
    )
    summary = {"mixes_with_antt_improved_or_equal": float(better_antt),
               "mixes_total": float(len(rows))}
    notes = (
        "Shape target: NUcache improves (lowers) ANTT and improves "
        "harmonic speedup on the interference-heavy mixes without "
        "collapsing fairness on any mix."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes, summary)


def main() -> None:
    """Print the table."""
    print(run().to_text())


if __name__ == "__main__":
    main()
