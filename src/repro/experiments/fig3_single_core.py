"""Fig. 3 — single-core NUcache vs LRU, per benchmark.

Before the multicore headline the paper establishes that NUcache already
helps a single program with the LLC to itself (capturing post-eviction
reuse the 16-way LRU cannot) without hurting the LRU-friendly programs.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.exec import SimJob
from repro.experiments.base import ExperimentResult, scaled_accesses, sim_grid
from repro.metrics.basic import miss_reduction
from repro.metrics.multicore import geometric_mean
from repro.workloads.spec_like import benchmark_class, benchmark_names

EXPERIMENT_ID = "fig3"
TITLE = "Single-core: NUcache vs LRU (IPC, MPKI, miss reduction)"
DEFAULT_ACCESSES = 150_000


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run every benchmark under LRU and NUcache on a one-core machine."""
    accesses = scaled_accesses(accesses)
    names = benchmark_names()
    results = sim_grid(
        [
            SimJob.single(name, policy, accesses, seed)
            for name in names
            for policy in ("lru", "nucache")
        ]
    )
    rows = []
    speedups = []
    for index, name in enumerate(names):
        base = results[2 * index].cores[0]
        nuca = results[2 * index + 1].cores[0]
        speedup = nuca.ipc / base.ipc if base.ipc else 1.0
        speedups.append(speedup)
        rows.append(
            {
                "benchmark": name,
                "class": benchmark_class(name),
                "lru_ipc": round(base.ipc, 4),
                "nucache_ipc": round(nuca.ipc, 4),
                "speedup": round(speedup, 4),
                "lru_mpki": round(base.mpki, 2),
                "nucache_mpki": round(nuca.mpki, 2),
                "miss_reduction": round(
                    miss_reduction(base.llc_misses, nuca.llc_misses), 4
                ),
            }
        )
    summary = {"gmean_speedup": geometric_mean(speedups)}
    notes = (
        "Shape target: large gains on the delinquent class, ~parity on "
        "friendly/streaming classes (no significant degradation)."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes, summary)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
