"""Fig. 12 — interaction with hardware prefetching (extension).

Prefetching changes the LLC picture twice over: prefetchable streams
stop missing (shrinking the delinquent-PC signal) and prefetch fills
add PC-less pollution.  This extension runs representative benchmarks
under each prefetcher model with LRU and NUcache and reports where the
NUcache gain survives.

Expected shape: on *prefetchable* delinquent benchmarks (strided loops,
e.g. art) the stride/stream prefetchers absorb the misses and the
NUcache gain shrinks toward zero — correctly, since there is nothing
left to capture.  On *irregular* delinquent benchmarks (pointer chases,
e.g. equake's chase phase; mcf) prefetchers cannot help, and NUcache's
gain persists on top of them.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.experiments.base import ExperimentResult, scaled_accesses
from repro.sim.runner import run_single

EXPERIMENT_ID = "fig12"
TITLE = "NUcache gain under hardware prefetching (single core)"
DEFAULT_ACCESSES = 120_000
PREFETCHERS = ("none", "nextline", "stride", "stream")
BENCHMARKS = ("art_like", "equake_like", "mcf_like", "omnetpp_like", "hmmer_like")


def run(accesses: int = DEFAULT_ACCESSES, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run the benchmark x prefetcher grid under LRU and NUcache."""
    accesses = scaled_accesses(accesses)
    rows = []
    for name in BENCHMARKS:
        row: dict = {"benchmark": name}
        for prefetcher in PREFETCHERS:
            lru = run_single(name, "lru", accesses, seed,
                             prefetcher=prefetcher).cores[0]
            nuca = run_single(name, "nucache", accesses, seed,
                              prefetcher=prefetcher).cores[0]
            gain = nuca.ipc / lru.ipc - 1.0 if lru.ipc else 0.0
            row[f"{prefetcher}:lru_ipc"] = round(lru.ipc, 4)
            row[f"{prefetcher}:gain"] = round(gain, 4)
        rows.append(row)
    notes = (
        "':gain' columns are NUcache's IPC improvement over LRU with the "
        "same prefetcher.  Prefetch fills are untimed (perfect "
        "timeliness, no bandwidth cost) — an upper bound on prefetcher "
        "strength, i.e. the hardest case for showing residual NUcache "
        "benefit."
    )
    return ExperimentResult(EXPERIMENT_ID, TITLE, rows, notes)


def main() -> None:
    """Print the figure's data."""
    print(run().to_text())


if __name__ == "__main__":
    main()
