"""NUcache reproduction (HPCA 2011).

A trace-driven multicore cache study: the NUcache shared-LLC
organization (MainWays/DeliWays with Next-Use-distance cost-benefit PC
selection), the baselines it is evaluated against (LRU, DIP, TADIP-F,
UCP, PIPP, RRIP family), a synthetic SPEC-like workload substrate, and a
benchmark harness that regenerates every table and figure of the
evaluation (see DESIGN.md and EXPERIMENTS.md).

Quickstart::

    from repro import run_mix, weighted_speedup

    base = run_mix("mix4_1", "lru")
    nuca = run_mix("mix4_1", "nucache")
"""

from repro.common import (
    CacheGeometry,
    LatencyConfig,
    NUcacheConfig,
    ReproError,
    SystemConfig,
    paper_system_config,
    tiny_system_config,
)
from repro.exec import BatchReport, ResultStore, Scheduler, SimJob, run_jobs
from repro.metrics import (
    average_normalized_turnaround,
    fairness,
    geometric_mean,
    harmonic_mean_speedup,
    improvement,
    weighted_speedup,
)
from repro.nucache import NUCache
from repro.sim import (
    MulticoreEngine,
    SimResult,
    alone_ipc,
    alone_ipcs_for_mix,
    make_llc,
    policy_names,
    run_mix,
    run_single,
    run_workload,
)
from repro.workloads import (
    BenchmarkSpec,
    Trace,
    benchmark,
    benchmark_names,
    generate_trace,
    mix_members,
    mix_names,
)

__version__ = "1.0.0"

__all__ = [
    "BatchReport",
    "BenchmarkSpec",
    "CacheGeometry",
    "LatencyConfig",
    "MulticoreEngine",
    "NUCache",
    "NUcacheConfig",
    "ReproError",
    "ResultStore",
    "Scheduler",
    "SimJob",
    "SimResult",
    "SystemConfig",
    "Trace",
    "__version__",
    "alone_ipc",
    "alone_ipcs_for_mix",
    "average_normalized_turnaround",
    "benchmark",
    "benchmark_names",
    "fairness",
    "generate_trace",
    "geometric_mean",
    "harmonic_mean_speedup",
    "improvement",
    "make_llc",
    "mix_members",
    "mix_names",
    "paper_system_config",
    "policy_names",
    "run_jobs",
    "run_mix",
    "run_single",
    "run_workload",
    "tiny_system_config",
    "weighted_speedup",
]
