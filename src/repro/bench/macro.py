"""Macro benchmark: fig5-scale simulations through the real scheduler.

Where the micro cases time one kernel in isolation, this case times the
whole engine — trace generation, the L1/L2/LLC walk, timing model,
metric collection — by pushing a small fig5-style batch (2-core mixes
under LRU and NUcache) through :class:`repro.exec.scheduler.Scheduler`.
The store is deliberately disabled (``store=None``): a benchmark served
from cache would time the store, not the simulator.

``ops`` counts simulated accesses (cores × trace length × jobs), so
``ops_per_sec`` is end-to-end simulated accesses per wall-clock second —
directly comparable to the micro numbers to see how much of the access
budget the surrounding machinery consumes.
"""

from __future__ import annotations

from typing import List

from repro.bench.micro import MIN_OPS, BenchCase


def _fig5_batch_case(
    name: str, engine: str, quick: bool, ops_scale: float
) -> BenchCase:
    """fig5-scale scheduler batch under one engine backend.

    ``engine`` is exported via ``REPRO_ENGINE`` for the duration of the
    measured run (restored afterwards), so the scheduler's workers —
    forked after the environment is set — pick the same backend.
    """
    import os
    import time

    from repro.exec.job import SimJob
    from repro.exec.scheduler import Scheduler
    from repro.sim.vector import ENGINE_ENV

    accesses = 30_000 if not quick else 8_000
    accesses = max(MIN_OPS, int(accesses * ops_scale))
    mixes = ["mix2_1", "mix2_2"] if not quick else ["mix2_1"]
    batch: List[SimJob] = [
        SimJob.mix(mix_name, policy, accesses, seed=20110211)
        for mix_name in mixes
        for policy in ("lru", "nucache")
    ]
    total_ops = sum(len(job.members) * job.accesses for job in batch)

    def run_once() -> float:
        previous = os.environ.get(ENGINE_ENV)
        os.environ[ENGINE_ENV] = engine
        try:
            scheduler = Scheduler(jobs=1, store=None)
            start = time.perf_counter()
            results = scheduler.run(batch)
            elapsed = time.perf_counter() - start
        finally:
            if previous is None:
                os.environ.pop(ENGINE_ENV, None)
            else:
                os.environ[ENGINE_ENV] = previous
        if any(result is None for result in results):
            raise RuntimeError(f"{name} benchmark batch failed")
        return elapsed

    return BenchCase(name, total_ops, "accesses", run_once)


def fig5_sim_case(quick: bool = False, ops_scale: float = 1.0) -> BenchCase:
    """End-to-end fig5-scale batch wall-clock via the exec scheduler."""
    return _fig5_batch_case("fig5_sim", "scalar", quick, ops_scale)


def vector_fig5_sim_case(quick: bool = False, ops_scale: float = 1.0) -> BenchCase:
    """The ``fig5_sim`` batch on the vector engine backend.

    Identical jobs and scheduler setup to ``fig5_sim`` — only
    ``REPRO_ENGINE`` differs — so the two cases' ``ops_per_sec`` ratio
    is the end-to-end macro speedup of the vector backend (LRU jobs run
    fully vectorized; NUcache jobs take the hybrid path).
    """
    return _fig5_batch_case("vector_fig5_sim", "vector", quick, ops_scale)
