"""Benchmark payload comparison — the perf-regression gate.

``nucache-repro bench compare BASELINE CANDIDATE --max-regress 15%``
pins throughput the way golden tests pin numbers.  Exit codes are part
of the contract (CI keys off them, tests pin them):

* :data:`EXIT_OK` (0) — every benchmark within the threshold.
* :data:`EXIT_REGRESSION` (1) — at least one benchmark regressed by
  more than the threshold.
* :data:`EXIT_SCHEMA_MISMATCH` (2) — payloads are not comparable:
  different ``schema_version``, ``mode``, benchmark set, or per-case
  ``ops`` (different work is not a regression, it's apples/oranges).

Comparison is on ``ops_per_sec`` (higher is better); a *speedup* never
fails.  The threshold is relative: with ``--max-regress 15%`` a
candidate fails when ``candidate < baseline * (1 - 0.15)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

#: All benchmarks within threshold.
EXIT_OK = 0
#: At least one benchmark regressed beyond the threshold.
EXIT_REGRESSION = 1
#: Payloads not comparable (schema/mode/benchmark-set/ops mismatch).
EXIT_SCHEMA_MISMATCH = 2


def parse_regress_threshold(raw: str) -> float:
    """Parse ``--max-regress`` input: ``"15%"`` or ``"0.15"`` → 0.15."""
    text = raw.strip()
    try:
        if text.endswith("%"):
            value = float(text[:-1]) / 100.0
        else:
            value = float(text)
    except ValueError:
        raise ValueError(f"cannot parse regression threshold {raw!r}") from None
    if not 0.0 <= value < 1.0:
        raise ValueError(
            f"regression threshold must be in [0, 1), got {value} from {raw!r}"
        )
    return value


@dataclass
class CompareRow:
    """Per-benchmark comparison outcome.

    ``change`` is the relative throughput delta (+0.25 = 25% faster,
    -0.20 = 20% slower); ``regressed`` marks rows past the threshold.
    """

    name: str
    baseline_ops_per_sec: float
    candidate_ops_per_sec: float
    change: float
    regressed: bool


@dataclass
class CompareReport:
    """Full comparison outcome: exit code, per-row details, messages."""

    exit_code: int
    rows: List[CompareRow] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable table (what the CLI prints)."""
        lines = []
        if self.errors:
            lines.extend(f"error: {message}" for message in self.errors)
        if self.rows:
            width = max(len(row.name) for row in self.rows)
            header = (
                f"{'benchmark'.ljust(width)}  {'baseline':>14}  "
                f"{'candidate':>14}  {'change':>8}  status"
            )
            lines.append(header)
            for row in self.rows:
                status = "REGRESSED" if row.regressed else "ok"
                lines.append(
                    f"{row.name.ljust(width)}  {row.baseline_ops_per_sec:>14,.0f}  "
                    f"{row.candidate_ops_per_sec:>14,.0f}  "
                    f"{row.change:>+7.1%}  {status}"
                )
        verdict = {
            EXIT_OK: "OK: no benchmark regressed beyond the threshold",
            EXIT_REGRESSION: "FAIL: benchmark regression detected",
            EXIT_SCHEMA_MISMATCH: "FAIL: payloads are not comparable",
        }[self.exit_code]
        lines.append(verdict)
        return "\n".join(lines)


def _schema_errors(
    baseline: Dict[str, Any], candidate: Dict[str, Any]
) -> List[str]:
    """Reasons the two payloads cannot be meaningfully compared."""
    errors: List[str] = []
    for field_name in ("schema_version", "mode"):
        b, c = baseline.get(field_name), candidate.get(field_name)
        if b != c:
            errors.append(f"{field_name} mismatch: baseline={b!r} candidate={c!r}")
    b_benchmarks = baseline.get("benchmarks")
    c_benchmarks = candidate.get("benchmarks")
    if not isinstance(b_benchmarks, dict) or not isinstance(c_benchmarks, dict):
        errors.append("payload is missing its 'benchmarks' mapping")
        return errors
    b_names, c_names = set(b_benchmarks), set(c_benchmarks)
    if b_names != c_names:
        only_b = sorted(b_names - c_names)
        only_c = sorted(c_names - b_names)
        errors.append(
            f"benchmark sets differ: baseline-only={only_b} candidate-only={only_c}"
        )
        return errors
    for name in sorted(b_names):
        b_ops = b_benchmarks[name].get("ops")
        c_ops = c_benchmarks[name].get("ops")
        if b_ops != c_ops:
            errors.append(
                f"{name}: ops mismatch (baseline={b_ops} candidate={c_ops}); "
                "different work is not comparable"
            )
    return errors


def compare_payloads(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    max_regress: float = 0.15,
) -> CompareReport:
    """Compare two payloads; see module docstring for the contract."""
    if not 0.0 <= max_regress < 1.0:
        raise ValueError(f"max_regress must be in [0, 1), got {max_regress}")
    errors = _schema_errors(baseline, candidate)
    if errors:
        return CompareReport(exit_code=EXIT_SCHEMA_MISMATCH, errors=errors)
    rows: List[CompareRow] = []
    any_regressed = False
    for name in sorted(baseline["benchmarks"]):
        base_rate = float(baseline["benchmarks"][name]["ops_per_sec"])
        cand_rate = float(candidate["benchmarks"][name]["ops_per_sec"])
        change = (cand_rate - base_rate) / base_rate if base_rate > 0 else 0.0
        regressed = cand_rate < base_rate * (1.0 - max_regress)
        any_regressed = any_regressed or regressed
        rows.append(CompareRow(name, base_rate, cand_rate, change, regressed))
    return CompareReport(
        exit_code=EXIT_REGRESSION if any_regressed else EXIT_OK, rows=rows
    )
