"""Performance benchmark suite: micro kernels, macro runs, comparison.

The simulator's value is proportional to its throughput — every figure
is a grid of simulations, so a silent 2x slowdown doubles the cost of
the whole evaluation.  This package pins throughput the same way the
golden tests pin numbers:

* :mod:`repro.bench.micro` — deterministic micro benchmarks of the
  per-access hot paths (raw LRU cache access, NUcache MainWay/DeliWay
  access, Next-Use histogram update).
* :mod:`repro.bench.macro` — a fig5-scale end-to-end simulation batch
  run through the :class:`repro.exec.scheduler.Scheduler`, measuring
  wall-clock accesses/sec of the full engine.
* :mod:`repro.bench.suite` — the timing harness: median-of-k
  repetitions, schema-versioned JSON payloads (``BENCH_<name>.json``)
  with no absolute timestamps in the comparison payload.
* :mod:`repro.bench.compare` — the regression comparator behind
  ``nucache-repro bench compare A B --max-regress 15%`` and the CI
  ``perf-smoke`` gate.

See ``docs/benchmarking.md`` for how baselines are blessed and what the
CI gate enforces.
"""

from repro.bench.compare import (
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_SCHEMA_MISMATCH,
    CompareReport,
    compare_payloads,
    parse_regress_threshold,
)
from repro.bench.suite import (
    BENCH_SCHEMA_VERSION,
    benchmark_names,
    comparison_payload,
    load_payload,
    run_suite,
    save_payload,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "CompareReport",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_SCHEMA_MISMATCH",
    "benchmark_names",
    "compare_payloads",
    "comparison_payload",
    "load_payload",
    "parse_regress_threshold",
    "run_suite",
    "save_payload",
]
