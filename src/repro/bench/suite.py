"""Benchmark harness: run cases, build payloads, persist them.

A payload is the JSON the ``bench`` CLI writes (``BENCH_<name>.json``)
and the comparator consumes.  Design constraints:

* **Median-of-k.**  Each case runs ``repetitions`` times; the median
  wall-clock time is the reported figure.  Medians shrug off the odd GC
  pause or scheduler hiccup that would poison a mean.
* **Deterministic comparison payload.**  Two runs on the same machine
  and commit must agree on everything except the timing fields —
  :func:`comparison_payload` strips those, and the determinism tests
  diff what remains.  Hence no absolute timestamps anywhere in the
  comparison payload: the environment block carries versions, never
  clocks.
* **Schema-versioned.**  :data:`BENCH_SCHEMA_VERSION` is embedded in
  every payload; the comparator refuses to compare across versions
  (exit code 2) instead of mis-reading old files.
"""

from __future__ import annotations

import json
import platform
import statistics
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.bench.macro import fig5_sim_case, vector_fig5_sim_case
from repro.bench.micro import MICRO_CASES, BenchCase

#: Bump when the payload layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Timing-derived payload fields, excluded from determinism comparisons.
TIMING_FIELDS = ("median_s", "ops_per_sec", "times_s")

#: Default repetitions per case (full mode / quick mode).
DEFAULT_REPETITIONS = 5
QUICK_REPETITIONS = 3

#: Registry of every case: name -> builder(quick=..., ops_scale=...).
ALL_CASES: Dict[str, Callable[..., BenchCase]] = dict(MICRO_CASES)
ALL_CASES["fig5_sim"] = fig5_sim_case
ALL_CASES["vector_fig5_sim"] = vector_fig5_sim_case


def benchmark_names() -> List[str]:
    """Names of all registered benchmark cases, in run order."""
    return list(ALL_CASES)


def _environment() -> Dict[str, Any]:
    """Version/machine block for the payload (no clocks, no paths)."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "numpy": numpy.__version__,
    }


def run_case(case: BenchCase, repetitions: int) -> Dict[str, Any]:
    """Time one case ``repetitions`` times and summarize.

    Returns the per-benchmark payload entry: deterministic fields
    (``ops``, ``unit``, ``repetitions``) plus the timing fields listed
    in :data:`TIMING_FIELDS`.
    """
    if repetitions <= 0:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    times = [case.run_once() for _ in range(repetitions)]
    median = statistics.median(times)
    return {
        "ops": case.ops,
        "unit": case.unit,
        "repetitions": repetitions,
        "median_s": round(median, 6),
        "ops_per_sec": round(case.ops / median, 2) if median > 0 else 0.0,
        "times_s": [round(t, 6) for t in times],
    }


def run_suite(
    quick: bool = False,
    repetitions: Optional[int] = None,
    names: Optional[Iterable[str]] = None,
    ops_scale: float = 1.0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the (selected) benchmark cases and return a full payload.

    Args:
        quick: use the smaller quick-mode op counts and repetitions.
        repetitions: override the per-mode default repetition count.
        names: subset of :func:`benchmark_names` to run (order kept).
        ops_scale: multiply every case's op count (tests use ``<1``).
        progress: optional callback invoked with each case name as it
            starts, for CLI feedback during slow full runs.
    """
    if repetitions is None:
        repetitions = QUICK_REPETITIONS if quick else DEFAULT_REPETITIONS
    selected = list(names) if names is not None else benchmark_names()
    unknown = [name for name in selected if name not in ALL_CASES]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {unknown}; known: {benchmark_names()}"
        )
    benchmarks: Dict[str, Any] = {}
    for name in selected:
        if progress is not None:
            progress(name)
        case = ALL_CASES[name](quick=quick, ops_scale=ops_scale)
        benchmarks[name] = run_case(case, repetitions)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "repetitions": repetitions,
        "benchmarks": benchmarks,
        "environment": _environment(),
    }


def comparison_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic slice of a payload: everything but the timings.

    Two runs at the same commit/seed/mode must produce identical
    comparison payloads; the determinism test asserts exactly that.
    """
    stripped: Dict[str, Any] = {
        key: value for key, value in payload.items() if key != "benchmarks"
    }
    stripped["benchmarks"] = {
        name: {k: v for k, v in entry.items() if k not in TIMING_FIELDS}
        for name, entry in payload["benchmarks"].items()
    }
    return stripped


def save_payload(payload: Dict[str, Any], path: str) -> None:
    """Write a payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_payload(path: str) -> Dict[str, Any]:
    """Read a payload previously written by :func:`save_payload`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path} does not contain a benchmark payload object")
    return payload
