"""Micro benchmarks of the simulator's per-access hot paths.

Each case isolates one kernel the engine executes millions of times per
experiment, replays a deterministic pre-generated stream against it, and
times only the access loop (setup — trace generation, cache
construction — happens outside the measured region).  Streams are
derived from fixed seeds so two runs of a case perform bit-identical
work, which is what makes ``ops`` comparable across payloads.

Cases accept an ``ops_scale`` so tests can shrink them; the floor keeps
a scaled case large enough that ``perf_counter`` resolution is noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

#: Lower bound on measured operations after ``ops_scale`` is applied.
MIN_OPS = 1_000


@dataclass
class BenchCase:
    """One timed kernel: a name, its op count, and a repetition runner.

    Attributes:
        name: stable identifier used in payloads and comparisons.
        ops: operations performed by one repetition (deterministic).
        unit: what one op is ("accesses", "events", ...).
        run_once: executes one repetition and returns the measured
            wall-clock seconds of the kernel loop only.
    """

    name: str
    ops: int
    unit: str
    run_once: Callable[[], float]


def _scaled(default: int, quick_default: int, quick: bool, ops_scale: float) -> int:
    """Resolve a case's op count from mode and scale."""
    base = quick_default if quick else default
    return max(MIN_OPS, int(base * ops_scale))


def _mixed_stream(
    num_ops: int, num_blocks: int, seed: int
) -> Tuple[List[int], List[bool]]:
    """Deterministic block/write stream with a moderate hit/miss mix."""
    import numpy as np

    rng = np.random.default_rng(seed)
    blocks = rng.integers(0, num_blocks, size=num_ops).tolist()
    writes = (rng.random(num_ops) < 0.1).tolist()
    return blocks, writes


def lru_access_case(quick: bool = False, ops_scale: float = 1.0) -> BenchCase:
    """Raw set-associative LRU cache access (the substrate's hot loop).

    A 256-set, 8-way cache (2048 lines) replays a uniform stream over a
    4096-block footprint — twice the capacity, so hits and misses (and
    therefore evictions) all stay on the measured path.
    """
    from repro.cache.cache import SetAssociativeCache
    from repro.cache.replacement.basic import lru_factory
    from repro.common.config import CacheGeometry

    num_ops = _scaled(240_000, 60_000, quick, ops_scale)
    geometry = CacheGeometry(size_bytes=256 * 8 * 64, block_bytes=64, ways=8)
    blocks, writes = _mixed_stream(num_ops, 4096, seed=20110211)

    def run_once() -> float:
        cache = SetAssociativeCache(geometry, lru_factory(), "bench-lru")
        access = cache.access
        start = time.perf_counter()
        for block, write in zip(blocks, writes):
            access(block, 0, 0, write)
        return time.perf_counter() - start

    return BenchCase("lru_access", num_ops, "accesses", run_once)


def nucache_access_case(quick: bool = False, ops_scale: float = 1.0) -> BenchCase:
    """NUcache MainWay/DeliWay access on a realistic delinquent trace.

    Replays an ``art_like`` trace (delinquent-PC heavy, so the DeliWay
    retention/promotion machinery and the epoch controller all run)
    straight into a paper-configured NUcache LLC.
    """
    from repro.common.addr import log2_exact
    from repro.common.config import paper_system_config
    from repro.sim.policies import make_llc
    from repro.workloads.spec_like import benchmark
    from repro.workloads.synthetic import generate_trace

    num_ops = _scaled(120_000, 30_000, quick, ops_scale)
    config = paper_system_config(1)
    trace = generate_trace(benchmark("art_like"), num_ops, seed=20110211)
    shift = log2_exact(config.block_bytes)
    blocks = (trace.addresses >> shift).tolist()
    pcs = trace.pcs.tolist()
    writes = trace.is_write.tolist()

    def run_once() -> float:
        llc = make_llc("nucache", config, seed=20110211)
        access = llc.access
        start = time.perf_counter()
        for block, pc, write in zip(blocks, pcs, writes):
            access(block, 0, pc, write)
        return time.perf_counter() - start

    return BenchCase("nucache_access", num_ops, "accesses", run_once)


def nextuse_update_case(quick: bool = False, ops_scale: float = 1.0) -> BenchCase:
    """Next-Use profiler update (the eviction/reuse monitor feed).

    Drives :class:`repro.nucache.nextuse.NextUseProfiler` with a
    deterministic interleaving of evictions and reuses of recently
    evicted blocks — the exact call mix NUcache issues per miss.
    """
    import numpy as np

    from repro.nucache.nextuse import NextUseProfiler

    num_ops = _scaled(200_000, 50_000, quick, ops_scale)
    rng = np.random.default_rng(20110211)
    kinds = (rng.random(num_ops) < 0.6).tolist()  # True = eviction
    addrs = rng.integers(0, 8192, size=num_ops).tolist()
    slots = rng.integers(0, 16, size=num_ops).tolist()

    def run_once() -> float:
        profiler = NextUseProfiler(history_capacity=2048)
        profiler.begin_epoch(16)
        on_eviction = profiler.on_eviction
        on_reuse = profiler.on_reuse
        start = time.perf_counter()
        for is_eviction, addr, slot in zip(kinds, addrs, slots):
            if is_eviction:
                on_eviction(addr & 1023, addr, slot)
            else:
                on_reuse(addr & 1023, addr)
        return time.perf_counter() - start

    return BenchCase("nextuse_update", num_ops, "events", run_once)


def _vector_kernel_case(
    name: str,
    num_sets: int,
    ways: int,
    footprint: int,
    quick: bool,
    ops_scale: float,
) -> BenchCase:
    """Build a batch-kernel case over one cache geometry.

    Times :func:`repro.sim.vector.lru_batch` on a deterministic uniform
    stream covering twice the cache's capacity (same recipe as
    ``lru_access``), so hits, misses and evictions all stay on the
    measured path.  Quick mode keeps the full op count: the kernel is
    fast enough that shrinking it would only add timer noise.
    """
    import numpy as np

    num_ops = _scaled(240_000, 240_000, quick, ops_scale)
    rng = np.random.default_rng(20110211)
    blocks = rng.integers(0, footprint, size=num_ops)
    lanes = blocks & np.int64(num_sets - 1)
    tags = blocks >> np.int64(num_sets.bit_length() - 1)

    def run_once() -> float:
        from repro.sim.vector import lru_batch

        start = time.perf_counter()
        lru_batch(lanes, tags, num_sets, ways)
        return time.perf_counter() - start

    return BenchCase(name, num_ops, "accesses", run_once)


def vector_lru_access_case(quick: bool = False, ops_scale: float = 1.0) -> BenchCase:
    """Batch LRU kernel on the 8-core paper LLC shape (2048 sets, 16 ways).

    The vector engine's LLC-resolution workload: one whole-trace kernel
    call instead of per-access python dispatch.  The ratio of this
    case's throughput to ``lru_access`` is the headline scalar-vs-vector
    speedup recorded in ``docs/kernels.md``.
    """
    return _vector_kernel_case(
        "vector_lru_access", 2048, 16, 65536, quick, ops_scale
    )


def vector_lru_access_small_case(
    quick: bool = False, ops_scale: float = 1.0
) -> BenchCase:
    """Batch LRU kernel on ``lru_access``'s own geometry (256 sets, 8 ways).

    Same sets/ways/footprint/stream recipe as the scalar case, so the
    two cases are a like-for-like comparison of per-access dispatch
    against batched rounds on identical work.
    """
    return _vector_kernel_case(
        "vector_lru_access_small", 256, 8, 4096, quick, ops_scale
    )


#: Registry of micro cases: name -> builder(quick, ops_scale).
MICRO_CASES: Dict[str, Callable[..., BenchCase]] = {
    "lru_access": lru_access_case,
    "nucache_access": nucache_access_case,
    "nextuse_update": nextuse_update_case,
    "vector_lru_access": vector_lru_access_case,
    "vector_lru_access_small": vector_lru_access_small_case,
}


def build_micro_case(name: str, quick: bool = False, ops_scale: float = 1.0) -> Any:
    """Build one registered micro case by name."""
    return MICRO_CASES[name](quick=quick, ops_scale=ops_scale)
