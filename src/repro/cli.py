"""Command-line interface: ``nucache-repro``.

Subcommands::

    nucache-repro list                 # list experiments and workloads
    nucache-repro run fig5 [fig6 ...]  # run experiments, print tables
    nucache-repro run all              # run every experiment
    nucache-repro sim --mix mix4_1 --policy nucache   # one simulation
    nucache-repro characterize art_like               # reuse-distance report
    nucache-repro trace art_like -o art.trace         # export a trace

Trace lengths can be scaled globally with the ``REPRO_SCALE``
environment variable (e.g. ``REPRO_SCALE=0.5`` for half-length traces).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import experiment_ids, run_experiment
from repro.metrics.multicore import weighted_speedup
from repro.sim.policies import policy_names
from repro.sim.runner import DEFAULT_ACCESSES, alone_ipc, run_mix, run_single
from repro.workloads.mixes import all_mixes, mix_members
from repro.workloads.spec_like import catalog


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for experiment_id in experiment_ids():
        print(f"  {experiment_id}")
    print("\npolicies:")
    print("  " + ", ".join(policy_names()))
    print("\nbenchmarks:")
    for name, klass, _spec in catalog():
        print(f"  {name:<18} [{klass}]")
    print("\nmixes:")
    for cores, names in all_mixes().items():
        print(f"  {cores}-core: " + ", ".join(names))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    requested = args.experiments
    if requested == ["all"]:
        requested = experiment_ids()
    for experiment_id in requested:
        result = run_experiment(experiment_id)
        if args.bars:
            from repro.experiments.plots import render_with_bars

            print(render_with_bars(result))
        else:
            print(result.to_text())
        print()
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.analysis.characterize import characterize_benchmark

    character = characterize_benchmark(args.benchmark, args.accesses)
    print(character.describe())
    for pc, share in character.pc_access_shares:
        print(f"  pc {pc:#x}: {share:.1%} of accesses")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.spec_like import benchmark as lookup
    from repro.workloads.synthetic import generate_trace
    from repro.workloads.textio import save_text

    trace = generate_trace(lookup(args.benchmark), args.accesses, args.seed)
    if args.output.endswith(".npz"):
        trace.save(args.output)
    else:
        save_text(trace, args.output)
    print(f"wrote {len(trace)} accesses to {args.output}")
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    if args.mix:
        members = mix_members(args.mix)
        result = run_mix(args.mix, args.policy, args.accesses)
        alone = [alone_ipc(name, len(members), args.accesses) for name in members]
        print(f"mix {args.mix} under {args.policy}:")
        for core, name in zip(result.cores, members):
            print(
                f"  core {core.core_id} {name:<18} ipc={core.ipc:.4f} "
                f"mpki={core.mpki:.2f} llc_hit={core.llc_hit_rate:.3f}"
            )
        print(f"  weighted speedup = {weighted_speedup(result.ipcs, alone):.4f}")
    else:
        result = run_single(args.benchmark, args.policy, args.accesses)
        core = result.cores[0]
        print(
            f"{args.benchmark} under {args.policy}: ipc={core.ipc:.4f} "
            f"mpki={core.mpki:.2f} llc_hit={core.llc_hit_rate:.3f}"
        )
    if result.llc_extra:
        print(f"  llc extra: {result.llc_extra}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="nucache-repro",
        description="NUcache (HPCA 2011) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list experiments and workloads")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="+",
        help="experiment ids (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--bars", action="store_true",
        help="append an automatic bar chart per experiment",
    )
    run_parser.set_defaults(func=_cmd_run)

    sim_parser = subparsers.add_parser("sim", help="run one simulation")
    group = sim_parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--mix", help="mix name (e.g. mix4_1)")
    group.add_argument("--benchmark", help="benchmark name (e.g. art_like)")
    sim_parser.add_argument("--policy", default="nucache", choices=policy_names())
    sim_parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES)
    sim_parser.set_defaults(func=_cmd_sim)

    char_parser = subparsers.add_parser(
        "characterize", help="reuse-distance characterization of a benchmark"
    )
    char_parser.add_argument("benchmark")
    char_parser.add_argument("--accesses", type=int, default=50_000)
    char_parser.set_defaults(func=_cmd_characterize)

    trace_parser = subparsers.add_parser(
        "trace", help="generate and export a benchmark trace"
    )
    trace_parser.add_argument("benchmark")
    trace_parser.add_argument(
        "-o", "--output", required=True,
        help="output path (.npz for native, anything else for text)",
    )
    trace_parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES)
    trace_parser.add_argument("--seed", type=int, default=20110212)
    trace_parser.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
