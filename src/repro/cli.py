"""Command-line interface: ``nucache-repro``.

Subcommands::

    nucache-repro list                 # list experiments and workloads
    nucache-repro run fig5 [fig6 ...]  # run experiments, print tables
    nucache-repro run all --jobs 4     # every experiment, 4 workers
    nucache-repro run fig5 --no-cache  # bypass the result store
    nucache-repro sim --mix mix4_1 --policy nucache   # one simulation
    nucache-repro cache stats                         # result-store report
    nucache-repro cache prune --keep 1000             # trim the store
    nucache-repro characterize art_like               # reuse-distance report
    nucache-repro trace art_like -o art.trace         # export a trace

Trace lengths can be scaled globally with the ``REPRO_SCALE``
environment variable (e.g. ``REPRO_SCALE=0.5`` for half-length traces).
Worker counts default from ``REPRO_JOBS``; the result store lives under
``REPRO_CACHE_DIR`` (default ``~/.cache/nucache-repro``).  Execution
summaries (computed/cached/failed job counts) go to stderr so tables on
stdout stay byte-stable.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.rng import DEFAULT_SEED
from repro.exec import ResultStore
from repro.exec import context as exec_context
from repro.experiments import experiment_ids, run_experiment
from repro.metrics.multicore import weighted_speedup
from repro.sim.policies import policy_names
from repro.sim.runner import DEFAULT_ACCESSES, alone_ipc, run_mix, run_single
from repro.workloads.mixes import all_mixes, mix_members
from repro.workloads.spec_like import catalog


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for experiment_id in experiment_ids():
        print(f"  {experiment_id}")
    print("\npolicies:")
    print("  " + ", ".join(policy_names()))
    print("\nbenchmarks:")
    for name, klass, _spec in catalog():
        print(f"  {name:<18} [{klass}]")
    print("\nmixes:")
    for cores, names in all_mixes().items():
        print(f"  {cores}-core: " + ", ".join(names))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    exec_context.configure(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
    )
    requested = args.experiments
    if requested == ["all"]:
        requested = experiment_ids()
    for experiment_id in requested:
        exec_context.reset_totals()
        result = run_experiment(experiment_id)
        if args.bars:
            from repro.experiments.plots import render_with_bars

            print(render_with_bars(result))
        else:
            print(result.to_text())
        print()
        report = exec_context.totals()
        if report.total:
            print(f"[exec] {experiment_id}: {report.describe()}", file=sys.stderr)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = ResultStore()
    if args.action == "stats":
        print(store.stats().describe())
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.base}")
    elif args.action == "prune":
        if args.keep is None and args.max_age_days is None:
            print("prune needs --keep and/or --max-age-days", file=sys.stderr)
            return 2
        removed = store.prune(max_age_days=args.max_age_days, keep=args.keep)
        print(f"pruned {removed} entries; now {store.stats().describe()}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.analysis.characterize import characterize_benchmark

    character = characterize_benchmark(args.benchmark, args.accesses)
    print(character.describe())
    for pc, share in character.pc_access_shares:
        print(f"  pc {pc:#x}: {share:.1%} of accesses")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.spec_like import benchmark as lookup
    from repro.workloads.synthetic import generate_trace
    from repro.workloads.textio import save_text

    trace = generate_trace(lookup(args.benchmark), args.accesses, args.seed)
    if args.output.endswith(".npz"):
        trace.save(args.output)
    else:
        save_text(trace, args.output)
    print(f"wrote {len(trace)} accesses to {args.output}")
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    if args.mix:
        members = mix_members(args.mix)
        result = run_mix(args.mix, args.policy, args.accesses, args.seed)
        alone = [
            alone_ipc(name, len(members), args.accesses, args.seed)
            for name in members
        ]
        print(f"mix {args.mix} under {args.policy}:")
        for core, name in zip(result.cores, members):
            print(
                f"  core {core.core_id} {name:<18} ipc={core.ipc:.4f} "
                f"mpki={core.mpki:.2f} llc_hit={core.llc_hit_rate:.3f}"
            )
        print(f"  weighted speedup = {weighted_speedup(result.ipcs, alone):.4f}")
    else:
        result = run_single(args.benchmark, args.policy, args.accesses, args.seed)
        core = result.cores[0]
        print(
            f"{args.benchmark} under {args.policy}: ipc={core.ipc:.4f} "
            f"mpki={core.mpki:.2f} llc_hit={core.llc_hit_rate:.3f}"
        )
    if result.llc_extra:
        print(f"  llc extra: {result.llc_extra}")
    return 0


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {raw}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="nucache-repro",
        description="NUcache (HPCA 2011) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list experiments and workloads")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="+",
        help="experiment ids (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--bars", action="store_true",
        help="append an automatic bar chart per experiment",
    )
    run_parser.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker processes for simulation grids (default: REPRO_JOBS or 1)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result store (always recompute)",
    )
    run_parser.set_defaults(func=_cmd_run)

    sim_parser = subparsers.add_parser("sim", help="run one simulation")
    group = sim_parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--mix", help="mix name (e.g. mix4_1)")
    group.add_argument("--benchmark", help="benchmark name (e.g. art_like)")
    sim_parser.add_argument("--policy", default="nucache", choices=policy_names())
    sim_parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES)
    sim_parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="root RNG seed for trace generation (default: %(default)s)",
    )
    sim_parser.set_defaults(func=_cmd_sim)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or maintain the persistent result store"
    )
    cache_parser.add_argument(
        "action", choices=("stats", "clear", "prune"),
        help="stats: entry count/footprint; clear: drop everything; "
        "prune: trim by age and/or count",
    )
    cache_parser.add_argument(
        "--keep", type=int, default=None, metavar="N",
        help="prune: keep only the N most recent entries",
    )
    cache_parser.add_argument(
        "--max-age-days", type=float, default=None, metavar="D",
        help="prune: drop entries older than D days",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    char_parser = subparsers.add_parser(
        "characterize", help="reuse-distance characterization of a benchmark"
    )
    char_parser.add_argument("benchmark")
    char_parser.add_argument("--accesses", type=int, default=50_000)
    char_parser.set_defaults(func=_cmd_characterize)

    trace_parser = subparsers.add_parser(
        "trace", help="generate and export a benchmark trace"
    )
    trace_parser.add_argument("benchmark")
    trace_parser.add_argument(
        "-o", "--output", required=True,
        help="output path (.npz for native, anything else for text)",
    )
    trace_parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES)
    trace_parser.add_argument("--seed", type=int, default=20110212)
    trace_parser.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
