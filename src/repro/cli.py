"""Command-line interface: ``nucache-repro``.

Subcommands::

    nucache-repro list                 # list experiments and workloads
    nucache-repro run fig5 [fig6 ...]  # run experiments, print tables
    nucache-repro run all --jobs 4     # every experiment, 4 workers
    nucache-repro run fig5 --no-cache  # bypass the result store
    nucache-repro run fig5 --trace     # structured trace + metrics.json
    nucache-repro run fig5 --profile   # cProfile workers, hot-function table
    nucache-repro run fig5 --engine vector   # numpy batch engine, same bytes
    nucache-repro run --resume <id>    # finish an interrupted run
    nucache-repro runs list            # past runs (from their journals)
    nucache-repro runs show <id>       # one run's journal, readable
    nucache-repro runs show <id> --timings   # wall-clock/phase breakdown
    nucache-repro explore list         # studies, algorithms, objectives
    nucache-repro explore run nucache-split --algo ga --budget 32 --seed 7
    nucache-repro explore resume <id>  # finish an interrupted search
    nucache-repro explore show <id>    # report + per-probe provenance
    nucache-repro sim --mix mix4_1 --policy nucache   # one simulation
    nucache-repro cache stats                         # result-store report
    nucache-repro cache prune --keep 1000             # trim the store
    nucache-repro store serve /var/cache/nucache --port 4070   # share a store
    nucache-repro run fig5 --store net://storehost:4070   # run against it
    nucache-repro check --quick                       # oracle fuzz sweep (CI)
    nucache-repro check --replay <file>               # replay a reproducer
    nucache-repro characterize art_like               # reuse-distance report
    nucache-repro trace art_like -o art.trace         # export a trace
    nucache-repro bench --quick -o BENCH_now.json     # perf benchmarks
    nucache-repro bench compare BENCH_baseline.json BENCH_now.json \
        --max-regress 15%                             # perf-regression gate

Every ``run`` writes an append-only journal (one JSONL manifest under
``<cache dir>/runs/``).  A run interrupted by SIGINT/SIGTERM drains
gracefully, flushes the journal, and prints a ``--resume`` hint; the
resumed run skips completed experiments and is served settled jobs from
the result store, so its output is byte-identical to an uninterrupted
run.

``run --trace`` switches on the observability layer (:mod:`repro.obs`):
a structured event trace under ``<cache dir>/traces/<run-id>/`` and a
deterministic ``metrics.json`` next to it; ``run --profile`` adds
per-job cProfile capture with a merged hot-function table per
experiment.  Both are strictly observational — simulated numbers (and
the tables printed on stdout) are byte-identical with or without them.
``runs show <id> --timings`` renders the wall-clock breakdown after the
fact.

Trace lengths can be scaled globally with the ``REPRO_SCALE``
environment variable (e.g. ``REPRO_SCALE=0.5`` for half-length traces).
Worker counts default from ``REPRO_JOBS``; the result store lives under
``REPRO_CACHE_DIR`` (default ``~/.cache/nucache-repro``).  Execution
summaries (computed/cached/failed job counts) and all observability
output go to stderr so tables on stdout stay byte-stable.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.common.errors import ExecError, ReproError, RunInterrupted, StoreError
from repro.common.rng import DEFAULT_SEED
from repro.exec import RunJournal
from repro.exec import context as exec_context
from repro.exec import journal as run_journal
from repro.experiments import experiment_ids, run_experiment
from repro.metrics.multicore import weighted_speedup
from repro.sim.policies import policy_names
from repro.sim.runner import DEFAULT_ACCESSES, alone_ipc, run_mix, run_single
from repro.sim.vector import ENGINE_ENV, ENGINE_MODES
from repro.workloads.mixes import all_mixes, mix_members
from repro.workloads.spec_like import catalog


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for experiment_id in experiment_ids():
        print(f"  {experiment_id}")
    print("\npolicies:")
    print("  " + ", ".join(policy_names()))
    print("\nbenchmarks:")
    for name, klass, _spec in catalog():
        print(f"  {name:<18} [{klass}]")
    print("\nmixes:")
    for cores, names in all_mixes().items():
        print(f"  {cores}-core: " + ", ".join(names))
    return 0


def _resolve_run_request(args: argparse.Namespace) -> tuple:
    """Experiments to run plus the journal's resumed-from id (or None)."""
    if args.resume:
        if args.experiments:
            raise ExecError("pass experiment ids or --resume, not both")
        summary = run_journal.find_run(args.resume)
        pending = summary.pending
        for experiment_id in summary.completed:
            print(
                f"[resume] skipping {experiment_id} (completed in {summary.run_id})",
                file=sys.stderr,
            )
        return pending, summary.run_id
    requested = args.experiments
    if not requested:
        raise ExecError("run needs experiment ids (or --resume <run-id>)")
    if requested == ["all"]:
        requested = experiment_ids()
    return requested, None


class _ObsSession:
    """Observability wiring for one ``run`` invocation (``--trace``/``--profile``).

    Owns the run's trace directory, the process-wide tracer activation
    (via ``$REPRO_TRACE_DIR``, so pool workers inherit it), the metrics
    registry, and per-experiment profile capture.  :meth:`finish`
    restores all process-wide state and exports ``metrics.json`` —
    everything it prints goes to stderr, keeping stdout byte-stable.
    """

    def __init__(self, run_id: str, trace: bool, profile: bool) -> None:
        from repro.obs.metrics import MetricsRegistry, set_registry
        from repro.obs.timings import trace_dir_for

        self.trace = trace
        self.profile = profile
        self.dir = trace_dir_for(run_id)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.registry = MetricsRegistry()
        set_registry(self.registry)
        self._saved_env: Optional[str] = None
        if trace:
            from repro.obs.trace import TRACE_ENV_VAR, reset_tracer

            self._saved_env = os.environ.get(TRACE_ENV_VAR)
            os.environ[TRACE_ENV_VAR] = str(self.dir)
            reset_tracer()
        print(f"[obs] writing to {self.dir}", file=sys.stderr)

    def start_experiment(self, experiment_id: str) -> None:
        """Point per-job profile dumps at this experiment's directory."""
        if self.profile:
            exec_context.configure(
                profile_dir=str(self.dir / "profiles" / experiment_id)
            )

    def end_experiment(self, experiment_id: str) -> None:
        """Merge and render this experiment's profile dumps (stderr)."""
        if not self.profile:
            return
        from repro.obs.profile import merge_profiles, render_hot_table

        stats = merge_profiles(self.dir / "profiles" / experiment_id)
        if stats is None:
            print(
                f"[profile] {experiment_id}: nothing executed "
                "(all jobs served from the result store?)",
                file=sys.stderr,
            )
            return
        print(
            render_hot_table(stats, title=f"[profile] {experiment_id}"),
            file=sys.stderr,
        )

    def finish(self) -> None:
        """Flush the trace, export metrics.json, restore global state."""
        from repro.obs.metrics import set_registry
        from repro.obs.trace import TRACE_ENV_VAR, reset_tracer

        if self.profile:
            exec_context.configure(profile_dir="")
        if self.trace:
            reset_tracer()  # closes the main process's tracer (flushes)
            if self._saved_env is None:
                os.environ.pop(TRACE_ENV_VAR, None)
            else:
                os.environ[TRACE_ENV_VAR] = self._saved_env
        path = self.registry.export(self.dir / "metrics.json")
        set_registry(None)
        print(f"[obs] metrics written to {path}", file=sys.stderr)


def _apply_engine_choice(args: argparse.Namespace) -> None:
    """Export ``--engine`` to the environment before any engine is built.

    Worker processes are forked after this point, so the choice reaches
    scheduler jobs too.  Results are engine-independent by construction;
    the flag only selects the implementation.
    """
    engine = getattr(args, "engine", None)
    if engine is not None:
        os.environ[ENGINE_ENV] = engine


def _cmd_run(args: argparse.Namespace) -> int:
    import hashlib
    import time as time_mod

    _apply_engine_choice(args)
    exec_context.configure(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        store=getattr(args, "store", None),
    )
    try:
        requested, resumed_from = _resolve_run_request(args)
    except ExecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if resumed_from is not None and not requested:
        print(f"[resume] {resumed_from}: nothing left to run", file=sys.stderr)
        return 0

    config = exec_context.current()
    journal = RunJournal.create(
        experiments=requested,
        jobs=config.jobs,
        use_cache=config.use_cache,
        resumed_from=resumed_from,
    )
    exec_context.set_journal(journal)
    print(f"[run] id={journal.run_id} journal={journal.path}", file=sys.stderr)
    obs: Optional[_ObsSession] = None
    if args.trace or args.profile:
        obs = _ObsSession(journal.run_id, trace=args.trace, profile=args.profile)
    try:
        for experiment_id in requested:
            exec_context.reset_totals()
            journal.record_experiment_start(experiment_id)
            if obs is not None:
                obs.start_experiment(experiment_id)
            started = time_mod.monotonic()
            try:
                result = run_experiment(experiment_id)
            except (RunInterrupted, KeyboardInterrupt):
                journal.record_experiment_end(experiment_id, status="interrupted")
                journal.close("interrupted")
                print(
                    f"[run] interrupted during {experiment_id} — resume with: "
                    f"nucache-repro run --resume {journal.run_id}",
                    file=sys.stderr,
                )
                return 130
            except Exception as exc:
                journal.record_experiment_end(experiment_id, status="failed")
                journal.close("failed", error=repr(exc))
                raise
            if args.bars:
                from repro.experiments.plots import render_with_bars

                text = render_with_bars(result)
            else:
                text = result.to_text()
            print(text)
            print()
            journal.record_experiment_end(
                experiment_id,
                status="ok",
                output_sha256=hashlib.sha256(text.encode("utf-8")).hexdigest(),
                elapsed=time_mod.monotonic() - started,
            )
            if obs is not None:
                obs.end_experiment(experiment_id)
            report = exec_context.totals()
            if report.total:
                print(f"[exec] {experiment_id}: {report.describe()}", file=sys.stderr)
    finally:
        exec_context.set_journal(None)
        if obs is not None:
            obs.finish()
    journal.close("completed")
    return 0


def _print_failed_outcome(key: str, outcome: dict) -> None:
    """Render one failed job's journaled forensics for ``runs show``.

    Prints the short error first, then the preserved worker traceback,
    any violated invariants, and a bounded rendering of the state
    snapshot an :class:`~repro.common.errors.InvariantViolation`
    carried — everything the scheduler's ``_record_outcome`` persisted.
    """
    import json as json_mod

    print(f"      failed {key[:12]} [{outcome.get('label')}] after "
          f"{outcome.get('attempts')} attempt(s): {outcome.get('error')}")
    for violation in outcome.get("violations") or []:
        print(f"        violated: {violation}")
    traceback_text = outcome.get("traceback")
    if traceback_text:
        for line in str(traceback_text).rstrip().splitlines():
            print(f"        | {line}")
    snapshot = outcome.get("snapshot")
    if snapshot:
        rendered = json_mod.dumps(snapshot, sort_keys=True)
        if len(rendered) > 2000:
            rendered = rendered[:2000] + f"... ({len(rendered)} chars total)"
        print(f"        snapshot: {rendered}")


def _cmd_runs(args: argparse.Namespace) -> int:
    if args.action == "list":
        summaries = run_journal.list_runs()
        if not summaries:
            print("no recorded runs")
            return 0
        for summary in summaries:
            print(summary.describe())
        return 0
    # show
    if not args.run_id:
        print("error: 'runs show' needs a run id (see 'runs list')", file=sys.stderr)
        return 2
    try:
        summary = run_journal.find_run(args.run_id)
    except ExecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    records, warnings = run_journal.load_journal(summary.path)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.timings:
        from repro.obs.timings import (
            load_trace_records,
            render_timings,
            trace_dir_for,
        )

        trace_records = load_trace_records(trace_dir_for(summary.run_id))
        print(render_timings(summary, records, trace_records))
        return 0
    print(summary.describe())
    for record in records:
        kind = record.get("record")
        if kind == "start":
            print(f"  start: experiments={record.get('experiments')} "
                  f"jobs={record.get('jobs')} use_cache={record.get('use_cache')}"
                  + (f" resumed_from={record['resumed_from']}"
                     if record.get("resumed_from") else ""))
        elif kind == "experiment_start":
            print(f"  {record.get('experiment')}: started")
        elif kind == "explore_start":
            print(f"  explore: study={record.get('study')} "
                  f"algo={record.get('algo')} seed={record.get('seed')} "
                  f"budget={record.get('budget')} "
                  f"objective={record.get('objective')} "
                  f"space={str(record.get('space_hash'))[:16]}")
        elif kind == "probe":
            print(_render_probe_record(record))
        elif kind == "batch":
            report = record.get("report") or {}
            print(f"    batch [{record.get('label')}] {record.get('status')}: "
                  f"{report.get('completed', 0)} computed, "
                  f"{report.get('cached', 0)} cached, "
                  f"{report.get('failed', 0)} failed of {report.get('total', 0)}")
            store_extras = record.get("store") or {}
            if store_extras:
                rendered = " ".join(
                    f"{key}={store_extras[key]}" for key in sorted(store_extras)
                )
                print(f"      store: {rendered}")
            for key, outcome in (record.get("outcomes") or {}).items():
                if not isinstance(outcome, dict) or outcome.get("status") != "failed":
                    continue
                _print_failed_outcome(str(key), outcome)
        elif kind == "experiment_end":
            line = f"  {record.get('experiment')}: {record.get('status')}"
            if record.get("elapsed") is not None:
                line += f" in {record['elapsed']:.2f}s"
            print(line)
        elif kind == "end":
            line = f"  end: {record.get('status')}"
            if record.get("error"):
                line += f" ({record['error']})"
            print(line)
    return 0


def _render_probe_record(record: dict) -> str:
    """One journal ``probe`` record as a ``runs show`` line.

    Surfaces what the deterministic report deliberately omits: how many
    of the probe's jobs were served from the result store vs computed,
    and the computed jobs' settle times.
    """
    params = record.get("params") or {}
    shown = " ".join(f"{k}={params[k]}" for k in sorted(params))
    if not record.get("valid"):
        body = "invalid"
    else:
        body = f"objective={record.get('objective')}"
    keys = record.get("job_keys") or []
    cached = int(record.get("cached") or 0)
    computed = int(record.get("computed") or 0)
    total = cached + computed
    if record.get("replayed"):
        provenance = "replayed from journal"
    elif total:
        provenance = (
            f"{len(keys)} jobs, {cached}/{total} cached "
            f"({cached / total:.0%} cache-hit)"
        )
        settle = [float(t) for t in record.get("settle") or []]
        if settle:
            provenance += (
                f", settle max {max(settle):.3f}s "
                f"avg {sum(settle) / len(settle):.3f}s"
            )
    else:
        provenance = "no jobs"
    return (f"    probe {record.get('index'):>3}: {body}  [{provenance}]  "
            f"{shown}")


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro import explore

    if args.explore_cmd == "list":
        print("studies:")
        for name in explore.study_names():
            study = explore.get_study(name)
            print(f"  {name:<16} {study.title}")
            print(f"  {'':<16} mix={study.mix} policy={study.policy} "
                  f"space={study.space.describe()} "
                  f"({study.space.size} points)")
        print("\nalgorithms:")
        print("  " + ", ".join(explore.algorithm_names()))
        print("\nobjectives:")
        print("  " + ", ".join(explore.objective_names()))
        return 0

    if args.explore_cmd == "show":
        return _explore_show(args.target)

    # run / resume
    exec_context.configure(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        store=getattr(args, "store", None),
    )

    def _progress(event: dict) -> None:
        params = event.get("params") or {}
        shown = " ".join(f"{k}={params[k]}" for k in sorted(params))
        if event.get("replayed"):
            status = "replayed"
        elif not event.get("valid"):
            status = "invalid"
        else:
            status = f"objective={event.get('objective')}"
        print(f"[explore] probe {event.get('index')}: {status}  {shown}",
              file=sys.stderr)

    try:
        if args.explore_cmd == "resume":
            outcome = explore.resume_search(
                args.run_id, output=args.output, progress=_progress
            )
        else:
            outcome = explore.run_search(
                args.study,
                algo=args.algo,
                budget=args.budget,
                seed=args.seed,
                objective=args.objective,
                output=args.output,
                progress=_progress,
            )
    except RunInterrupted as exc:
        print(f"[explore] {exc}", file=sys.stderr)
        return 130
    except (explore.ExploreError, ExecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(explore.render_report(outcome.report))
    print(f"[explore] id={outcome.run_id} report={outcome.report_path}",
          file=sys.stderr)
    print(f"[explore] {outcome.describe()}", file=sys.stderr)
    return 0


def _explore_show(target: str) -> int:
    """Render an explore run (by id/prefix) or explore.json (by path)."""
    from pathlib import Path as _Path

    from repro import explore

    report = None
    records: list = []
    if _Path(target).is_file():
        try:
            report = explore.load_report(target)
        except explore.ExploreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            summary = run_journal.find_run(target)
        except ExecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        records = run_journal.read_records(summary.path)
        start = next(
            (r for r in records if r.get("record") == "explore_start"), None
        )
        if start is None:
            print(f"error: run {summary.run_id} is not an exploration run "
                  "(try 'runs show')", file=sys.stderr)
            return 2
        output = _Path(str(start.get("output") or ""))
        if output.is_file():
            report = explore.load_report(output)
        else:
            print(f"[explore] no report at {output} (run interrupted?); "
                  "showing journal records only", file=sys.stderr)
    if report is not None:
        print(explore.render_report(report))
    probes = [r for r in records if r.get("record") == "probe"]
    if probes:
        print("\nprobe provenance (from the run journal):")
        for record in probes:
            print(_render_probe_record(record))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.exec.stores import make_store

    try:
        store = make_store(getattr(args, "store", None))
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "stats":
        print(store.stats().describe())
        print(store.describe_health())
    elif args.action == "clear":
        removed = store.clear()
        where = getattr(store, "base", None) or getattr(store, "address", "?")
        print(f"removed {removed} entries from {where}")
    elif args.action == "prune":
        if args.keep is None and args.max_age_days is None:
            print("prune needs --keep and/or --max-age-days", file=sys.stderr)
            return 2
        removed = store.prune(max_age_days=args.max_age_days, keep=args.keep)
        print(f"pruned {removed} entries; now {store.stats().describe()}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Serve a local store (fs or sqlite) to the fleet over TCP.

    Prints one parseable ``listening on HOST:PORT`` line once the socket
    is bound (with ``--port 0`` the kernel picks the port, so callers
    must read it from here).  SIGINT/SIGTERM drain the in-flight
    request, release every held lease, and exit 0 — an interrupted
    server never strands leases or half-written replies.
    """
    import signal
    import threading

    from repro.exec.stores import BACKENDS, FileResultStore, make_store
    from repro.exec.stores.net import StoreServer

    target = args.target
    try:
        if target is not None and "://" not in target and target not in BACKENDS:
            backing = FileResultStore(target)  # a bare path serves fs
        else:
            backing = make_store(target)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if backing.backend == "net":
        print(
            "error: cannot serve a net:// store (that is already a "
            "server); point serve at an fs or sqlite spec",
            file=sys.stderr,
        )
        return 2
    try:
        server = StoreServer(backing, host=args.host, port=args.port)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    host, port = server.address
    print(f"serving {backing.backend} store "
          f"{getattr(backing, 'base', '?')}", flush=True)
    print(f"listening on {host}:{port}", flush=True)

    stop = threading.Event()

    def _drain(_signum: int, _frame: object) -> None:
        stop.set()

    previous = {
        signum: signal.signal(signum, _drain)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    server.start()
    try:
        while not stop.wait(0.2):
            pass
    finally:
        server.close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("drained; leases released; bye", flush=True)
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.analysis.characterize import characterize_benchmark

    character = characterize_benchmark(args.benchmark, args.accesses)
    print(character.describe())
    for pc, share in character.pc_access_shares:
        print(f"  pc {pc:#x}: {share:.1%} of accesses")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.spec_like import benchmark as lookup
    from repro.workloads.synthetic import generate_trace
    from repro.workloads.textio import save_text

    trace = generate_trace(lookup(args.benchmark), args.accesses, args.seed)
    if args.output.endswith(".npz"):
        trace.save(args.output)
    else:
        save_text(trace, args.output)
    print(f"wrote {len(trace)} accesses to {args.output}")
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    _apply_engine_choice(args)
    if args.mix:
        members = mix_members(args.mix)
        result = run_mix(args.mix, args.policy, args.accesses, args.seed)
        alone = [
            alone_ipc(name, len(members), args.accesses, args.seed)
            for name in members
        ]
        print(f"mix {args.mix} under {args.policy}:")
        for core, name in zip(result.cores, members):
            print(
                f"  core {core.core_id} {name:<18} ipc={core.ipc:.4f} "
                f"mpki={core.mpki:.2f} llc_hit={core.llc_hit_rate:.3f}"
            )
        print(f"  weighted speedup = {weighted_speedup(result.ipcs, alone):.4f}")
    else:
        result = run_single(args.benchmark, args.policy, args.accesses, args.seed)
        core = result.cores[0]
        print(
            f"{args.benchmark} under {args.policy}: ipc={core.ipc:.4f} "
            f"mpki={core.mpki:.2f} llc_hit={core.llc_hit_rate:.3f}"
        )
    if result.llc_extra:
        print(f"  llc extra: {result.llc_extra}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        benchmark_names,
        compare_payloads,
        load_payload,
        parse_regress_threshold,
        run_suite,
        save_payload,
    )

    if getattr(args, "bench_cmd", None) == "compare":
        try:
            threshold = parse_regress_threshold(args.max_regress)
            baseline = load_payload(args.baseline)
            candidate = load_payload(args.candidate)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = compare_payloads(baseline, candidate, threshold)
        print(report.render())
        return report.exit_code
    # default action: run the suite
    names = args.only or None
    if names:
        unknown = sorted(set(names) - set(benchmark_names()))
        if unknown:
            print(
                f"error: unknown benchmark(s) {unknown}; "
                f"known: {benchmark_names()}",
                file=sys.stderr,
            )
            return 2
    payload = run_suite(
        quick=args.quick,
        repetitions=args.repetitions,
        names=names,
        progress=lambda name: print(f"[bench] running {name}...", file=sys.stderr),
    )
    for name, entry in payload["benchmarks"].items():
        print(
            f"{name:<16} {entry['ops_per_sec']:>14,.0f} {entry['unit']}/s "
            f"(median {entry['median_s']:.4f}s over {entry['repetitions']} reps, "
            f"{entry['ops']:,} ops)"
        )
    if args.output:
        save_payload(payload, args.output)
        print(f"[bench] payload written to {args.output}", file=sys.stderr)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check.fuzz import load_reproducer, replay_stream, run_check

    if args.replay:
        try:
            case, stream, corrupt_after = load_reproducer(args.replay)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"replaying {len(stream)}-access reproducer: {case.describe()}")
        outcome = replay_stream(case, stream, corrupt_after)
        if outcome is None:
            print("replay completed cleanly (violation did not reproduce)")
            return 0
        violation, index = outcome
        print(f"violation reproduced at access {index}:")
        for line in violation.violations or [str(violation)]:
            print(f"  {line}")
        return 1

    mode = "quick" if args.quick else "full"
    forced = " (forcing one violation)" if args.force_violation else ""
    print(f"check: {mode} grid, seed {args.seed}{forced}", file=sys.stderr)
    report = run_check(
        quick=args.quick,
        seed=args.seed,
        policies=args.policies,
        accesses=args.accesses,
        force_violation=args.force_violation,
        progress=lambda line: print(line, file=sys.stderr),
    )
    if report.ok:
        print(f"check: {report.cases} cases, all clean")
        return 0
    print(f"check: {report.cases} cases, {len(report.failures)} DIVERGED")
    for failure in report.failures:
        print(f"  {failure.case.describe()} at access {failure.access_index}")
        for line in failure.violation.violations[:4]:
            print(f"    {line}")
        if failure.reproducer_path is not None:
            print(f"    reproducer: {failure.reproducer_path}")
    print("replay one with: nucache-repro check --replay <reproducer>")
    # A forced violation proves the pipeline; exactly one is the
    # expected (successful) outcome.
    if args.force_violation and len(report.failures) == 1:
        print("forced violation detected as expected")
        return 0
    return 1


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {raw}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="nucache-repro",
        description="NUcache (HPCA 2011) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list experiments and workloads")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--resume", default=None, metavar="RUN_ID",
        help="resume an interrupted run by its journal id (see 'runs list'); "
        "completed experiments are skipped, settled jobs come from the store",
    )
    run_parser.add_argument(
        "--bars", action="store_true",
        help="append an automatic bar chart per experiment",
    )
    run_parser.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker processes for simulation grids (default: REPRO_JOBS or 1)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result store (always recompute)",
    )
    run_parser.add_argument(
        "--store", default=None, metavar="BACKEND",
        help="result-store backend: fs, sqlite, net://host:port, or a "
        "backend://path URL "
        "(default: REPRO_STORE or fs)",
    )
    run_parser.add_argument(
        "--trace", action="store_true",
        help="write a structured event trace and metrics.json under "
        "<cache dir>/traces/<run-id>/ (simulated numbers are unchanged)",
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="profile every executed job with cProfile and print a merged "
        "hot-function table per experiment (stderr)",
    )
    run_parser.add_argument(
        "--engine", choices=ENGINE_MODES, default=None,
        help="simulation engine backend (default: REPRO_ENGINE or scalar); "
        "results are byte-identical either way",
    )
    run_parser.set_defaults(func=_cmd_run)

    runs_parser = subparsers.add_parser(
        "runs", help="inspect past runs via their journals"
    )
    runs_parser.add_argument(
        "action", choices=("list", "show"),
        help="list: all recorded runs, newest first; show: one run's records",
    )
    runs_parser.add_argument(
        "run_id", nargs="?", default=None,
        help="run id (or unambiguous prefix) for 'show'",
    )
    runs_parser.add_argument(
        "--timings", action="store_true",
        help="show: render the wall-clock breakdown (journal + trace) "
        "instead of the raw records",
    )
    runs_parser.set_defaults(func=_cmd_runs)

    explore_parser = subparsers.add_parser(
        "explore", help="design-space search over the NUcache knobs"
    )
    explore_sub = explore_parser.add_subparsers(dest="explore_cmd", required=True)
    explore_list = explore_sub.add_parser(
        "list", help="list studies, search algorithms, and objectives"
    )
    explore_list.set_defaults(func=_cmd_explore)

    def _add_explore_exec_args(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--jobs", type=_positive_int, default=None, metavar="N",
            help="worker processes (default: REPRO_JOBS or 1); the search "
            "trajectory is identical at any worker count",
        )
        target.add_argument(
            "--no-cache", action="store_true",
            help="bypass the persistent result store (always recompute)",
        )
        target.add_argument(
            "--store", default=None, metavar="BACKEND",
            help="result-store backend: fs, sqlite, net://host:port, or a "
        "backend://path URL "
            "(default: REPRO_STORE or fs)",
        )
        target.add_argument(
            "-o", "--output", default=None, metavar="PATH",
            help="where to write explore.json "
            "(default: <cache dir>/explore/<run-id>.json)",
        )

    explore_run = explore_sub.add_parser(
        "run", help="run a search study (see 'explore list')"
    )
    explore_run.add_argument("study", help="study name (see 'explore list')")
    explore_run.add_argument(
        "--algo", default="random", metavar="NAME",
        help="search algorithm: random, grid, hill, or ga "
        "(default: %(default)s)",
    )
    explore_run.add_argument(
        "--budget", type=_positive_int, default=16, metavar="N",
        help="number of probes to evaluate (default: %(default)s)",
    )
    explore_run.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="search seed (proposal randomness only; simulations use the "
        "study's sim seed; default: %(default)s)",
    )
    explore_run.add_argument(
        "--objective", default=None, metavar="NAME",
        help="objective overriding the study default (ws, ipc, hit_rate, mpki)",
    )
    _add_explore_exec_args(explore_run)
    explore_run.set_defaults(func=_cmd_explore)

    explore_resume = explore_sub.add_parser(
        "resume", help="resume an interrupted search from its journal"
    )
    explore_resume.add_argument(
        "run_id", help="run id (or unambiguous prefix) of the search to resume",
    )
    _add_explore_exec_args(explore_resume)
    explore_resume.set_defaults(func=_cmd_explore)

    explore_show = explore_sub.add_parser(
        "show", help="render a finished search: report plus probe provenance"
    )
    explore_show.add_argument(
        "target", help="run id (or prefix), or a path to an explore.json",
    )
    explore_show.set_defaults(func=_cmd_explore)

    sim_parser = subparsers.add_parser("sim", help="run one simulation")
    group = sim_parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--mix", help="mix name (e.g. mix4_1)")
    group.add_argument("--benchmark", help="benchmark name (e.g. art_like)")
    sim_parser.add_argument("--policy", default="nucache", choices=policy_names())
    sim_parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES)
    sim_parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="root RNG seed for trace generation (default: %(default)s)",
    )
    sim_parser.add_argument(
        "--engine", choices=ENGINE_MODES, default=None,
        help="simulation engine backend (default: REPRO_ENGINE or scalar); "
        "results are byte-identical either way",
    )
    sim_parser.set_defaults(func=_cmd_sim)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or maintain the persistent result store"
    )
    cache_parser.add_argument(
        "action", choices=("stats", "clear", "prune"),
        help="stats: entry count/footprint; clear: drop everything; "
        "prune: trim by age and/or count",
    )
    cache_parser.add_argument(
        "--keep", type=int, default=None, metavar="N",
        help="prune: keep only the N most recent entries",
    )
    cache_parser.add_argument(
        "--max-age-days", type=float, default=None, metavar="D",
        help="prune: drop entries older than D days",
    )
    cache_parser.add_argument(
        "--store", default=None, metavar="BACKEND",
        help="result-store backend: fs, sqlite, net://host:port, or a "
        "backend://path URL "
        "(default: REPRO_STORE or fs)",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    store_parser = subparsers.add_parser(
        "store", help="serve a result store to other machines over TCP"
    )
    store_parser.add_argument(
        "action", choices=("serve",),
        help="serve: run the net-store server for a local backend",
    )
    store_parser.add_argument(
        "target", nargs="?", default=None, metavar="SPEC",
        help="store to serve: a path (fs store rooted there), a backend "
        "name, or a backend://path URL (default: REPRO_STORE or fs)",
    )
    store_parser.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="interface to bind (default: 127.0.0.1; 0.0.0.0 for a fleet)",
    )
    store_parser.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="port to bind (default: 0 = kernel-assigned; the chosen "
        "port is printed as 'listening on HOST:PORT')",
    )
    store_parser.set_defaults(func=_cmd_store)

    def _add_bench_run_args(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--quick", action="store_true",
            help="smaller op counts and fewer repetitions (the CI mode)",
        )
        target.add_argument(
            "--repetitions", type=_positive_int, default=None, metavar="K",
            help="repetitions per case; the median is reported "
            "(default: 5 full / 3 quick)",
        )
        target.add_argument(
            "--only", nargs="*", default=None, metavar="NAME",
            help="run only these benchmarks (see docs/benchmarking.md)",
        )
        target.add_argument(
            "-o", "--output", default=None, metavar="PATH",
            help="write the schema-versioned JSON payload here "
            "(e.g. BENCH_candidate.json)",
        )

    bench_parser = subparsers.add_parser(
        "bench", help="run performance benchmarks or compare payloads"
    )
    # `bench --quick` (no sub-subcommand) runs the suite directly.
    _add_bench_run_args(bench_parser)
    bench_sub = bench_parser.add_subparsers(dest="bench_cmd")
    bench_run = bench_sub.add_parser("run", help="run the benchmark suite")
    _add_bench_run_args(bench_run)
    bench_compare = bench_sub.add_parser(
        "compare", help="compare two payloads; exit 1 on regression"
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json")
    bench_compare.add_argument("candidate", help="candidate BENCH_*.json")
    bench_compare.add_argument(
        "--max-regress", default="15%", metavar="PCT",
        help="fail when a benchmark is slower than baseline by more than "
        "this ('15%%' or '0.15'; default %(default)s)",
    )
    bench_parser.set_defaults(func=_cmd_bench)
    bench_run.set_defaults(func=_cmd_bench)
    bench_compare.set_defaults(func=_cmd_bench)

    check_parser = subparsers.add_parser(
        "check",
        help="fuzz the optimized cache kernel against the reference oracle",
    )
    check_parser.add_argument(
        "--quick", action="store_true",
        help="bounded grid for CI: fewer geometries, shorter streams",
    )
    check_parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="root RNG seed for the fuzz streams (default: %(default)s)",
    )
    check_parser.add_argument(
        "--policies", nargs="+", default=None, metavar="POLICY",
        help="restrict the grid to these policies (default: the full family set)",
    )
    check_parser.add_argument(
        "--accesses", type=_positive_int, default=None, metavar="N",
        help="accesses per stream (default: 1200 quick / 4000 full)",
    )
    check_parser.add_argument(
        "--force-violation", action="store_true",
        help="corrupt the first case mid-stream to prove the "
        "detect/shrink/reproduce pipeline end-to-end",
    )
    check_parser.add_argument(
        "--replay", default=None, metavar="PATH",
        help="replay a reproducer file written by a previous failing check",
    )
    check_parser.set_defaults(func=_cmd_check)

    char_parser = subparsers.add_parser(
        "characterize", help="reuse-distance characterization of a benchmark"
    )
    char_parser.add_argument("benchmark")
    char_parser.add_argument("--accesses", type=int, default=50_000)
    char_parser.set_defaults(func=_cmd_characterize)

    trace_parser = subparsers.add_parser(
        "trace", help="generate and export a benchmark trace"
    )
    trace_parser.add_argument("benchmark")
    trace_parser.add_argument(
        "-o", "--output", required=True,
        help="output path (.npz for native, anything else for text)",
    )
    trace_parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES)
    trace_parser.add_argument("--seed", type=int, default=20110212)
    trace_parser.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe closed early (e.g. `nucache-repro runs list |
        # head`): point stdout at devnull so the interpreter's exit-time
        # flush does not raise a second time, and exit like SIGPIPE.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
