"""Deterministic fuzz harness for the differential oracle.

Drives seeded random access streams through
:class:`~repro.check.oracle.DifferentialHarness` across a policy ×
geometry × DeliWay-split grid.  Every case is fully determined by its
:class:`FuzzCase` (the stream is derived from the case's seed via
:func:`repro.common.rng.make_rng`), so any failure is replayable from
its parameters alone.

When a case fails, the failing stream is shrunk ddmin-style to a
minimal reproducer and written as JSON under
``$REPRO_CACHE_DIR/check/`` — :func:`load_reproducer` +
:func:`replay_stream` re-run it exactly.  The ``nucache-repro check``
CLI subcommand (see :mod:`repro.cli`) is a thin wrapper over
:func:`run_check`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.check.oracle import DifferentialHarness, make_reference
from repro.common.config import CacheGeometry, NUcacheConfig, SystemConfig
from repro.common.errors import InvariantViolation, ReproError
from repro.common.rng import DEFAULT_SEED, make_rng
from repro.exec.store import default_store_dir
from repro.nucache.organization import NUCache
from repro.sim.policies import make_llc

#: One access of a fuzz stream: ``(block_addr, core, pc, is_write)``.
Access = Tuple[int, int, int, bool]

#: Policy families covered by ``--quick`` (one per optimization-relevant
#: code path: plain-LRU inline, dueling, RRIP, SHiP, SDBP, NUcache,
#: partitioned NUcache).
QUICK_POLICIES = ("lru", "dip", "srrip", "ship", "sdbp", "nucache", "nucache-ucp")

#: Additional families exercised by a full run.
EXTRA_POLICIES = (
    "fifo", "lip", "nru", "plru", "bip", "brrip", "drrip", "tadip",
    "ship-bypass", "random",
)

#: ``(sets, ways)`` grids: quick keeps two shapes, full adds larger ones.
QUICK_GEOMETRIES = ((16, 4), (8, 8))
FULL_GEOMETRIES = ((16, 4), (8, 8), (32, 8), (16, 16))

#: Cap on oracle replays spent shrinking one failing stream.
SHRINK_BUDGET = 400


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic oracle run: policy + geometry + stream parameters."""

    policy: str
    sets: int = 16
    ways: int = 8
    deli_ways: int = 2
    cores: int = 2
    accesses: int = 2000
    seed: int = DEFAULT_SEED
    footprint: int = 0  # 0 = 3x the cache capacity
    pcs: int = 12
    write_fraction: float = 0.25

    def describe(self) -> str:
        """One-line label for progress output and reproducer names."""
        split = f" deli={self.deli_ways}" if self.policy.startswith("nucache") else ""
        return (
            f"{self.policy} {self.sets}x{self.ways}{split} cores={self.cores} "
            f"n={self.accesses} seed={self.seed}"
        )

    def to_dict(self) -> dict:
        """JSON representation for reproducer files."""
        return {
            "policy": self.policy, "sets": self.sets, "ways": self.ways,
            "deli_ways": self.deli_ways, "cores": self.cores,
            "accesses": self.accesses, "seed": self.seed,
            "footprint": self.footprint, "pcs": self.pcs,
            "write_fraction": self.write_fraction,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCase":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


@dataclass
class FuzzFailure:
    """A case whose stream diverged, with its minimal reproducer."""

    case: FuzzCase
    stream: List[Access]
    violation: InvariantViolation
    access_index: int
    reproducer_path: Optional[Path] = None
    corrupt_after: Optional[int] = None


@dataclass
class CheckReport:
    """Outcome of one :func:`run_check` sweep."""

    cases: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every case completed without divergence."""
        return not self.failures


def system_config(case: FuzzCase) -> SystemConfig:
    """The (LLC-focused) system config a fuzz case runs against.

    Epochs are kept very short so selection/rotation churn happens many
    times within even a quick stream — epoch boundaries are where slot
    remaps and retention-set changes can corrupt state.
    """
    block = 64
    return SystemConfig(
        num_cores=case.cores,
        l1=CacheGeometry(size_bytes=512, block_bytes=block, ways=2),
        l2=CacheGeometry(size_bytes=2048, block_bytes=block, ways=4),
        llc=CacheGeometry(
            size_bytes=case.sets * case.ways * block, block_bytes=block,
            ways=case.ways,
        ),
        nucache=NUcacheConfig(
            deli_ways=case.deli_ways,
            num_candidate_pcs=8,
            epoch_misses=150,
            history_capacity=64,
            max_selected_pcs=4,
            selector="greedy",
        ),
    )


def generate_stream(case: FuzzCase) -> List[Access]:
    """The case's deterministic access stream (seed-derived)."""
    rng = make_rng(case.seed, f"fuzz:{case.describe()}")
    count = case.accesses
    footprint = case.footprint or 3 * case.sets * case.ways
    blocks = rng.integers(0, footprint, size=count)
    pcs = rng.integers(0, case.pcs, size=count)
    cores = rng.integers(0, case.cores, size=count)
    writes = rng.random(count) < case.write_fraction
    return [
        (int(blocks[i]), int(cores[i]), 0x400000 + int(pcs[i]) * 4, bool(writes[i]))
        for i in range(count)
    ]


def build_harness(case: FuzzCase) -> DifferentialHarness:
    """Fresh kernel + reference + harness for one (re)play."""
    config = system_config(case)
    kernel = make_llc(case.policy, config, seed=case.seed)
    reference = make_reference(case.policy, config, seed=case.seed)
    return DifferentialHarness(kernel, reference)


def corrupt_kernel(llc) -> str:
    """Deliberately corrupt the kernel state (``--force-violation``).

    For NUcache with at least two resident DeliWay lines, swaps two
    retention sequence numbers (a FIFO-order corruption only the
    sanitizer can see).  Otherwise tampers with the hit counters, which
    both the stats conservation check and the counter diff catch.
    """
    if isinstance(llc, NUCache):
        for nu_set in llc.sets:
            if len(nu_set.deli) >= 2:
                entries = list(nu_set.deli.values())
                entries[0].seq, entries[1].seq = entries[1].seq, entries[0].seq
                return "swapped DeliWay retention sequence numbers"
    llc.stats.total.hits += 1
    return "tampered with the total hit counter"


def replay_stream(
    case: FuzzCase,
    stream: Sequence[Access],
    corrupt_after: Optional[int] = None,
    corruptor: Callable = corrupt_kernel,
) -> Optional[Tuple[InvariantViolation, int]]:
    """Replay a stream through a fresh harness.

    Returns ``(violation, access_index)`` if the oracle diverged, else
    ``None``.  When ``corrupt_after`` is given, ``corruptor`` is applied
    to the kernel before the access at that index (clamped to the
    stream's end), which forces a detectable violation.
    """
    harness = build_harness(case)
    point = None
    if corrupt_after is not None and stream:
        point = min(corrupt_after, len(stream) - 1)
    for index, (block_addr, core, pc, is_write) in enumerate(stream):
        if index == point:
            corruptor(harness.kernel)
        try:
            harness.access(block_addr, core, pc, is_write)
        except InvariantViolation as violation:
            return violation, index
    return None


def shrink_stream(
    stream: Sequence[Access],
    still_fails: Callable[[Sequence[Access]], bool],
    budget: int = SHRINK_BUDGET,
) -> List[Access]:
    """ddmin-style reduction: drop chunks while the failure reproduces."""
    current = list(stream)
    spent = 0
    chunk = max(1, len(current) // 2)
    while chunk >= 1 and spent < budget:
        start = 0
        reduced = False
        while start < len(current) and spent < budget:
            candidate = current[:start] + current[start + chunk:]
            spent += 1
            if candidate and still_fails(candidate):
                current = candidate
                reduced = True
            else:
                start += chunk
        if chunk == 1:
            if not reduced:
                break
        else:
            chunk //= 2
    return current


def reproducer_dir(base: Optional[Path] = None) -> Path:
    """Directory for reproducer files (``$REPRO_CACHE_DIR/check/``)."""
    directory = (base or default_store_dir()) / "check"
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def write_reproducer(failure: FuzzFailure, base: Optional[Path] = None) -> Path:
    """Persist a failing case + minimal stream as a JSON reproducer."""
    payload = {
        "schema": 1,
        "case": failure.case.to_dict(),
        "stream": [
            [block_addr, core, pc, int(is_write)]
            for block_addr, core, pc, is_write in failure.stream
        ],
        "corrupt_after": failure.corrupt_after,
        "access_index": failure.access_index,
        "violation": failure.violation.to_dict(),
    }
    digest = hashlib.sha256(
        json.dumps([payload["case"], payload["stream"]], sort_keys=True).encode()
    ).hexdigest()[:12]
    path = reproducer_dir(base) / (
        f"repro-{failure.case.policy}-s{failure.case.seed}-{digest}.json"
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    failure.reproducer_path = path
    return path


def load_reproducer(path: Path) -> Tuple[FuzzCase, List[Access], Optional[int]]:
    """Load a reproducer file back into replayable form."""
    try:
        payload = json.loads(Path(path).read_text())
        case = FuzzCase.from_dict(payload["case"])
        stream = [
            (int(b), int(c), int(p), bool(w)) for b, c, p, w in payload["stream"]
        ]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise ReproError(f"unreadable reproducer file {path}: {exc!r}") from exc
    return case, stream, payload.get("corrupt_after")


def run_case(
    case: FuzzCase,
    shrink: bool = True,
    store_base: Optional[Path] = None,
    corrupt_after: Optional[int] = None,
) -> Optional[FuzzFailure]:
    """Run one case; on divergence, shrink it and write a reproducer."""
    stream = generate_stream(case)
    outcome = replay_stream(case, stream, corrupt_after)
    if outcome is None:
        return None
    violation, index = outcome
    minimal = list(stream[: index + 1])
    if shrink:
        minimal = shrink_stream(
            minimal,
            lambda candidate: replay_stream(case, candidate, corrupt_after)
            is not None,
        )
        reduced = replay_stream(case, minimal, corrupt_after)
        if reduced is not None:  # keep the violation matching the stream
            violation, index = reduced
    failure = FuzzFailure(
        case=case,
        stream=minimal,
        violation=violation,
        access_index=index,
        corrupt_after=corrupt_after,
    )
    write_reproducer(failure, store_base)
    return failure


def default_grid(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    policies: Optional[Sequence[str]] = None,
    accesses: Optional[int] = None,
) -> List[FuzzCase]:
    """The policy × geometry × DeliWay-split case grid.

    ``quick`` bounds the sweep for CI (fewer geometries, shorter
    streams, the seven :data:`QUICK_POLICIES` families); the full grid
    covers every policy with a reference model.
    """
    chosen = tuple(policies) if policies else (
        QUICK_POLICIES if quick else QUICK_POLICIES + EXTRA_POLICIES
    )
    geometries = QUICK_GEOMETRIES if quick else FULL_GEOMETRIES
    stream_length = accesses or (1200 if quick else 4000)
    cases: List[FuzzCase] = []
    for policy in chosen:
        for sets, ways in geometries:
            if policy.startswith("nucache"):
                splits = (2,) if quick else tuple(
                    sorted({1, 2, ways // 2} - {0})
                )
                for deli_ways in splits:
                    if ways - deli_ways < 2:  # partitioned needs a way per core
                        continue
                    cases.append(FuzzCase(
                        policy=policy, sets=sets, ways=ways,
                        deli_ways=deli_ways, accesses=stream_length, seed=seed,
                    ))
            else:
                cases.append(FuzzCase(
                    policy=policy, sets=sets, ways=ways, deli_ways=1,
                    accesses=stream_length, seed=seed,
                ))
    return cases


def run_check(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    policies: Optional[Sequence[str]] = None,
    accesses: Optional[int] = None,
    force_violation: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> CheckReport:
    """Run the fuzz grid; the engine behind ``nucache-repro check``.

    ``force_violation`` corrupts the kernel partway through the first
    case to prove the pipeline end-to-end (detection, shrinking,
    reproducer emission) — it is expected to produce exactly one
    failure.
    """
    report = CheckReport()
    for number, case in enumerate(
        default_grid(quick=quick, seed=seed, policies=policies, accesses=accesses)
    ):
        corrupt_after = None
        if force_violation and number == 0:
            corrupt_after = min(64, max(0, case.accesses // 2))
        failure = run_case(case, corrupt_after=corrupt_after)
        report.cases += 1
        if progress is not None:
            status = "DIVERGED" if failure else "ok"
            progress(f"  [{report.cases:3d}] {case.describe():<48s} {status}")
        if failure is not None:
            report.failures.append(failure)
    return report
