"""Runtime invariant sanitizer for the optimized cache structures.

PR 4 traded the readable object-per-line cache model for slot arrays and
inlined hot paths; the price is that a bookkeeping bug no longer crashes
loudly — it silently skews hit rates.  This module makes the structural
invariants the paper (and DESIGN.md) state *checkable at runtime*:

* :class:`~repro.cache.set_.CacheSet` slot-array consistency — the
  tag index, validity flags, free list and recency stack must describe
  the same set of lines;
* NUcache organization — MainWays and DeliWays are disjoint, the
  DeliWays are a strict FIFO (retention sequence numbers must be
  increasing), per-line candidate-slot annotations match the
  controller's table, and the retention conservation law
  ``retentions == promotions + deli_evictions + resident`` holds;
* Next-Use profiling — eviction counters and event delta vectors are
  non-negative and never exceed the observed eviction mass;
* statistics conservation — per-core counters sum to the totals,
  ``fills <= misses``, ``evictions <= fills``, ``writebacks <=
  evictions``, and occupancy never exceeds net fills.

:func:`check_llc` dispatches on the organization and returns the
violations as strings (empty list == healthy); :func:`assert_llc` raises
a structured :class:`~repro.common.errors.InvariantViolation` carrying a
serialized snapshot of the offending sets for postmortem.

Cadence is controlled by the ``REPRO_CHECK`` environment variable
(``off``/``epoch``/``access``), threaded through
:meth:`repro.sim.engine.MulticoreEngine.run` via :func:`engine_checker`
— pool workers inherit the variable through the environment, so checked
mode works transparently under ``run --jobs N``.  See docs/checking.md.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Sequence

from repro.cache.cache import SetAssociativeCache
from repro.cache.set_ import CacheSet
from repro.common.errors import InvariantViolation, ReproError
from repro.common.stats import SharedCacheStats
from repro.nucache.nextuse import EpochProfile, NextUseProfiler
from repro.nucache.organization import NUCache
from repro.nucache.partitioned import PartitionedNUCache

#: Environment variable selecting the check cadence.
CHECK_ENV_VAR = "REPRO_CHECK"

#: No checking (the default; the engine fast loop stays untouched).
MODE_OFF = "off"
#: Check at NUcache epoch boundaries (or every
#: :data:`CHECK_INTERVAL_STEPS` steps for epoch-less organizations) and
#: once at the end of the run.
MODE_EPOCH = "epoch"
#: Check after every engine step (slow; for debugging and the fuzzer).
MODE_ACCESS = "access"

#: All recognized ``REPRO_CHECK`` values.
MODES = (MODE_OFF, MODE_EPOCH, MODE_ACCESS)

#: Fallback cadence (engine steps) for ``epoch`` mode when the LLC has
#: no epoch controller (plain policies, UCP, PIPP).
CHECK_INTERVAL_STEPS = 4096

#: Ceiling on how many sets a violation snapshot serializes.
SNAPSHOT_MAX_SETS = 8


def current_mode() -> str:
    """The check mode selected by ``$REPRO_CHECK`` (default ``off``)."""
    raw = os.environ.get(CHECK_ENV_VAR, MODE_OFF).strip().lower() or MODE_OFF
    if raw not in MODES:
        raise ReproError(
            f"{CHECK_ENV_VAR} must be one of {', '.join(MODES)}, got {raw!r}"
        )
    return raw


# ----------------------------------------------------------------------
# Statistics conservation
# ----------------------------------------------------------------------


def check_stats(stats: SharedCacheStats, label: str = "llc") -> List[str]:
    """Conservation laws of a :class:`SharedCacheStats` bundle."""
    violations: List[str] = []
    total = stats.total
    for name in ("hits", "misses", "evictions", "writebacks"):
        if getattr(total, name) < 0:
            violations.append(f"{label}: total {name} is negative")
    per_core_hits = sum(core.hits for core in stats.per_core.values())
    per_core_misses = sum(core.misses for core in stats.per_core.values())
    for core_id, core in stats.per_core.items():
        if core.hits < 0 or core.misses < 0:
            violations.append(f"{label}: core {core_id} counters negative")
    if per_core_hits != total.hits:
        violations.append(
            f"{label}: per-core hits ({per_core_hits}) != total hits "
            f"({total.hits})"
        )
    if per_core_misses != total.misses:
        violations.append(
            f"{label}: per-core misses ({per_core_misses}) != total misses "
            f"({total.misses})"
        )
    if total.writebacks > total.evictions:
        violations.append(
            f"{label}: writebacks ({total.writebacks}) exceed evictions "
            f"({total.evictions})"
        )
    return violations


# ----------------------------------------------------------------------
# Slot-array CacheSet / SetAssociativeCache
# ----------------------------------------------------------------------


def check_cache_set(cache_set: CacheSet, label: str = "set") -> List[str]:
    """Slot-array consistency of one :class:`CacheSet`."""
    violations: List[str] = []
    ways = cache_set._ways
    valid = cache_set._valid
    tags = cache_set._tags
    tag_to_way = cache_set._tag_to_way
    valid_count = sum(1 for flag in valid if flag)
    if len(tag_to_way) != valid_count:
        violations.append(
            f"{label}: tag index has {len(tag_to_way)} entries but "
            f"{valid_count} valid ways"
        )
    seen_ways = set()
    for tag, way in tag_to_way.items():
        if not 0 <= way < ways:
            violations.append(f"{label}: tag {tag:#x} maps to way {way} out of range")
            continue
        if way in seen_ways:
            violations.append(f"{label}: way {way} indexed by multiple tags")
        seen_ways.add(way)
        if not valid[way]:
            violations.append(f"{label}: tag {tag:#x} maps to invalid way {way}")
        elif tags[way] != tag:
            violations.append(
                f"{label}: way {way} holds tag {tags[way]:#x} but is indexed "
                f"as {tag:#x}"
            )
    free = cache_set._free_ways
    if len(set(free)) != len(free):
        violations.append(f"{label}: free-way list has duplicates ({free})")
    expected_free = {way for way in range(ways) if not valid[way]}
    if set(free) != expected_free:
        violations.append(
            f"{label}: free ways {sorted(free)} != invalid ways "
            f"{sorted(expected_free)}"
        )
    stack = getattr(cache_set.policy, "stack", None)
    if stack is not None and sorted(stack) != list(range(ways)):
        violations.append(
            f"{label}: recency stack {stack} is not a permutation of "
            f"0..{ways - 1}"
        )
    return violations


def check_set_cache(cache: SetAssociativeCache) -> List[str]:
    """Full sanitation of a policy-parameterized cache + its stats."""
    violations: List[str] = []
    for index, cache_set in enumerate(cache.sets):
        violations.extend(check_cache_set(cache_set, f"set {index}"))
    violations.extend(check_stats(cache.stats, cache.name))
    total = cache.stats.total
    if cache.fills > total.misses:
        violations.append(
            f"{cache.name}: fills ({cache.fills}) exceed misses ({total.misses})"
        )
    if total.evictions > cache.fills:
        violations.append(
            f"{cache.name}: evictions ({total.evictions}) exceed fills "
            f"({cache.fills})"
        )
    occupancy = cache.occupancy
    if occupancy > cache.geometry.num_lines:
        violations.append(
            f"{cache.name}: occupancy ({occupancy}) exceeds capacity "
            f"({cache.geometry.num_lines})"
        )
    if occupancy > cache.fills - total.evictions:
        violations.append(
            f"{cache.name}: occupancy ({occupancy}) exceeds net fills "
            f"({cache.fills} - {total.evictions})"
        )
    return violations


# ----------------------------------------------------------------------
# NUcache organization
# ----------------------------------------------------------------------


def check_nucache(llc: NUCache) -> List[str]:
    """MainWay/DeliWay structure, FIFO order and retention accounting."""
    violations: List[str] = []
    controller = llc.controller
    fifo = llc.config.deli_replacement == "fifo"
    resident_deli = 0
    for index, nu_set in enumerate(llc.sets):
        label = f"set {index}"
        lines = nu_set.main_lines
        tag_to_way = nu_set.main_tag_to_way
        valid_ways = {way for way, line in enumerate(lines) if line.valid}
        if len(tag_to_way) != len(valid_ways):
            violations.append(
                f"{label}: tag index has {len(tag_to_way)} entries but "
                f"{len(valid_ways)} valid MainWays"
            )
        seen_ways = set()
        for tag, way in tag_to_way.items():
            if not 0 <= way < llc.main_ways:
                violations.append(
                    f"{label}: tag {tag:#x} maps to MainWay {way} out of range"
                )
                continue
            if way in seen_ways:
                violations.append(f"{label}: MainWay {way} indexed by multiple tags")
            seen_ways.add(way)
            if not lines[way].valid:
                violations.append(
                    f"{label}: tag {tag:#x} maps to invalid MainWay {way}"
                )
            elif lines[way].tag != tag:
                violations.append(
                    f"{label}: MainWay {way} holds tag {lines[way].tag:#x} but "
                    f"is indexed as {tag:#x}"
                )
        stack = nu_set.main_policy.stack
        if sorted(stack) != list(range(llc.main_ways)):
            violations.append(
                f"{label}: MainWay LRU stack {stack} is not a permutation of "
                f"0..{llc.main_ways - 1}"
            )
        free = nu_set.free_ways
        if len(set(free)) != len(free):
            violations.append(f"{label}: free-way list has duplicates ({free})")
        expected_free = set(range(llc.main_ways)) - valid_ways
        if set(free) != expected_free:
            violations.append(
                f"{label}: free MainWays {sorted(free)} != invalid MainWays "
                f"{sorted(expected_free)}"
            )
        deli = nu_set.deli
        resident_deli += len(deli)
        if len(deli) > llc.deli_ways:
            violations.append(
                f"{label}: DeliWays hold {len(deli)} lines, capacity is "
                f"{llc.deli_ways}"
            )
        overlap = tag_to_way.keys() & deli.keys()
        if overlap:
            shown = ", ".join(f"{tag:#x}" for tag in sorted(overlap)[:4])
            violations.append(
                f"{label}: tags resident in both MainWays and DeliWays ({shown})"
            )
        if fifo:
            seqs = [entry.seq for entry in deli.values()]
            if any(later <= earlier for earlier, later in zip(seqs, seqs[1:])):
                violations.append(
                    f"{label}: DeliWay FIFO order broken (retention sequence "
                    f"numbers {seqs} are not strictly increasing)"
                )
        for way in valid_ways:
            line = lines[way]
            if line.pc_slot != controller.slot_of(line.core, line.pc):
                violations.append(
                    f"{label}: MainWay {way} slot annotation {line.pc_slot} is "
                    f"stale (table says "
                    f"{controller.slot_of(line.core, line.pc)})"
                )
        for tag, entry in deli.items():
            if entry.pc_slot != controller.slot_of(entry.core, entry.pc):
                violations.append(
                    f"{label}: DeliWay tag {tag:#x} slot annotation "
                    f"{entry.pc_slot} is stale (table says "
                    f"{controller.slot_of(entry.core, entry.pc)})"
                )
    violations.extend(check_stats(llc.stats, llc.name))
    total = llc.stats.total
    if llc.promotions > llc.deli_hits:
        violations.append(
            f"{llc.name}: promotions ({llc.promotions}) exceed deli hits "
            f"({llc.deli_hits})"
        )
    if fifo and llc.promotions != llc.deli_hits:
        violations.append(
            f"{llc.name}: under FIFO DeliWays every deli hit promotes, but "
            f"promotions ({llc.promotions}) != deli hits ({llc.deli_hits})"
        )
    if llc.deli_evictions > llc.retentions:
        violations.append(
            f"{llc.name}: deli evictions ({llc.deli_evictions}) exceed "
            f"retentions ({llc.retentions})"
        )
    if llc.retentions != llc.promotions + llc.deli_evictions + resident_deli:
        violations.append(
            f"{llc.name}: retention conservation broken — retentions "
            f"({llc.retentions}) != promotions ({llc.promotions}) + deli "
            f"evictions ({llc.deli_evictions}) + resident ({resident_deli})"
        )
    if total.evictions > total.misses:
        violations.append(
            f"{llc.name}: evictions ({total.evictions}) exceed misses "
            f"({total.misses})"
        )
    if llc.retentions > total.misses:
        violations.append(
            f"{llc.name}: retentions ({llc.retentions}) exceed misses "
            f"({total.misses})"
        )
    if isinstance(llc, PartitionedNUCache):
        # The initial allocation under-commits when main_ways % num_cores
        # != 0 (the remainder is unmanaged slack until the first UMON
        # repartition), so only over-commitment is a violation.
        if sum(llc.allocation) > llc.main_ways:
            violations.append(
                f"{llc.name}: MainWay quotas {llc.allocation} over-commit "
                f"the {llc.main_ways} MainWays"
            )
        if any(quota < 1 for quota in llc.allocation):
            violations.append(
                f"{llc.name}: MainWay quotas {llc.allocation} starve a core"
            )
    return violations


# ----------------------------------------------------------------------
# Next-Use profiler and controller
# ----------------------------------------------------------------------


def check_profiler(
    profiler: NextUseProfiler, label: str = "profiler"
) -> List[str]:
    """Non-negativity and mass conservation of the live Next-Use monitor."""
    violations: List[str] = []
    evictions = profiler._evictions
    num_slots = profiler._num_slots
    if len(evictions) != num_slots:
        violations.append(
            f"{label}: {len(evictions)} eviction counters for {num_slots} slots"
        )
    if any(count < 0 for count in evictions):
        violations.append(f"{label}: negative eviction counter ({evictions})")
    if len(profiler._history) > profiler.history_capacity:
        violations.append(
            f"{label}: history holds {len(profiler._history)} entries, "
            f"capacity is {profiler.history_capacity}"
        )
    for block_addr, (pc_slot, snapshot) in profiler._history.items():
        if not 0 <= pc_slot < num_slots:
            violations.append(
                f"{label}: history entry {block_addr:#x} has slot {pc_slot} "
                f"out of range"
            )
        if len(snapshot) != len(evictions):
            violations.append(
                f"{label}: history entry {block_addr:#x} snapshot length "
                f"{len(snapshot)} != {len(evictions)} slots"
            )
        elif any(past > now for past, now in zip(snapshot, evictions)):
            violations.append(
                f"{label}: history entry {block_addr:#x} snapshot exceeds "
                f"current eviction counters (mass not conserved)"
            )
    for event in profiler._events:
        if not 0 <= event.pc_slot < num_slots:
            violations.append(
                f"{label}: event slot {event.pc_slot} out of range"
            )
        if len(event.deltas) != num_slots:
            violations.append(
                f"{label}: event delta vector has {len(event.deltas)} entries "
                f"for {num_slots} slots"
            )
            continue
        if any(delta < 0 for delta in event.deltas):
            violations.append(
                f"{label}: negative Next-Use delta ({event.deltas})"
            )
        elif any(delta > now for delta, now in zip(event.deltas, evictions)):
            violations.append(
                f"{label}: event deltas {event.deltas} exceed observed "
                f"evictions {tuple(evictions)}"
            )
    return violations


def check_profile(profile: EpochProfile, label: str = "profile") -> List[str]:
    """Non-negativity / total-mass conservation of a frozen epoch profile."""
    violations: List[str] = []
    if any(count < 0 for count in profile.evictions_per_slot):
        violations.append(
            f"{label}: negative eviction total ({profile.evictions_per_slot})"
        )
    if profile.num_events == 0:
        return violations
    if int(profile.event_deltas.min(initial=0)) < 0:
        violations.append(f"{label}: negative event delta in the profile")
    if profile.num_slots:
        pc_min = int(profile.event_pc.min())
        pc_max = int(profile.event_pc.max())
        if pc_min < 0 or pc_max >= profile.num_slots:
            violations.append(
                f"{label}: event slot range [{pc_min}, {pc_max}] outside "
                f"0..{profile.num_slots - 1}"
            )
        per_slot_max = profile.event_deltas.max(axis=0)
        for slot, (delta, total) in enumerate(
            zip(per_slot_max.tolist(), profile.evictions_per_slot)
        ):
            if delta > total:
                violations.append(
                    f"{label}: slot {slot} event delta {delta} exceeds its "
                    f"epoch eviction total {total} (mass not conserved)"
                )
    return violations


def check_controller(controller) -> List[str]:
    """Candidate-table / selection / epoch-accounting consistency."""
    violations: List[str] = []
    slot_keys = controller._slot_keys
    for key, slot in controller._slot_of.items():
        if not 0 <= slot < len(slot_keys):
            violations.append(
                f"controller: key {key} maps to slot {slot} out of range"
            )
        elif slot_keys[slot] != key:
            violations.append(
                f"controller: slot {slot} lists {slot_keys[slot]} but key "
                f"{key} maps to it"
            )
    slots = list(controller._slot_of.values())
    if len(set(slots)) != len(slots):
        violations.append("controller: two candidate keys share one slot")
    table_slots = set(slots)
    for slot in controller._selected:
        if slot not in table_slots:
            violations.append(
                f"controller: selected slot {slot} has no candidate key"
            )
    if controller._misses_this_epoch != sum(controller._miss_counts.values()):
        violations.append(
            f"controller: epoch miss total ({controller._misses_this_epoch}) "
            f"!= per-PC sum ({sum(controller._miss_counts.values())})"
        )
    violations.extend(check_profiler(controller.profiler))
    if controller.last_profile is not None:
        violations.extend(check_profile(controller.last_profile, "last profile"))
    return violations


# ----------------------------------------------------------------------
# Dispatch, snapshots, raising
# ----------------------------------------------------------------------


def _check_stack_set(stack_set, ways: int, label: str) -> List[str]:
    """Structure checks shared by the UCP/PIPP set layouts.

    Their sets keep a recency stack of *valid ways only* plus the same
    tag index / free list discipline as everything else.
    """
    violations: List[str] = []
    lines = stack_set.lines
    valid_ways = {way for way, line in enumerate(lines) if line.valid}
    for tag, way in stack_set.tag_to_way.items():
        if not 0 <= way < ways or not lines[way].valid or lines[way].tag != tag:
            violations.append(f"{label}: tag {tag:#x} badly indexed at way {way}")
    if len(stack_set.tag_to_way) != len(valid_ways):
        violations.append(
            f"{label}: tag index has {len(stack_set.tag_to_way)} entries but "
            f"{len(valid_ways)} valid ways"
        )
    if sorted(stack_set.stack) != sorted(valid_ways):
        violations.append(
            f"{label}: stack {stack_set.stack} is not a permutation of the "
            f"valid ways {sorted(valid_ways)}"
        )
    expected_free = set(range(ways)) - valid_ways
    if set(stack_set.free_ways) != expected_free:
        violations.append(
            f"{label}: free ways {sorted(stack_set.free_ways)} != invalid "
            f"ways {sorted(expected_free)}"
        )
    return violations


def check_llc(llc) -> List[str]:
    """Every applicable invariant violation of a shared LLC (empty == ok)."""
    if isinstance(llc, NUCache):
        return check_nucache(llc) + check_controller(llc.controller)
    if isinstance(llc, SetAssociativeCache):
        return check_set_cache(llc)
    violations: List[str] = []
    sets = getattr(llc, "sets", None)
    if sets and hasattr(sets[0], "stack") and hasattr(sets[0], "tag_to_way"):
        for index, stack_set in enumerate(sets):
            violations.extend(
                _check_stack_set(stack_set, llc.geometry.ways, f"set {index}")
            )
    violations.extend(check_stats(llc.stats, llc.name))
    return violations


def _sets_mentioned(violations: Sequence[str]) -> List[int]:
    """Set indices named by violation strings (for bounded snapshots)."""
    indices: List[int] = []
    for violation in violations:
        match = re.match(r"set (\d+):", violation)
        if match:
            index = int(match.group(1))
            if index not in indices:
                indices.append(index)
    return indices[:SNAPSHOT_MAX_SETS]


def snapshot_llc(llc, set_indices: Optional[Sequence[int]] = None) -> Dict:
    """JSON-serializable state snapshot of an LLC for postmortems.

    Serializes the global counters plus the full contents of the chosen
    sets (all sets up to :data:`SNAPSHOT_MAX_SETS` when none are given),
    so an :class:`InvariantViolation` carries enough context to diagnose
    without re-running.
    """
    snapshot: Dict = {"policy": llc.name, "counters": llc.snapshot_counters()}
    sets = getattr(llc, "sets", None)
    if not sets:
        return snapshot
    if set_indices is None:
        set_indices = range(min(len(sets), SNAPSHOT_MAX_SETS))
    per_set: Dict[str, Dict] = {}
    for index in set_indices:
        if not 0 <= index < len(sets):
            continue
        per_set[str(index)] = _snapshot_set(llc, sets[index])
    snapshot["sets"] = per_set
    if isinstance(llc, NUCache):
        snapshot["selected_slots"] = sorted(llc.controller.selected_slots)
        snapshot["candidates"] = len(llc.controller._slot_of)
        snapshot["deli_ways"] = llc.deli_ways
    if isinstance(llc, PartitionedNUCache):
        snapshot["allocation"] = list(llc.allocation)
    return snapshot


def _snapshot_set(llc, one_set) -> Dict:
    """Serialize one set of any supported organization."""
    if isinstance(one_set, CacheSet):
        return {
            "tags": [
                tag if valid else None
                for tag, valid in zip(one_set._tags, one_set._valid)
            ],
            "dirty": list(one_set._dirty),
            "free_ways": list(one_set._free_ways),
            "stack": list(getattr(one_set.policy, "stack", []) or []),
            "tag_to_way": {str(tag): way for tag, way in one_set._tag_to_way.items()},
        }
    if hasattr(one_set, "main_lines"):  # _NUcacheSet
        return {
            "main": [
                {"tag": line.tag, "dirty": line.dirty, "core": line.core,
                 "pc": line.pc, "pc_slot": line.pc_slot}
                if line.valid else None
                for line in one_set.main_lines
            ],
            "main_stack": list(one_set.main_policy.stack),
            "free_ways": list(one_set.free_ways),
            "deli": [
                {"tag": tag, "dirty": entry.dirty, "core": entry.core,
                 "pc": entry.pc, "pc_slot": entry.pc_slot, "seq": entry.seq}
                for tag, entry in one_set.deli.items()
            ],
        }
    return {
        "tags": [line.tag if line.valid else None for line in one_set.lines],
        "stack": list(getattr(one_set, "stack", []) or []),
        "free_ways": list(getattr(one_set, "free_ways", []) or []),
    }


def assert_llc(llc, context: str = "") -> None:
    """Run :func:`check_llc`; raise :class:`InvariantViolation` on failure."""
    violations = check_llc(llc)
    if not violations:
        return
    raise_violation(llc, violations, context)


def raise_violation(llc, violations: Sequence[str], context: str = "") -> None:
    """Raise a structured :class:`InvariantViolation` with a state snapshot."""
    head = violations[0]
    more = f" (+{len(violations) - 1} more)" if len(violations) > 1 else ""
    where = f" at {context}" if context else ""
    raise InvariantViolation(
        f"cache invariant violated{where}: {head}{more}",
        violations=violations,
        snapshot=snapshot_llc(llc, _sets_mentioned(violations) or None),
        context=context,
    )


# ----------------------------------------------------------------------
# Engine cadence hook
# ----------------------------------------------------------------------


class EngineChecker:
    """Runs the sanitizer over an engine run's LLC at the configured cadence.

    ``access`` mode checks after every engine step; ``epoch`` mode checks
    at NUcache selection-epoch boundaries (falling back to every
    :data:`CHECK_INTERVAL_STEPS` steps for epoch-less organizations) and
    once more when the run finishes.  Checks are strictly read-only, so
    a checked run's simulated numbers are byte-identical to an unchecked
    one — the only difference is that corruption raises
    :class:`InvariantViolation` instead of skewing results.
    """

    def __init__(self, llc, mode: str) -> None:
        self.llc = llc
        self.mode = mode
        self.checks_run = 0
        controller = getattr(llc, "controller", None)
        self._controller = controller
        self._epochs_seen = (
            0 if controller is None else controller.epochs_completed
        )

    def _check(self, context: str) -> None:
        self.checks_run += 1
        violations = check_llc(self.llc)
        if violations:
            raise_violation(self.llc, violations, context)

    def after_step(self, steps: int) -> None:
        """Observe one engine step; check when the cadence says so."""
        if self.mode == MODE_ACCESS:
            self._check(f"engine step {steps}")
            return
        controller = self._controller
        if controller is not None:
            if controller.epochs_completed != self._epochs_seen:
                self._epochs_seen = controller.epochs_completed
                self._check(f"epoch {self._epochs_seen} boundary (step {steps})")
        elif steps % CHECK_INTERVAL_STEPS == 0:
            self._check(f"engine step {steps}")

    def finish(self, steps: int) -> None:
        """Terminal check when the engine loop ends."""
        self._check(f"end of run (step {steps})")


def engine_checker(llc) -> Optional[EngineChecker]:
    """An :class:`EngineChecker` per ``$REPRO_CHECK``, or ``None`` when off."""
    mode = current_mode()
    if mode == MODE_OFF:
        return None
    return EngineChecker(llc, mode)
