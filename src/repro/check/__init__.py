"""Self-checking layer: invariant sanitizer, differential oracle, fuzzer.

Three lines of defense against silent state corruption in the optimized
cache kernel (see docs/checking.md):

* :mod:`repro.check.invariants` — structural invariant checkers over
  every shipped LLC organization, wired into the engine at a cadence
  chosen by the ``REPRO_CHECK`` environment variable;
* :mod:`repro.check.oracle` — deliberately slow dict-based reference
  models run in lockstep against the optimized kernel, diffing hit/miss
  outcomes, victim choice and set contents after every access;
* :mod:`repro.check.fuzz` — a deterministic fuzz harness (also the
  ``nucache-repro check`` CLI subcommand) driving seeded random streams
  across policy × geometry × DeliWay-split grids, shrinking failures to
  minimal reproducers.
"""

from repro.check.invariants import (
    CHECK_ENV_VAR,
    MODE_ACCESS,
    MODE_EPOCH,
    MODE_OFF,
    MODES,
    EngineChecker,
    assert_llc,
    check_llc,
    current_mode,
    engine_checker,
    snapshot_llc,
)
from repro.check.oracle import DifferentialHarness, make_reference
from repro.check.fuzz import FuzzCase, default_grid, run_case, run_check

__all__ = [
    "CHECK_ENV_VAR",
    "MODES",
    "MODE_OFF",
    "MODE_EPOCH",
    "MODE_ACCESS",
    "EngineChecker",
    "assert_llc",
    "check_llc",
    "current_mode",
    "engine_checker",
    "snapshot_llc",
    "DifferentialHarness",
    "make_reference",
    "FuzzCase",
    "default_grid",
    "run_case",
    "run_check",
]
