"""Differential reference-model oracle for the optimized cache kernel.

The optimized kernel (slot arrays, inlined LRU stack surgery, inlined
stats — PR 4) is fast precisely because it collapses abstraction
boundaries, which is where silent corruption hides.  This module keeps
deliberately *slow* reference models around — plain dicts and lists,
one obvious operation per step — and runs them in lockstep with the
kernel, diffing hit/miss outcome, set contents (which encodes victim
choice: a wrong victim leaves a wrong resident set), recency order and
global counters after every access.  Any divergence raises a structured
:class:`~repro.common.errors.InvariantViolation` carrying both views.

Three kinds of references, chosen by :func:`make_reference`:

* :class:`RefLRUCache` — a fully independent LRU model (MRU-ordered
  lists, no shared code with the kernel at all);
* :class:`RefNUCache` / :class:`RefPartitionedNUCache` — independent
  NUcache data-path models (MainWay list + DeliWay FIFO list).  The
  *selection* decision is shared state by design: the harness captures
  the controller's selected (core, PC) set before each kernel access
  and hands it to the reference, so the data paths are compared while
  selection remains single-sourced;
* :class:`RefPolicyCache` — a dict-based mirror of the pre-optimization
  access algorithm for the remaining policy families (DIP/SRRIP/SHiP/
  SDBP/...).  Replacement decisions come from an independent *twin*
  policy instance built by the same seeded factory, driven strictly
  through the documented ``touch``/``should_bypass``/``victim``/
  ``insert`` contract — exactly the code path the slot-array rework
  replaced, which is the regression this oracle exists to catch.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.basic import (
    fifo_factory,
    lip_factory,
    nru_factory,
    plru_factory,
    random_factory,
)
from repro.cache.replacement.deadblock import sdbp_factory
from repro.cache.replacement.dip import bip_factory, dip_factory, tadip_factory
from repro.cache.replacement.rrip import brrip_factory, drrip_factory, srrip_factory
from repro.cache.replacement.ship import ship_factory
from repro.common.config import SystemConfig
from repro.common.errors import InvariantViolation, ReproError
from repro.check.invariants import check_llc, snapshot_llc
from repro.nucache.organization import NUCache
from repro.nucache.partitioned import PartitionedNUCache

#: A reference line: ``(tag, dirty)`` — enough to encode victim choice.
RefLine = Tuple[int, bool]


class RefLRUCache:
    """Fully independent LRU reference (shares no code with the kernel).

    Each set is an MRU-first list of ways plus a ``tag -> way`` dict and
    a free list consumed lowest-way-first, mirroring how the kernel
    assigns ways — so both per-way contents *and* recency order are
    directly comparable.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        self.ways = ways
        self.order: List[List[int]] = [[] for _ in range(num_sets)]
        self.tag_to_way: List[Dict[int, int]] = [{} for _ in range(num_sets)]
        self.contents: List[Dict[int, RefLine]] = [{} for _ in range(num_sets)]
        self.free: List[List[int]] = [
            list(range(ways - 1, -1, -1)) for _ in range(num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.writebacks = 0

    def access(self, set_index: int, tag: int, core: int, pc: int,
               is_write: bool) -> bool:
        """Service one access; returns True on hit."""
        index = self.tag_to_way[set_index]
        order = self.order[set_index]
        contents = self.contents[set_index]
        way = index.get(tag)
        if way is not None:
            order.remove(way)
            order.insert(0, way)
            if is_write:
                contents[way] = (tag, True)
            self.hits += 1
            return True
        self.misses += 1
        self.fills += 1
        free = self.free[set_index]
        if free:
            way = free.pop()
        else:
            way = order.pop()
            victim_tag, victim_dirty = contents.pop(way)
            del index[victim_tag]
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
        order.insert(0, way)
        contents[way] = (tag, is_write)
        index[tag] = way
        return False


class RefPolicyCache:
    """Dict-based mirror of the pre-optimization access algorithm.

    Runs a *twin* policy instance (same factory, same per-set seeds)
    through the documented policy contract: hit → ``touch``; miss →
    ``should_bypass`` → free way or ``victim`` → ``insert``.  Because
    the twin sees the identical decision sequence, its state evolves
    identically to the kernel's — unless the kernel's inlined fast
    paths diverge from the contract, which is the bug class under test.
    """

    def __init__(self, num_sets: int, ways: int, policy_factory) -> None:
        self.ways = ways
        self.policies = [policy_factory(ways, index) for index in range(num_sets)]
        self.contents: List[Dict[int, Tuple[int, bool]]] = [
            {} for _ in range(num_sets)
        ]  # way -> (tag, dirty)
        self.tag_to_way: List[Dict[int, int]] = [{} for _ in range(num_sets)]
        self.free: List[List[int]] = [
            list(range(ways - 1, -1, -1)) for _ in range(num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.writebacks = 0

    def access(self, set_index: int, tag: int, core: int, pc: int,
               is_write: bool) -> bool:
        """Service one access; returns True on hit."""
        policy = self.policies[set_index]
        index = self.tag_to_way[set_index]
        contents = self.contents[set_index]
        way = index.get(tag)
        if way is not None:
            policy.touch(way, core)
            if is_write:
                contents[way] = (tag, True)
            self.hits += 1
            return True
        self.misses += 1
        if policy.should_bypass(core, pc):
            return False
        self.fills += 1
        free = self.free[set_index]
        if free:
            way = free.pop()
        else:
            way = policy.victim()
            victim_tag, victim_dirty = contents.pop(way)
            del index[victim_tag]
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
        policy.insert(way, core, pc)
        contents[way] = (tag, is_write)
        index[tag] = way
        return False


class RefNUCache:
    """Independent NUcache data-path reference.

    Each set is a MainWay list (dicts, MRU first) plus a DeliWay list
    (oldest first).  Selection is injected per access as a
    ``selected(core, pc) -> bool`` callable captured from the kernel's
    controller, so this model checks the *way organization* — fills at
    MRU, LRU victims, retention of selected victims, FIFO overflow,
    promotion on DeliWay hit — independently of the selection machinery.
    """

    def __init__(self, num_sets: int, main_ways: int, deli_ways: int,
                 deli_replacement: str = "fifo") -> None:
        self.main_ways = main_ways
        self.deli_ways = deli_ways
        self.deli_replacement = deli_replacement
        self.main: List[List[Dict]] = [[] for _ in range(num_sets)]
        self.deli: List[List[Dict]] = [[] for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.deli_hits = 0
        self.retentions = 0
        self.promotions = 0
        self.deli_evictions = 0

    def access(self, set_index: int, tag: int, core: int, pc: int,
               is_write: bool, selected: Callable[[int, int], bool]) -> bool:
        """Service one access; returns True on hit (MainWay or DeliWay)."""
        main = self.main[set_index]
        for position, entry in enumerate(main):
            if entry["tag"] == tag:
                if position:
                    del main[position]
                    main.insert(0, entry)
                if is_write:
                    entry["dirty"] = True
                self.hits += 1
                return True
        deli = self.deli[set_index]
        for position, entry in enumerate(deli):
            if entry["tag"] == tag:
                self.deli_hits += 1
                self.hits += 1
                if is_write:
                    entry["dirty"] = True
                del deli[position]
                if self.deli_replacement == "lru":
                    deli.append(entry)  # refresh in place (ablation)
                else:
                    self.promotions += 1
                    self._fill_main(set_index, entry, selected)
                return True
        self.misses += 1
        entry = {"tag": tag, "core": core, "pc": pc, "dirty": is_write}
        self._fill_main(set_index, entry, selected)
        return False

    def _fill_main(self, set_index: int, entry: Dict,
                   selected: Callable[[int, int], bool]) -> None:
        """Install at MainWay MRU, retaining or evicting the LRU victim."""
        main = self.main[set_index]
        if len(main) >= self.main_ways:
            victim = self._choose_victim(set_index, entry["core"])
            main.remove(victim)
            if self.deli_ways > 0 and selected(victim["core"], victim["pc"]):
                victim["seq"] = self.retentions
                self.retentions += 1
                deli = self.deli[set_index]
                deli.append(victim)
                if len(deli) > self.deli_ways:
                    oldest = deli.pop(0)
                    self.deli_evictions += 1
                    self._count_eviction(oldest["dirty"])
            else:
                self._count_eviction(victim["dirty"])
        main.insert(0, entry)

    def _choose_victim(self, set_index: int, requester: int) -> Dict:
        """Victim for a full set: global LRU (the MainWays run plain LRU)."""
        return self.main[set_index][-1]

    def _count_eviction(self, dirty: bool) -> None:
        self.evictions += 1
        if dirty:
            self.writebacks += 1


class RefPartitionedNUCache(RefNUCache):
    """NUcache reference with UCP-style MainWay quota victim choice.

    The harness copies the kernel's current ``allocation`` (per-core
    MainWay quotas) into :attr:`allocation` after each kernel access
    (repartitioning happens at the *start* of the kernel's access, so
    the post-access value is what the fill used).  Victim choice then
    mirrors ``PartitionedNUCache._choose_victim``: the LRU line of an
    over-quota core, else the requester's own LRU line, else global LRU.
    """

    def __init__(self, num_sets: int, main_ways: int, deli_ways: int,
                 num_cores: int, deli_replacement: str = "fifo") -> None:
        super().__init__(num_sets, main_ways, deli_ways, deli_replacement)
        self.num_cores = num_cores
        self.allocation: List[int] = []

    def _choose_victim(self, set_index: int, requester: int) -> Dict:
        main = self.main[set_index]
        counts: Dict[int, int] = {}
        for entry in main:
            counts[entry["core"]] = counts.get(entry["core"], 0) + 1
        allocation = self.allocation
        for entry in reversed(main):  # LRU end first
            core = entry["core"]
            if core == requester or not 0 <= core < len(allocation):
                continue
            if counts.get(core, 0) > allocation[core]:
                return entry
        for entry in reversed(main):
            if entry["core"] == requester:
                return entry
        return main[-1]


#: Twin-policy factories for :class:`RefPolicyCache`, by organization
#: name: ``name -> (seed, num_cores) -> PolicyFactory``.
_TWIN_FACTORIES: Dict[str, Callable] = {
    "fifo": lambda seed, cores: fifo_factory(),
    "nru": lambda seed, cores: nru_factory(),
    "plru": lambda seed, cores: plru_factory(),
    "lip": lambda seed, cores: lip_factory(),
    "srrip": lambda seed, cores: srrip_factory(),
    "random": lambda seed, cores: random_factory(seed),
    "bip": lambda seed, cores: bip_factory(seed),
    "dip": lambda seed, cores: dip_factory(seed),
    "brrip": lambda seed, cores: brrip_factory(seed),
    "drrip": lambda seed, cores: drrip_factory(seed),
    "tadip": lambda seed, cores: tadip_factory(cores, seed),
    "ship": lambda seed, cores: ship_factory(bypass=False),
    "ship-bypass": lambda seed, cores: ship_factory(bypass=True),
    "sdbp": lambda seed, cores: sdbp_factory(),
}


def make_reference(policy: str, config: SystemConfig, seed: int = 0):
    """Build the reference model matching ``make_llc(policy, config, seed)``.

    Raises :class:`ReproError` for organizations with no reference model
    (UCP and PIPP are structural baselines checked by the sanitizer only).
    """
    geometry = config.llc
    if policy == "lru":
        return RefLRUCache(geometry.num_sets, geometry.ways)
    if policy == "nucache":
        return RefNUCache(
            geometry.num_sets,
            geometry.ways - config.nucache.deli_ways,
            config.nucache.deli_ways,
            config.nucache.deli_replacement,
        )
    if policy == "nucache-ucp":
        return RefPartitionedNUCache(
            geometry.num_sets,
            geometry.ways - config.nucache.deli_ways,
            config.nucache.deli_ways,
            config.num_cores,
            config.nucache.deli_replacement,
        )
    builder = _TWIN_FACTORIES.get(policy)
    if builder is None:
        raise ReproError(f"no differential reference model for policy {policy!r}")
    return RefPolicyCache(
        geometry.num_sets, geometry.ways, builder(seed, config.num_cores)
    )


class DifferentialHarness:
    """Drives a kernel LLC and its reference in lockstep, diffing state.

    Call :meth:`access` instead of ``llc.access``; it performs the
    kernel access, mirrors it into the reference, and compares hit/miss
    outcome, the accessed set's full contents (per-way or in recency/
    FIFO order), and the global counters.  With ``sanitize=True`` (the
    default) the structural sanitizer also runs over the kernel each
    access, so the fuzzer catches corruption even when both models
    accidentally agree.
    """

    def __init__(self, kernel, reference, sanitize: bool = True) -> None:
        self.kernel = kernel
        self.reference = reference
        self.sanitize = sanitize
        self.accesses = 0
        self._is_nucache = isinstance(kernel, NUCache)
        self._is_partitioned = isinstance(kernel, PartitionedNUCache)

    def access(self, block_addr: int, core: int, pc: int, is_write: bool) -> bool:
        """One lockstep access; raises :class:`InvariantViolation` on diff."""
        kernel = self.kernel
        set_index, tag = kernel.split_address(block_addr)
        if self._is_nucache:
            # Captured *before* the kernel access: epoch rotation fires
            # at the end of the access, after the fill decided retention.
            selected = frozenset(kernel.controller.selected_keys())
        hit = kernel.access(block_addr, core, pc, is_write)
        if self._is_partitioned:
            # Read *after* the access: repartitioning fires at the start
            # of the access, so this is the allocation the fill used.
            self.reference.allocation = list(kernel.allocation)
        if self._is_nucache:
            ref_hit = self.reference.access(
                set_index, tag, core, pc, is_write,
                lambda victim_core, victim_pc: (victim_core, victim_pc) in selected,
            )
        else:
            ref_hit = self.reference.access(set_index, tag, core, pc, is_write)
        self.accesses += 1
        diffs: List[str] = []
        if hit != ref_hit:
            diffs.append(
                f"outcome diverged: kernel {'hit' if hit else 'miss'}, "
                f"reference {'hit' if ref_hit else 'miss'}"
            )
        diffs.extend(self._diff_set(set_index))
        diffs.extend(self._diff_counters())
        if self.sanitize:
            diffs.extend(check_llc(kernel))
        if diffs:
            self._raise(diffs, set_index, block_addr, core, pc, is_write)
        return hit

    # ------------------------------------------------------------------
    # State comparison
    # ------------------------------------------------------------------

    def _diff_set(self, set_index: int) -> List[str]:
        """Compare the accessed set's contents between kernel and reference."""
        if self._is_nucache:
            return self._diff_nucache_set(set_index)
        kernel_set = self.kernel.sets[set_index]
        reference = self.reference
        kernel_view = {
            way: (kernel_set._tags[way], kernel_set._dirty[way])
            for way in range(kernel_set._ways)
            if kernel_set._valid[way]
        }
        ref_view = dict(reference.contents[set_index])
        diffs: List[str] = []
        if kernel_view != ref_view:
            diffs.append(
                f"set {set_index} contents diverged: kernel {kernel_view!r} "
                f"vs reference {ref_view!r}"
            )
        if isinstance(reference, RefLRUCache):
            stack = kernel_set.policy.stack
            kernel_order = [way for way in stack if kernel_set._valid[way]]
            if kernel_order != reference.order[set_index]:
                diffs.append(
                    f"set {set_index} LRU order diverged: kernel "
                    f"{kernel_order} vs reference {reference.order[set_index]}"
                )
        return diffs

    def _diff_nucache_set(self, set_index: int) -> List[str]:
        """Compare MainWay recency order and DeliWay FIFO order."""
        nu_set = self.kernel.sets[set_index]
        lines = nu_set.main_lines
        kernel_main = [
            (lines[way].tag, lines[way].dirty)
            for way in nu_set.main_policy.stack
            if lines[way].valid
        ]
        ref_main = [
            (entry["tag"], entry["dirty"])
            for entry in self.reference.main[set_index]
        ]
        kernel_deli = [
            (tag, entry.dirty) for tag, entry in nu_set.deli.items()
        ]
        ref_deli = [
            (entry["tag"], entry["dirty"])
            for entry in self.reference.deli[set_index]
        ]
        diffs: List[str] = []
        if kernel_main != ref_main:
            diffs.append(
                f"set {set_index} MainWays diverged (MRU first): kernel "
                f"{kernel_main!r} vs reference {ref_main!r}"
            )
        if kernel_deli != ref_deli:
            diffs.append(
                f"set {set_index} DeliWays diverged (oldest first): kernel "
                f"{kernel_deli!r} vs reference {ref_deli!r}"
            )
        return diffs

    def _diff_counters(self) -> List[str]:
        """Compare global counters (implicitly diffs victim choices)."""
        kernel = self.kernel
        total = kernel.stats.total
        reference = self.reference
        pairs = [
            ("hits", total.hits, reference.hits),
            ("misses", total.misses, reference.misses),
            ("evictions", total.evictions, reference.evictions),
            ("writebacks", total.writebacks, reference.writebacks),
        ]
        if self._is_nucache:
            pairs.extend([
                ("deli_hits", kernel.deli_hits, reference.deli_hits),
                ("retentions", kernel.retentions, reference.retentions),
                ("promotions", kernel.promotions, reference.promotions),
                ("deli_evictions", kernel.deli_evictions,
                 reference.deli_evictions),
            ])
        elif isinstance(kernel, SetAssociativeCache):
            pairs.append(("fills", kernel.fills, reference.fills))
        return [
            f"counter {name} diverged: kernel {kernel_value}, reference "
            f"{reference_value}"
            for name, kernel_value, reference_value in pairs
            if kernel_value != reference_value
        ]

    def _raise(self, diffs: List[str], set_index: int, block_addr: int,
               core: int, pc: int, is_write: bool) -> None:
        """Raise an :class:`InvariantViolation` with both state views."""
        snapshot = snapshot_llc(self.kernel, [set_index])
        snapshot["reference"] = self._reference_snapshot(set_index)
        snapshot["access"] = {
            "index": self.accesses - 1,
            "block_addr": block_addr,
            "core": core,
            "pc": pc,
            "is_write": is_write,
            "set": set_index,
        }
        context = f"lockstep access {self.accesses - 1}"
        head = diffs[0]
        more = f" (+{len(diffs) - 1} more)" if len(diffs) > 1 else ""
        raise InvariantViolation(
            f"kernel diverged from reference model at {context}: {head}{more}",
            violations=diffs,
            snapshot=snapshot,
            context=context,
        )

    def _reference_snapshot(self, set_index: int) -> Dict:
        """Serialize the reference's view of one set for the snapshot."""
        reference = self.reference
        if self._is_nucache:
            return {
                "main": list(reference.main[set_index]),
                "deli": list(reference.deli[set_index]),
            }
        view: Dict = {"contents": {
            str(way): list(line)
            for way, line in sorted(reference.contents[set_index].items())
        }}
        if isinstance(reference, RefLRUCache):
            view["order"] = list(reference.order[set_index])
        return view
