"""Address arithmetic helpers.

Addresses throughout the library are plain Python ints (byte addresses).
Caches operate on *block* addresses — the byte address with the block
offset stripped — and split a block address into a set index and a tag.
All functions here are pure and branch-free so they are cheap on the
simulator's hot path.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return ``True`` iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a power of two, got {value}")
    return value.bit_length() - 1


def block_address(byte_addr: int, block_bytes: int) -> int:
    """Strip the block offset, yielding the block-aligned address."""
    return byte_addr >> log2_exact(block_bytes)


def set_index(block_addr: int, num_sets: int) -> int:
    """Set index of a block address for a ``num_sets``-set cache."""
    return block_addr & (num_sets - 1)


def tag_of(block_addr: int, num_sets: int) -> int:
    """Tag of a block address for a ``num_sets``-set cache."""
    return block_addr >> log2_exact(num_sets)


def rebuild_block_address(tag: int, index: int, num_sets: int) -> int:
    """Inverse of (:func:`set_index`, :func:`tag_of`)."""
    return (tag << log2_exact(num_sets)) | index
