"""Deterministic random-number helpers.

Everything in this library that needs randomness (workload generation,
random replacement, PIPP's probabilistic promotion) draws from a
``numpy.random.Generator`` seeded through :func:`make_rng`.  Seeds are
derived from a root seed plus a *stream label* so that, e.g., core 3's
trace generator and the LLC's random-replacement stream never share state,
and adding a new consumer of randomness never perturbs existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Root seed used by all experiments unless overridden.  Fixed so the
#: benchmark harness is reproducible run to run.
DEFAULT_SEED = 20110212  # HPCA 2011 publication date


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream label.

    The derivation hashes the pair, so distinct labels give statistically
    independent streams and the mapping is stable across runs and machines.
    """
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def make_rng(root_seed: int = DEFAULT_SEED, label: str = "") -> np.random.Generator:
    """Create a deterministic generator for the given stream label."""
    return np.random.default_rng(derive_seed(root_seed, label))


def backoff_delay(
    round_no: int,
    label: str,
    base: float,
    cap: float,
    seed: int = DEFAULT_SEED,
) -> float:
    """Deterministic exponential backoff with seeded jitter.

    Returns the delay before attempt round ``round_no`` (1-based):
    ``min(cap, base * 2**(round_no-1))`` scaled by a jitter in
    ``[0.5, 1.0]`` drawn from the ``(seed, label)`` stream — so a given
    retry site backs off identically on every run and machine, while
    distinct sites (different labels) never synchronize.  A
    non-positive ``base`` disables backoff entirely.  Shared by the
    scheduler's retry rounds, the sqlite busy-retry loop, and the
    single-flight lease polling.
    """
    if base <= 0:
        return 0.0
    jitter = 0.5 + 0.5 * float(make_rng(seed, label).random())
    return min(cap, base * (2 ** (round_no - 1))) * jitter
