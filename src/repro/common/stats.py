"""Lightweight statistics counters used across the simulator.

The simulator's hot path increments plain integer attributes on these
objects; aggregation and derived quantities (rates, MPKI) live in
``repro.metrics``.  Keeping raw counts here and derivations elsewhere
ensures no information is lost between a run and its analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class AccessStats:
    """Hit/miss counters for one cache (optionally split per requestor)."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per access; 0.0 for an untouched cache."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Misses per access; 0.0 for an untouched cache."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "AccessStats") -> None:
        """Accumulate ``other`` into this counter bundle."""
        self.hits += other.hits
        self.misses += other.misses
        self.writebacks += other.writebacks
        self.evictions += other.evictions

    def snapshot(self) -> "AccessStats":
        """Return an independent copy of the current counts."""
        return AccessStats(self.hits, self.misses, self.writebacks, self.evictions)


@dataclass
class SharedCacheStats:
    """Per-core breakdown of a shared cache's traffic."""

    total: AccessStats = field(default_factory=AccessStats)
    per_core: Dict[int, AccessStats] = field(default_factory=dict)

    def record(self, core: int, hit: bool) -> None:
        """Record one access by ``core``."""
        core_stats = self.per_core.get(core)
        if core_stats is None:
            core_stats = self.per_core.setdefault(core, AccessStats())
        if hit:
            self.total.hits += 1
            core_stats.hits += 1
        else:
            self.total.misses += 1
            core_stats.misses += 1

    def core_stats(self, core: int) -> AccessStats:
        """Counters for one core (zeros if the core never accessed)."""
        return self.per_core.get(core, AccessStats())
