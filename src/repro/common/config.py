"""Configuration dataclasses for caches, timing and the simulated CMP.

All configs are frozen dataclasses that validate eagerly in
``__post_init__`` and raise :class:`~repro.common.errors.ConfigError` on
inconsistency, so a bad geometry can never reach the simulator.

Two preset system configurations are provided:

* :func:`paper_system_config` — the paper's machine scaled down by 4x in
  LLC capacity (Python trace simulation cannot afford the full 1 MB/core
  LLC at useful trace lengths; see DESIGN.md, "Substitutions").
* :func:`tiny_system_config` — a very small machine for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.common.addr import is_power_of_two
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache level.

    Attributes:
        size_bytes: total capacity in bytes.
        block_bytes: line size in bytes (power of two).
        ways: associativity.
    """

    size_bytes: int
    block_bytes: int
    ways: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.block_bytes):
            raise ConfigError(f"block_bytes must be a power of two, got {self.block_bytes}")
        if self.ways <= 0:
            raise ConfigError(f"ways must be positive, got {self.ways}")
        if self.size_bytes <= 0:
            raise ConfigError(f"size_bytes must be positive, got {self.size_bytes}")
        if self.size_bytes % (self.block_bytes * self.ways) != 0:
            raise ConfigError(
                f"size {self.size_bytes} is not divisible by ways*block "
                f"({self.ways}*{self.block_bytes})"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigError(f"num_sets must be a power of two, got {self.num_sets}")

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size, block size and associativity."""
        return self.size_bytes // (self.block_bytes * self.ways)

    @property
    def num_lines(self) -> int:
        """Total number of line slots in the cache."""
        return self.num_sets * self.ways

    def scaled(self, factor: int) -> "CacheGeometry":
        """Return the same geometry with ``factor``-times the sets."""
        return replace(self, size_bytes=self.size_bytes * factor)


@dataclass(frozen=True)
class LatencyConfig:
    """Fixed access latencies (cycles) for the timing model.

    The simulator charges a core the latency of the deepest level that
    serviced its access; latencies are end-to-end, not additive per level.
    """

    l1_hit: int = 1
    l2_hit: int = 10
    llc_hit: int = 30
    memory: int = 250

    def __post_init__(self) -> None:
        ordered = (self.l1_hit, self.l2_hit, self.llc_hit, self.memory)
        if any(lat <= 0 for lat in ordered):
            raise ConfigError(f"latencies must be positive, got {ordered}")
        if list(ordered) != sorted(ordered):
            raise ConfigError(f"latencies must be monotonically increasing, got {ordered}")


@dataclass(frozen=True)
class NUcacheConfig:
    """Parameters of the NUcache organization and its PC selector.

    Attributes:
        deli_ways: number of ways per set reserved as DeliWays.  The
            remaining ``llc.ways - deli_ways`` are MainWays.
        num_candidate_pcs: size of the candidate pool (the top miss-causing
            PCs considered by the selector).  The paper tracks a small
            table of delinquent PCs; 32 is its flavour of "small".
        epoch_misses: LLC misses per profiling/selection epoch.
        epoch_accesses: upper bound on an epoch's length in LLC
            *accesses* (0 = ``10 * epoch_misses``).  Low-MPKI programs
            tick the miss counter slowly; without this cap their first
            selection could land after the measurement window.
        history_capacity: entries in the Next-Use eviction history buffer
            (evicted tags remembered while waiting for their next use).
        max_selected_pcs: upper bound on how many PCs may be selected.
        selector: ``"greedy"`` (the paper's cost-benefit algorithm),
            ``"oracle"`` (exhaustive subset search; exponential, only for
            small candidate pools), ``"topk"`` (naive: select the k
            biggest miss producers, the strawman the paper argues
            against), or ``"all"`` (select everything — a PC-blind
            victim buffer, the other ablation extreme).
        deli_replacement: ``"fifo"`` (paper) or ``"lru"`` (ablation).
        sample_period: profile every Nth LLC set (1 = exact profiling).
    """

    deli_ways: int = 8
    num_candidate_pcs: int = 32
    epoch_misses: int = 10_000
    epoch_accesses: int = 0
    history_capacity: int = 8192
    max_selected_pcs: int = 16
    selector: str = "greedy"
    deli_replacement: str = "fifo"
    sample_period: int = 1

    _SELECTORS = ("greedy", "oracle", "topk", "all")

    @property
    def effective_epoch_accesses(self) -> int:
        """Access cap on epoch length (defaulted from epoch_misses)."""
        return self.epoch_accesses or 10 * self.epoch_misses

    _DELI_POLICIES = ("fifo", "lru")

    def __post_init__(self) -> None:
        if self.deli_ways < 0:
            raise ConfigError(f"deli_ways must be >= 0, got {self.deli_ways}")
        if self.num_candidate_pcs <= 0:
            raise ConfigError(f"num_candidate_pcs must be positive, got {self.num_candidate_pcs}")
        if self.epoch_misses <= 0:
            raise ConfigError(f"epoch_misses must be positive, got {self.epoch_misses}")
        if self.epoch_accesses < 0:
            raise ConfigError(
                f"epoch_accesses must be >= 0, got {self.epoch_accesses}"
            )
        if self.history_capacity <= 0:
            raise ConfigError(f"history_capacity must be positive, got {self.history_capacity}")
        if not 0 < self.max_selected_pcs <= self.num_candidate_pcs:
            raise ConfigError(
                f"max_selected_pcs must be in 1..{self.num_candidate_pcs}, "
                f"got {self.max_selected_pcs}"
            )
        if self.selector not in self._SELECTORS:
            raise ConfigError(f"selector must be one of {self._SELECTORS}, got {self.selector!r}")
        if self.deli_replacement not in self._DELI_POLICIES:
            raise ConfigError(
                f"deli_replacement must be one of {self._DELI_POLICIES}, "
                f"got {self.deli_replacement!r}"
            )
        if self.sample_period <= 0:
            raise ConfigError(f"sample_period must be positive, got {self.sample_period}")


@dataclass(frozen=True)
class SystemConfig:
    """Full CMP configuration: cores, private caches, shared LLC, timing.

    The LLC geometry is *total* (shared), not per-core: following the
    paper, capacity grows with the core count (1 "unit" per core).
    """

    num_cores: int
    l1: CacheGeometry
    l2: CacheGeometry
    llc: CacheGeometry
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    nucache: NUcacheConfig = field(default_factory=NUcacheConfig)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError(f"num_cores must be positive, got {self.num_cores}")
        if not (self.l1.block_bytes == self.l2.block_bytes == self.llc.block_bytes):
            raise ConfigError("all cache levels must share one block size")
        if self.nucache.deli_ways >= self.llc.ways:
            raise ConfigError(
                f"deli_ways ({self.nucache.deli_ways}) must leave at least one "
                f"MainWay in a {self.llc.ways}-way LLC"
            )

    @property
    def block_bytes(self) -> int:
        """Block size shared by every level."""
        return self.llc.block_bytes

    def overhead_report(self, hardware_sample_period: int = 32) -> Dict[str, int]:
        """Storage overhead (bits) of the NUcache additions, as in the
        paper's hardware-budget table.

        Accounts for the per-line fill-PC identifier, the Next-Use
        history buffer, the candidate-PC table and the per-PC histogram
        counters.  A hardware implementation monitors a 1-in-
        ``hardware_sample_period`` sample of the sets (the paper's
        design; our simulator can afford exact profiling, see the
        sampling ablation), so the history buffer is budgeted at the
        sampled size.
        """
        if hardware_sample_period <= 0:
            raise ConfigError(
                f"hardware_sample_period must be positive, got {hardware_sample_period}"
            )
        pc_id_bits = max(1, (self.nucache.num_candidate_pcs - 1).bit_length())
        per_line = pc_id_bits + 1  # candidate-PC id + "selected" bit
        tag_bits = 48 - (self.llc.num_sets.bit_length() - 1) - (
            self.block_bytes.bit_length() - 1
        )
        history_entry_bits = tag_bits + pc_id_bits
        history_entries = max(64, self.nucache.history_capacity // hardware_sample_period)
        counter_bits = 32
        histogram_buckets = 16
        return {
            "per_line_bits": per_line * self.llc.num_lines,
            "history_buffer_bits": history_entry_bits * history_entries,
            "pc_table_bits": (48 + counter_bits) * self.nucache.num_candidate_pcs,
            "histogram_bits": counter_bits
            * histogram_buckets
            * self.nucache.num_candidate_pcs,
        }


#: Paper machine (scaled 4x down in LLC capacity; see module docstring).
_PAPER_BLOCK = 64


def paper_llc_geometry(num_cores: int) -> CacheGeometry:
    """LLC geometry used by the presets: 256 KB per core, 16-way."""
    return CacheGeometry(size_bytes=256 * 1024 * num_cores, block_bytes=_PAPER_BLOCK, ways=16)


def paper_system_config(num_cores: int = 1, **nucache_overrides: object) -> SystemConfig:
    """The default evaluation machine (see DESIGN.md for the scaling note).

    Private levels: 8 KB L1 + 64 KB L2 per core (scaled in proportion to
    the LLC).  Shared LLC: 256 KB/core, 16-way, 64 B lines.  The
    Next-Use history and epoch length scale with the core count so that
    multicore eviction traffic does not starve the profiler.
    """
    defaults: Dict[str, object] = {
        "history_capacity": 8192 * num_cores,
        "epoch_misses": 10_000 * num_cores,
    }
    defaults.update(nucache_overrides)
    return SystemConfig(
        num_cores=num_cores,
        l1=CacheGeometry(size_bytes=8 * 1024, block_bytes=_PAPER_BLOCK, ways=2),
        l2=CacheGeometry(size_bytes=64 * 1024, block_bytes=_PAPER_BLOCK, ways=8),
        llc=paper_llc_geometry(num_cores),
        nucache=NUcacheConfig(**defaults),  # type: ignore[arg-type]
    )


def tiny_system_config(num_cores: int = 1, **nucache_overrides: object) -> SystemConfig:
    """A very small machine for unit tests (fast, easily reasoned about)."""
    defaults: Dict[str, object] = {
        "deli_ways": 2,
        "num_candidate_pcs": 8,
        "epoch_misses": 500,
        "history_capacity": 256,
        "max_selected_pcs": 4,
    }
    defaults.update(nucache_overrides)
    return SystemConfig(
        num_cores=num_cores,
        l1=CacheGeometry(size_bytes=512, block_bytes=64, ways=2),
        l2=CacheGeometry(size_bytes=2 * 1024, block_bytes=64, ways=4),
        llc=CacheGeometry(size_bytes=16 * 1024 * num_cores, block_bytes=64, ways=8),
        nucache=NUcacheConfig(**defaults),  # type: ignore[arg-type]
    )


def config_table(config: SystemConfig) -> Tuple[Tuple[str, str], ...]:
    """Render a config as (parameter, value) rows — the paper's Table 1."""

    def _kb(geometry: CacheGeometry) -> str:
        return f"{geometry.size_bytes // 1024} KB, {geometry.ways}-way, {geometry.block_bytes} B lines"

    return (
        ("Cores", str(config.num_cores)),
        ("L1 (private, per core)", _kb(config.l1)),
        ("L2 (private, per core)", _kb(config.l2)),
        ("LLC (shared)", _kb(config.llc)),
        ("LLC sets", str(config.llc.num_sets)),
        ("L1/L2/LLC/memory latency",
         f"{config.latency.l1_hit}/{config.latency.l2_hit}/"
         f"{config.latency.llc_hit}/{config.latency.memory} cycles"),
        ("NUcache MainWays/DeliWays",
         f"{config.llc.ways - config.nucache.deli_ways}/{config.nucache.deli_ways}"),
        ("NUcache candidate PCs", str(config.nucache.num_candidate_pcs)),
        ("NUcache epoch", f"{config.nucache.epoch_misses} LLC misses"),
    )
