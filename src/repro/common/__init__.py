"""Shared substrate: addresses, configs, RNG, stats, errors."""

from repro.common.addr import (
    block_address,
    is_power_of_two,
    log2_exact,
    rebuild_block_address,
    set_index,
    tag_of,
)
from repro.common.config import (
    CacheGeometry,
    LatencyConfig,
    NUcacheConfig,
    SystemConfig,
    config_table,
    paper_llc_geometry,
    paper_system_config,
    tiny_system_config,
)
from repro.common.errors import (
    ConfigError,
    ExperimentError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)
from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng
from repro.common.stats import AccessStats, SharedCacheStats

__all__ = [
    "AccessStats",
    "CacheGeometry",
    "ConfigError",
    "DEFAULT_SEED",
    "ExperimentError",
    "LatencyConfig",
    "NUcacheConfig",
    "ReproError",
    "SharedCacheStats",
    "SimulationError",
    "SystemConfig",
    "TraceError",
    "WorkloadError",
    "block_address",
    "config_table",
    "derive_seed",
    "is_power_of_two",
    "log2_exact",
    "make_rng",
    "paper_llc_geometry",
    "paper_system_config",
    "rebuild_block_address",
    "set_index",
    "tag_of",
    "tiny_system_config",
]
