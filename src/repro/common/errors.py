"""Exception hierarchy for the NUcache reproduction.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent.

    Raised eagerly when a config dataclass is constructed (all configs
    validate in ``__post_init__``) so that a bad geometry never reaches the
    simulator.
    """


class TraceError(ReproError):
    """A trace is malformed, empty, or inconsistent with its metadata."""


class SimulationError(ReproError):
    """The simulator reached a state that should be impossible.

    This indicates a bug in a policy or in the engine rather than bad user
    input; it is still raised as a library error so test harnesses can
    report it cleanly.
    """


class InvariantViolation(SimulationError):
    """A runtime structural invariant of the cache model was violated.

    Raised by the :mod:`repro.check` sanitizer and the differential
    oracle.  Besides the message it carries the full list of violated
    invariants and a JSON-serializable *snapshot* of the offending
    structure state, so a postmortem (or the journal, via the exec
    layer) can show exactly what the cache looked like at the moment of
    the violation rather than just a one-line summary.

    Attributes:
        violations: every violated invariant, as human-readable strings.
        snapshot: serialized state of the structures under check
            (set contents, recency stacks, counters, ...).
        context: where the violation was detected (e.g. ``"engine
            step 4096"`` or ``"fuzz access 17"``).
    """

    def __init__(
        self,
        message: str,
        violations=None,
        snapshot=None,
        context: str = "",
    ) -> None:
        super().__init__(message)
        self.violations = list(violations or [])
        self.snapshot = dict(snapshot or {})
        self.context = context

    def __reduce__(self):
        """Pickle support: keep violations/snapshot across process pools."""
        return (
            type(self),
            (self.args[0] if self.args else "", self.violations,
             self.snapshot, self.context),
        )

    def to_dict(self) -> dict:
        """JSON-serializable representation (journals, reproducer files)."""
        return {
            "message": self.args[0] if self.args else "",
            "violations": list(self.violations),
            "snapshot": self.snapshot,
            "context": self.context,
        }


class WorkloadError(ReproError):
    """A workload or mix was requested that the catalog does not define."""


class ExperimentError(ReproError):
    """An experiment driver was invoked with unusable parameters."""


class ExecError(ReproError):
    """A simulation job could not be scheduled or executed.

    Raised by the :mod:`repro.exec` layer when a job spec is malformed or
    when jobs of a batch still fail after the scheduler's retries.
    """


class StoreError(ExecError):
    """The result store's backing medium is unusable for an operation.

    Raised by the :mod:`repro.exec.stores` backends when the store is
    unavailable, read-only, or persistently busy.  The scheduler treats
    it as "compute without the cache" — a degraded mode it counts and
    surfaces — never as a batch failure.
    """


class ValidationError(ExecError):
    """A simulation result violates an engine invariant.

    Raised (or collected as violation strings) by
    :mod:`repro.exec.validate` when a freshly computed or cached result
    fails its integrity checks — such a result must never be served.
    """


class RunInterrupted(ExecError):
    """A batch was interrupted (SIGINT/SIGTERM) before resolving fully.

    Carries the partial :class:`~repro.exec.scheduler.BatchReport` and
    per-job outcomes so callers (the CLI run loop) can journal what
    settled and print a resume hint instead of a stack trace.
    """

    def __init__(self, message: str, report=None, outcomes=None) -> None:
        super().__init__(message)
        self.report = report
        self.outcomes = outcomes or {}
