"""High-level run helpers: single benchmarks, mixes, alone baselines.

These are the functions the experiment drivers, examples and CLI call.
They encapsulate the conventions of the study:

* a *mix run* gives each core one benchmark, relocated into a private
  address space, on an LLC sized for the core count;
* an *alone run* gives one benchmark the whole (same-sized) LLC under
  LRU — the denominator of weighted speedup;
* trace lengths are expressed in accesses per core.

Alone results are memoized per (benchmark, core-count, length, seed)
because every mix of an experiment reuses them — in-process via a plain
dict, across processes and invocations via the content-addressed result
store (:mod:`repro.exec`).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.common.config import SystemConfig, paper_system_config
from repro.common.rng import DEFAULT_SEED
from repro.prefetch.prefetchers import make_prefetcher
from repro.sim.engine import SimResult
from repro.sim.memory import BandwidthLimitedMemory, FixedLatencyMemory
from repro.sim.policies import make_llc
from repro.sim.vector import make_engine
from repro.workloads.mixes import mix_members
from repro.workloads.spec_like import benchmark
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Trace

#: Default accesses per core for experiment runs; figures scale this.
DEFAULT_ACCESSES = 200_000

#: Fraction of each trace used to warm caches before measuring (the
#: warm-then-measure methodology of the paper's simulator runs).
DEFAULT_WARMUP_FRACTION = 0.25

#: Channel gap (cycles between request starts) of the bandwidth-limited
#: memory model.  Eight latency-bound cores generate one request per
#: ~250+ cycles each, i.e. one every ~32 cycles combined; a 48-cycle
#: channel therefore saturates under miss-heavy 8-core mixes, which is
#: the regime the bandwidth-sensitivity study targets.
DEFAULT_CHANNEL_GAP = 48


def _make_memory(config: SystemConfig, model: str):
    """Build the main-memory model named by ``model``."""
    if model == "fixed":
        return FixedLatencyMemory(config.latency.memory)
    if model == "bandwidth":
        return BandwidthLimitedMemory(config.latency.memory, DEFAULT_CHANNEL_GAP)
    raise ValueError(f"unknown memory model {model!r}; use 'fixed' or 'bandwidth'")


def make_traces(
    members: Sequence[str], accesses: int, seed: int
) -> Tuple[Trace, ...]:
    """Generate one relocated trace per core for a mix's members.

    Each instance gets a distinct relocation tag so two cores running
    the same benchmark never share cache lines.
    """
    traces = []
    for core_id, name in enumerate(members):
        trace = generate_trace(benchmark(name), accesses, seed)
        traces.append(trace.relocated(core_id))
    return tuple(traces)


def run_workload(
    members: Sequence[str],
    policy: str,
    config: Optional[SystemConfig] = None,
    accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    prefetcher: str = "none",
    memory_model: str = "fixed",
    **nucache_overrides: object,
) -> SimResult:
    """Run a set of benchmarks (one per core) under one LLC policy."""
    if config is None:
        config = paper_system_config(len(members), **nucache_overrides)
    traces = make_traces(members, accesses, seed)
    llc = make_llc(policy, config, seed)
    prefetchers = None
    if prefetcher != "none":
        prefetchers = [make_prefetcher(prefetcher) for _ in members]
    engine = make_engine(
        traces, llc, config, _make_memory(config, memory_model),
        warmup_fraction=warmup_fraction, prefetchers=prefetchers,
    )
    return engine.run()


def run_mix(
    mix_name: str,
    policy: str,
    accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    prefetcher: str = "none",
    memory_model: str = "fixed",
    **nucache_overrides: object,
) -> SimResult:
    """Run one named mix under one LLC policy."""
    return run_workload(
        mix_members(mix_name), policy, None, accesses, seed, warmup_fraction,
        prefetcher, memory_model, **nucache_overrides,
    )


def run_single(
    benchmark_name: str,
    policy: str,
    accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    num_cores_capacity: int = 1,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    prefetcher: str = "none",
    **nucache_overrides: object,
) -> SimResult:
    """Run one benchmark alone on an LLC sized for ``num_cores_capacity``.

    With ``num_cores_capacity > 1`` the benchmark monopolizes a larger
    LLC — this is the "alone" configuration of the multicore studies.
    """
    config = paper_system_config(1, **nucache_overrides)
    if num_cores_capacity != 1:
        from dataclasses import replace

        from repro.common.config import paper_llc_geometry

        config = replace(config, llc=paper_llc_geometry(num_cores_capacity))
    trace = generate_trace(benchmark(benchmark_name), accesses, seed)
    llc = make_llc(policy, config, seed)
    prefetchers = None if prefetcher == "none" else [make_prefetcher(prefetcher)]
    engine = make_engine(
        (trace,), llc, config, FixedLatencyMemory(config.latency.memory),
        warmup_fraction=warmup_fraction, prefetchers=prefetchers,
    )
    return engine.run()


#: In-process memo of alone IPCs, backed by the persistent result store.
_ALONE_MEMO: Dict[Tuple[str, int, int, int, str], float] = {}


def clear_alone_memo() -> None:
    """Drop the in-process alone-IPC memo (tests use this)."""
    _ALONE_MEMO.clear()


def alone_ipc(
    benchmark_name: str,
    num_cores_capacity: int,
    accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
    policy: str = "lru",
) -> float:
    """Memoized alone-run IPC (weighted-speedup denominator).

    Misses are looked up in the content-addressed result store before
    simulating, so alone baselines are shared across worker processes
    and across invocations of the harness.
    """
    memo_key = (benchmark_name, num_cores_capacity, accesses, seed, policy)
    cached = _ALONE_MEMO.get(memo_key)
    if cached is not None:
        return cached
    # Imported lazily: repro.exec imports this module at load time.
    from repro.exec import SimJob
    from repro.exec.context import resolve_store

    job = SimJob.alone(benchmark_name, num_cores_capacity, accesses, seed, policy)
    store = resolve_store()
    result = store.get(job) if store is not None else None
    if result is None:
        result = run_single(
            benchmark_name, policy, accesses, seed, num_cores_capacity
        )
        if store is not None:
            store.put(job, result)
    ipc = result.cores[0].ipc
    _ALONE_MEMO[memo_key] = ipc
    return ipc


def alone_ipcs_for_mix(
    mix_name: str,
    accesses: int = DEFAULT_ACCESSES,
    seed: int = DEFAULT_SEED,
) -> Dict[str, float]:
    """Alone IPCs for every member of a mix (keyed per core position)."""
    members = mix_members(mix_name)
    return {
        f"{core}:{name}": alone_ipc(name, len(members), accesses, seed)
        for core, name in enumerate(members)
    }
