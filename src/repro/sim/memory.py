"""Main-memory timing models.

The evaluation's first-order effects come from the LLC hit/miss split,
so the default model charges a fixed latency per miss.  A bandwidth-
limited model is provided for the contention-sensitivity extension: it
serializes requests through a single channel, so heavy miss traffic from
many cores inflates effective memory latency the way a real DRAM bus
does.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


class FixedLatencyMemory:
    """Every request completes ``latency`` cycles after issue."""

    def __init__(self, latency: int) -> None:
        if latency <= 0:
            raise ConfigError(f"memory latency must be positive, got {latency}")
        self.latency = latency
        self.requests = 0

    def service(self, now: int) -> int:
        """Issue a request at cycle ``now``; returns its total latency."""
        self.requests += 1
        return self.latency


class BandwidthLimitedMemory:
    """A single channel that can start one request every ``gap`` cycles.

    Requests queue FCFS: a request issued while the channel is busy
    waits for the channel, then pays the access latency.  This is the
    simplest model that makes 8 streaming cores slower per-miss than 1.
    """

    def __init__(self, latency: int, gap: int) -> None:
        if latency <= 0:
            raise ConfigError(f"memory latency must be positive, got {latency}")
        if gap <= 0:
            raise ConfigError(f"channel gap must be positive, got {gap}")
        self.latency = latency
        self.gap = gap
        self.requests = 0
        self._channel_free_at = 0

    def service(self, now: int) -> int:
        """Issue a request at cycle ``now``; returns its total latency."""
        self.requests += 1
        start = max(now, self._channel_free_at)
        self._channel_free_at = start + self.gap
        return (start - now) + self.latency
