"""Vectorized (numpy batch) engine backend.

This module is the second full implementation of the simulation engine:
instead of stepping one access at a time through python objects
(:class:`~repro.sim.engine.MulticoreEngine`), it simulates whole traces
as numpy batches — set-index bucketing of the access stream,
array-resident tag/LRU-sequence/owner state per set, and per-round
scatter/gather updates.  On LRU hierarchies it is an order of magnitude
faster than the scalar engine while producing **byte-identical**
:class:`~repro.sim.engine.SimResult` payloads.

Selection
---------

The backend is chosen per run: ``make_engine(...)`` returns a
:class:`VectorEngine` when the resolved mode is ``"vector"`` and a plain
:class:`~repro.sim.engine.MulticoreEngine` otherwise.  The mode comes
from an explicit argument, the ``REPRO_ENGINE`` environment variable
(inherited by scheduler worker processes), or defaults to ``"scalar"``
so existing behaviour is unchanged.

Equivalence strategy (see ``docs/kernels.md`` for the full argument)
--------------------------------------------------------------------

* Trace addresses carry no timing feedback, so each core's private
  L1/L2 hit/miss masks are precomputable with the batch LRU kernel.
* For a single core, LLC accesses arrive in stream order regardless of
  latencies, so one more kernel pass resolves the LLC.
* For multiple cores over a plain-LRU LLC and fixed-latency memory, the
  interleaving at the LLC depends on per-access latencies which depend
  on LLC outcomes.  :class:`VectorEngine` solves this as a fixed point:
  guess outcomes, derive each access's schedule key, sort, re-simulate,
  repeat until the outcome vector is stable.  A converged assignment is
  *self-consistent*, and the only self-consistent assignment is the
  scalar engine's trajectory (induction over global key order), so a
  converged solve is provably byte-identical.  If the solve does not
  converge the engine falls back to the hybrid path below — the real
  LLC object is untouched until convergence, so the fallback is clean.
* Anything the batch kernel does not model — non-LRU LLC organizations
  (NUcache, UCP, PIPP, ...), bandwidth-limited memory — runs on the
  *hybrid* path: private levels stay vectorized, and the surviving LLC
  accesses drive the real LLC object one at a time in the exact global
  order the scalar engine would produce.
* Features outside both paths (prefetchers, ``max_steps``, an active
  tracer or invariant checker) fall back to the scalar engine entirely;
  :attr:`VectorEngine.fallback_reason` records why.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.cache import (
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    LEVEL_MEMORY,
    LastLevelCache,
    SetAssociativeCache,
)
from repro.common.addr import log2_exact
from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.prefetch.prefetchers import Prefetcher
from repro.sim.engine import CoreResult, MulticoreEngine, SimResult
from repro.sim.memory import FixedLatencyMemory
from repro.workloads.trace import Trace

#: Environment variable naming the engine backend for a run.
ENGINE_ENV = "REPRO_ENGINE"

#: Recognized engine backend names.
ENGINE_MODES = ("scalar", "vector")

#: Iteration cap of the multicore fixed-point LLC solve.  The solve
#: converges in a handful of iterations on every workload we generate;
#: the cap only bounds pathological feedback loops, which fall back to
#: the (still byte-identical) hybrid path.
MAX_FIXED_POINT_ITERATIONS = 30


def resolve_engine_mode(explicit: Optional[str] = None) -> str:
    """Resolve the engine backend name for a run.

    Args:
        explicit: mode requested programmatically (CLI flag); overrides
            the environment when not ``None``.

    Returns:
        One of :data:`ENGINE_MODES`.

    Raises:
        SimulationError: if the requested mode is unknown.
    """
    mode = explicit if explicit is not None else os.environ.get(ENGINE_ENV, "")
    mode = (mode or "scalar").strip().lower()
    if mode not in ENGINE_MODES:
        raise SimulationError(
            f"unknown engine mode {mode!r}; use one of {ENGINE_MODES}"
        )
    return mode


def make_engine(
    traces: Sequence[Trace],
    llc: LastLevelCache,
    config: SystemConfig,
    memory: Optional[FixedLatencyMemory] = None,
    warmup_fraction: float = 0.0,
    prefetchers: Optional[Sequence[Optional[Prefetcher]]] = None,
    mode: Optional[str] = None,
) -> MulticoreEngine:
    """Build the engine backend selected by ``mode``/``REPRO_ENGINE``.

    Drop-in replacement for constructing
    :class:`~repro.sim.engine.MulticoreEngine` directly: the returned
    object has the same interface, and the vector backend guarantees
    byte-identical results (falling back internally where needed).
    """
    cls = VectorEngine if resolve_engine_mode(mode) == "vector" else MulticoreEngine
    return cls(
        traces, llc, config, memory,
        warmup_fraction=warmup_fraction, prefetchers=prefetchers,
    )


# ---------------------------------------------------------------------------
# Batch LRU kernel
# ---------------------------------------------------------------------------

#: Reusable scratch arrays keyed by (role, shape, dtype).  Kernel calls
#: of the same shape (every repetition of a bench case; the fixed-point
#: iterations of one run) reuse allocations instead of page-faulting
#: fresh ones.  Results returned to callers never alias pool memory.
_POOL: Dict[Tuple[str, object, str], np.ndarray] = {}


def clear_buffer_pool() -> None:
    """Drop the kernel's scratch-buffer pool (tests and memory hygiene)."""
    _POOL.clear()


def _buf(role: str, shape: object, dtype: object) -> np.ndarray:
    """Fetch (or allocate) a pooled scratch array. Contents undefined."""
    key = (role, shape, str(dtype))
    buffer = _POOL.get(key)
    if buffer is None:
        buffer = np.empty(shape, dtype=dtype)  # type: ignore[arg-type]
        _POOL[key] = buffer
    return buffer


def lru_batch(
    lanes: np.ndarray,
    tags: np.ndarray,
    num_lanes: int,
    ways: int,
    cores: Optional[np.ndarray] = None,
    need_state: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
    """Simulate LRU set-associative caches over a whole access batch.

    Semantically equivalent to replaying ``(lanes[i], tags[i])`` in
    order through per-lane LRU sets of ``ways`` ways starting empty —
    exactly what :class:`~repro.cache.cache.SetAssociativeCache` with
    the plain LRU policy does — but executed as a *set-parallel round
    schedule*: accesses are bucketed by lane, and round ``r`` processes
    the ``r``-th access of every lane at once with array operations.
    Rounds are sequential (LRU state carries between them); lanes are
    independent, which is what makes each round vectorizable.

    State is held transposed as ``[ways, lanes]`` arrays of packed
    integers.  A tag cell packs ``tag << (wbits+1) | way`` so a single
    xor against the probe yields ``way`` on a match and a value ``>=
    2*wspan`` otherwise; a recency cell packs ``seq << (wbits+1) |
    wspan | way`` so a plain column ``min`` yields the LRU victim with
    its way index (and a discriminating bias bit) in the low bits.
    Column minima replace arg-reductions, which are an order of
    magnitude slower in numpy along either axis.  Cells use int32 when
    the packed values fit, halving memory traffic.

    Free ways are consumed in ascending order and a line's owner is set
    only when it is allocated, matching
    :meth:`repro.cache.set_.CacheSet` byte for byte (verified by the
    kernel equivalence tests).

    Args:
        lanes: int array of lane (set) indices, one per access, each in
            ``[0, num_lanes)``.
        tags: int array of tag values, one per access (non-negative).
        num_lanes: total number of independent LRU sets.
        ways: associativity of every set.
        cores: optional per-access owner ids; enables owner tracking
            (implies ``need_state``).
        need_state: also return the final valid mask (and owners when
            ``cores`` is given).

    Returns:
        ``(hits, valid, owners)`` — ``hits`` is a bool array aligned
        with the input; ``valid``/``owners`` are ``[num_lanes, ways]``
        arrays of the final state (``None`` when not requested).
    """
    n = int(lanes.shape[0])
    track = cores is not None
    need_state = need_state or track
    if n == 0:
        valid = np.zeros((num_lanes, ways), dtype=bool) if need_state else None
        owners = np.zeros((num_lanes, ways), dtype=np.int64) if track else None
        return np.zeros(0, dtype=bool), valid, owners
    if ways <= 2 and not need_state:
        return _lru_low_ways(lanes, tags, num_lanes, ways), None, None

    counts = np.bincount(lanes, minlength=num_lanes)
    rounds = int(counts.max())
    wbits = max(1, int(ways - 1).bit_length())
    shift = wbits + 1
    wspan = 1 << wbits
    tag_max = int(tags.max())
    use32 = (max(tag_max + 2, rounds + ways + 1) << shift) < 2**31
    cell = np.int32 if use32 else np.int64
    sentinel = (1 << ((31 if use32 else 63) - shift)) - 1
    t = tags
    if tag_max >= sentinel:  # pragma: no cover - needs ~2^58 tag values
        t = np.unique(tags, return_inverse=True)[1].astype(np.int64)

    # Columns ordered by descending bucket size so round r only touches
    # the leading `active[r]` columns (a shrinking contiguous prefix).
    lane_order = np.argsort(-counts, kind="stable")
    small_lanes = num_lanes <= 32767
    col_of_lane = np.empty(num_lanes, dtype=np.int16 if small_lanes else np.int64)
    col_of_lane[lane_order] = np.arange(num_lanes, dtype=col_of_lane.dtype)
    cols = col_of_lane[lanes]
    # int16 keys take numpy's radix path — ~7x faster than int64 here.
    perm = np.argsort(cols, kind="stable")
    counts_sorted = counts[lane_order]
    col_starts = np.zeros(num_lanes, dtype=np.int64)
    np.cumsum(counts_sorted[:-1], out=col_starts[1:])
    hist = np.bincount(counts_sorted, minlength=rounds + 1)
    active = (num_lanes - np.cumsum(hist)[:rounds]).astype(np.int64)
    row_starts = np.zeros(rounds + 1, dtype=np.int64)
    np.cumsum(active, out=row_starts[1:])

    # Round-major position of each access, computed directly (no second
    # argsort): round r's segment holds active columns 0..a-1 in column
    # order, so an access with within-lane rank r in column c lands at
    # row_starts[r] + c.
    cols_sorted = cols[perm]
    rank = np.arange(n, dtype=np.int64)
    rank -= col_starts[cols_sorted]
    rm_pos = row_starts[rank]
    rm_pos += cols_sorted
    pos = _buf("pos", n, np.int64)
    pos[perm] = rm_pos
    probes = _buf("probes", n, cell)
    probes[pos] = (t.astype(np.int64) << np.int64(shift)).astype(cell, copy=False)
    cores_rm = None
    if track:
        cores_rm = _buf("cores", n, np.int64)
        cores_rm[pos] = cores

    lanes_n, ways_n = num_lanes, ways
    tag_state = _buf("T", (ways_n, lanes_n), cell)
    tag_state[:] = np.arange(ways_n, dtype=cell)[:, None]
    tag_state += cell(sentinel << shift)
    seq_state = _buf("Q", (ways_n, lanes_n), cell)
    way_ids = np.arange(ways_n, dtype=cell)
    seq_state[:] = ((way_ids << cell(shift)) | cell(wspan) | way_ids)[:, None]
    tag_flat = tag_state.reshape(-1)
    seq_flat = seq_state.reshape(-1)
    owner_flat = None
    owner_state = None
    if track:
        owner_state = _buf("O", (ways_n, lanes_n), np.int64)
        owner_state[:] = 0
        owner_flat = owner_state.reshape(-1)

    hits_rm = _buf("hits", n, bool)
    xor_scratch = _buf("D", (ways_n, lanes_n), cell)
    m_buf = _buf("m", lanes_n, cell)
    m2_buf = _buf("m2", lanes_n, cell)
    vw_buf = _buf("vw", lanes_n, cell)
    way_buf = _buf("way", lanes_n, cell)
    hit_buf = _buf("hit", lanes_n, bool)
    flat_buf = _buf("flat", lanes_n, np.int64)
    val_buf = _buf("val", lanes_n, cell)
    qv_buf = _buf("qv", lanes_n, cell)
    col_ids = np.arange(lanes_n, dtype=np.int64)
    wspan_c = cell(wspan)
    vmask_c = cell(2 * wspan - 1)
    wmask_c = cell(wspan - 1)
    active_list = active.tolist()
    starts_list = row_starts.tolist()
    for r in range(rounds):
        a = active_list[r]
        lo = starts_list[r]
        hi = lo + a
        probe = probes[lo:hi]
        diff = xor_scratch[:, :a]
        np.bitwise_xor(tag_state[:, :a], probe[None, :], out=diff)
        m = diff.min(axis=0, out=m_buf[:a])
        hit = np.less(m, wspan_c, out=hit_buf[:a])
        m2 = seq_state[:, :a].min(axis=0, out=m2_buf[:a])
        victim = np.bitwise_and(m2, vmask_c, out=vw_buf[:a])
        way = np.minimum(m, victim, out=way_buf[:a])
        np.bitwise_and(way, wmask_c, out=way)
        flat = np.multiply(way, lanes_n, out=flat_buf[:a], casting="unsafe")
        flat += col_ids[:a]
        val = np.bitwise_or(probe, way, out=val_buf[:a])
        tag_flat[flat] = val
        qv = np.add(way, cell(((r + ways_n) << shift) | wspan), out=qv_buf[:a],
                    casting="unsafe")
        seq_flat[flat] = qv
        hits_rm[lo:hi] = hit
        if track:
            missed = np.nonzero(~hit)[0]
            owner_flat[flat[missed]] = cores_rm[lo + missed]  # type: ignore[index]
    hits = hits_rm[pos]
    valid = None
    owners = None
    if need_state:
        valid = np.empty((num_lanes, ways_n), dtype=bool)
        valid[lane_order] = ((tag_state >> cell(shift)) != cell(sentinel)).T
        if track:
            owners = np.empty((num_lanes, ways_n), dtype=np.int64)
            owners[lane_order] = owner_state.T  # type: ignore[union-attr]
    return hits, valid, owners


def _lru_low_ways(
    lanes: np.ndarray, tags: np.ndarray, num_lanes: int, ways: int
) -> np.ndarray:
    """Closed-form hit masks for 1- and 2-way LRU sets (no round loop).

    A 1-way set hits exactly when the lane's previous access carried
    the same tag.  A 2-way LRU set's state after any access is always
    ``(current tag, most recent distinct tag)`` — regardless of the
    hit/miss outcome — so a hit is ``tag == previous tag`` or ``tag ==
    the tag just before the current run of equal tags``.  Both reduce
    to run-start bookkeeping over the lane-grouped stream: one stable
    argsort plus O(n) vector ops, which crushes the round-schedule
    kernel when a few hot lanes would otherwise force thousands of
    tiny rounds (the private L1s are exactly this shape).
    """
    small = num_lanes <= 32767
    perm = np.argsort(lanes.astype(np.int16) if small else lanes, kind="stable")
    lane_sorted = lanes[perm]
    tag_sorted = tags[perm]
    n = lanes.shape[0]
    same_lane = np.zeros(n, dtype=bool)
    np.equal(lane_sorted[1:], lane_sorted[:-1], out=same_lane[1:])
    same_tag = np.zeros(n, dtype=bool)
    np.equal(tag_sorted[1:], tag_sorted[:-1], out=same_tag[1:])
    mru_hit = same_lane & same_tag
    if ways == 1:
        hits_sorted = mru_hit
    else:
        idx = np.arange(n, dtype=np.int32)
        run_start = np.maximum.accumulate(np.where(mru_hit, np.int32(0), idx))
        seg_start = np.maximum.accumulate(np.where(same_lane, np.int32(0), idx))
        prev_run = np.zeros(n, dtype=np.int32)
        prev_run[1:] = run_start[:-1]
        has_second = same_lane & (prev_run > seg_start)
        lru_hit = has_second & (tag_sorted == tag_sorted[prev_run - 1])
        hits_sorted = mru_hit | lru_hit
    hits = np.empty(n, dtype=bool)
    hits[perm] = hits_sorted
    return hits


def _occupancy_from_state(
    valid: np.ndarray, owners: Optional[np.ndarray]
) -> Dict[int, int]:
    """Occupancy dict matching ``SetAssociativeCache.occupancy_by_core``.

    The scalar walk inserts keys in first-seen order over (set
    ascending, way ascending); ``np.unique`` plus an argsort of first
    occurrence indices reproduces that insertion order exactly.
    """
    if owners is None:
        count = int(valid.sum())
        return {0: count} if count else {}
    held = owners[valid]
    if held.size == 0:
        return {}
    uniq, first, counts = np.unique(held, return_index=True, return_counts=True)
    order = np.argsort(first, kind="stable")
    return {int(uniq[i]): int(counts[i]) for i in order}


# ---------------------------------------------------------------------------
# Vector engine
# ---------------------------------------------------------------------------


class VectorEngine(MulticoreEngine):
    """Batch-simulating engine; byte-identical to the scalar engine.

    Construction is identical to
    :class:`~repro.sim.engine.MulticoreEngine` (same validation, same
    core models).  :meth:`run` simulates the private levels as numpy
    batches and resolves the shared LLC with the fastest applicable
    strategy, falling back to the scalar loop for features the batch
    paths do not model.  :attr:`fallback_reason` reports the path
    taken: ``None`` (fully vectorized), ``"hybrid:..."`` (vector
    private levels, scalar LLC object), or ``"scalar:..."`` (full
    scalar fallback).
    """

    #: Why (and how far) the engine fell back on the last run.
    fallback_reason: Optional[str] = None

    def run(self, max_steps: Optional[int] = None) -> SimResult:
        """Run to completion; see the scalar engine for the contract."""
        from repro.check.invariants import engine_checker
        from repro.obs.trace import active_tracer

        reason = None
        if max_steps is not None:
            reason = "scalar:max_steps"
        elif active_tracer() is not None:
            reason = "scalar:tracer"
        elif engine_checker(self.llc) is not None:
            reason = "scalar:checker"
        elif any(core.prefetcher is not None for core in self.cores):
            reason = "scalar:prefetchers"
        elif any(core.cursor or core.passes or core.clock for core in self.cores):
            reason = "scalar:resumed_cores"
        if reason is not None:
            self.fallback_reason = reason
            return super().run(max_steps)
        return self._run_batched()

    # -- private-level batch simulation ---------------------------------

    def _run_batched(self) -> SimResult:
        """Vectorize the private levels, then resolve the shared LLC."""
        config = self.config
        block_shift = log2_exact(config.block_bytes)
        blocks = [core.trace.addresses >> np.int64(block_shift) for core in self.cores]
        lengths = [arr.shape[0] for arr in blocks]
        all_blocks = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        core_of = np.repeat(np.arange(len(blocks), dtype=np.int64), lengths)

        l1_hits = self._private_level(all_blocks, core_of, config.l1)
        miss1 = np.nonzero(~l1_hits)[0]
        l2_hits_sub = self._private_level(
            all_blocks[miss1], core_of[miss1], config.l2
        )
        llc_idx = miss1[~l2_hits_sub]

        # Level codes per access: 0=l1, 1=l2, 3=memory; LLC hits flip
        # their entries to 2 once LLC outcomes are known.
        levels = np.zeros(all_blocks.shape[0], dtype=np.int8)
        levels[miss1] = 1
        levels[llc_idx] = 3

        llc = self.llc
        memory = self.memory
        full_vector = (
            type(llc) is SetAssociativeCache
            and llc._plain_lru
            and type(memory) is FixedLatencyMemory
        )
        bounds = np.concatenate(([0], np.cumsum(lengths)))
        if full_vector:
            result = self._resolve_llc_vector(
                all_blocks, core_of, llc_idx, levels, bounds
            )
            if result is not None:
                return result
            self.fallback_reason = "hybrid:fixed_point_not_converged"
        else:
            self.fallback_reason = (
                "hybrid:memory_model" if type(llc) is SetAssociativeCache
                and llc._plain_lru else f"hybrid:llc_policy:{llc.name}"
            )
        return self._resolve_llc_hybrid(all_blocks, llc_idx, levels, bounds)

    def _private_level(
        self, blocks: np.ndarray, core_of: np.ndarray, geometry
    ) -> np.ndarray:
        """Hit mask of one private level for a (sub)stream of accesses.

        All cores share one kernel call: lane ``core * num_sets + set``
        keeps per-core caches independent while batching the rounds.
        """
        num_sets = geometry.num_sets
        index_bits = num_sets.bit_length() - 1
        lanes = core_of * np.int64(num_sets)
        lanes += blocks & np.int64(num_sets - 1)
        tags = blocks >> np.int64(index_bits)
        hits, _, _ = lru_batch(
            lanes, tags, len(self.cores) * num_sets, geometry.ways
        )
        return hits

    # -- LLC resolution: full-vector path --------------------------------

    def _resolve_llc_vector(
        self,
        all_blocks: np.ndarray,
        core_of: np.ndarray,
        llc_idx: np.ndarray,
        levels: np.ndarray,
        bounds: np.ndarray,
    ) -> Optional[SimResult]:
        """Resolve a plain-LRU LLC entirely in numpy.

        Single core: LLC accesses arrive in stream order, one kernel
        call suffices.  Multiple cores: iterate the outcome/schedule
        fixed point; ``None`` means it did not converge within
        :data:`MAX_FIXED_POINT_ITERATIONS` (caller falls back — the LLC
        object has not been touched).
        """
        config = self.config
        geometry = config.llc
        num_sets = geometry.num_sets
        index_bits = num_sets.bit_length() - 1
        sub_blocks = all_blocks[llc_idx]
        lanes = sub_blocks & np.int64(num_sets - 1)
        tags = sub_blocks >> np.int64(index_bits)
        sub_cores = core_of[llc_idx]
        ncores = len(self.cores)

        if ncores == 1:
            hits, valid, owners = lru_batch(
                lanes, tags, num_sets, geometry.ways, need_state=True
            )
            levels[llc_idx[hits]] = 2
            occupancy = _occupancy_from_state(valid, None)
            self.fallback_reason = None
            return self._collect_from_levels(levels, bounds, occupancy)

        lat_llc = np.int64(config.latency.llc_hit)
        lat_mem = np.int64(config.latency.memory)
        # Schedule base: clock *before* the LLC access at core-stream
        # index p is p*gap + (private latencies of earlier accesses) +
        # (LLC latencies of earlier LLC accesses); only the last term
        # depends on outcomes, so everything else is precomputed here.
        private_lat = self._private_latencies(levels)
        base_parts: List[np.ndarray] = []
        seg_lengths: List[int] = []
        for core in self.cores:
            lo, hi = int(bounds[core.core_id]), int(bounds[core.core_id + 1])
            in_core = (llc_idx >= lo) & (llc_idx < hi)
            pos = llc_idx[in_core] - lo
            lat_c = private_lat[lo:hi]
            prefix = np.cumsum(lat_c)
            prefix -= lat_c
            core_base = pos * np.int64(core.gap)
            core_base += prefix[pos]
            base_parts.append(core_base)
            seg_lengths.append(int(pos.shape[0]))
        base = np.concatenate(base_parts)
        n_llc = int(lanes.shape[0])
        # Unique, order-faithful sort keys: (sched, core, within-core
        # seq) packed into one int64.  sched strictly increases within a
        # core (every step advances the clock) so the seq term only
        # breaks zero-latency degeneracies, and the engine breaks clock
        # ties across cores by lowest core id — min() returns the first
        # minimum over the core list.  Unique keys make the (unstable)
        # default argsort order-exact.
        if n_llc == 0:
            self.fallback_reason = None
            return self._collect_from_levels(levels, bounds, {})
        seq = np.concatenate(
            [np.arange(length, dtype=np.int64) for length in seg_lengths]
        )
        seq_bits = max(1, (max(seg_lengths) - 1).bit_length())
        seg_starts = np.minimum(
            np.concatenate(([0], np.cumsum(seg_lengths)))[:-1], n_llc - 1
        )
        outcomes = np.zeros(n_llc, dtype=bool)  # initial guess: all miss
        converged = False
        order = np.arange(n_llc, dtype=np.int64)
        for _ in range(MAX_FIXED_POINT_ITERATIONS):
            llc_lat = np.where(outcomes, lat_llc, lat_mem)
            # Per-core exclusive cumulative LLC latency: global
            # exclusive cumsum rebased at each core's segment start.
            excl = np.cumsum(llc_lat)
            excl -= llc_lat
            excl -= np.repeat(excl[seg_starts], seg_lengths)
            sched = base + excl
            key = sched * np.int64(ncores)
            key += sub_cores
            key <<= np.int64(seq_bits)
            key |= seq
            order = np.argsort(key)
            hits_sorted, _, _ = lru_batch(
                lanes[order], tags[order], num_sets, geometry.ways
            )
            new_outcomes = np.empty(n_llc, dtype=bool)
            new_outcomes[order] = hits_sorted
            if np.array_equal(new_outcomes, outcomes):
                converged = True
                break
            outcomes = new_outcomes
        if not converged:
            return None
        hits_sorted, valid, owners = lru_batch(
            lanes[order], tags[order], num_sets, geometry.ways,
            cores=sub_cores[order],
        )
        final = np.empty(n_llc, dtype=bool)
        final[order] = hits_sorted
        levels[llc_idx[final]] = 2
        occupancy = _occupancy_from_state(valid, owners)  # type: ignore[arg-type]
        self.fallback_reason = None
        return self._collect_from_levels(levels, bounds, occupancy)

    # -- LLC resolution: hybrid path --------------------------------------

    def _resolve_llc_hybrid(
        self,
        all_blocks: np.ndarray,
        llc_idx: np.ndarray,
        levels: np.ndarray,
        bounds: np.ndarray,
    ) -> SimResult:
        """Drive the real LLC object in exact global order.

        Private levels are already vectorized; the surviving accesses
        are replayed one at a time against ``self.llc`` /
        ``self.memory`` with exact python-int clocks, in the same
        (clock, core-id) order the scalar engine's min-scan produces.
        Epoch hooks fire inside ``llc.access`` exactly as they do in a
        scalar run.
        """
        llc = self.llc
        memory = self.memory
        lat_llc = self.config.latency.llc_hit
        private_lat = self._private_latencies(levels)
        ncores = len(self.cores)
        per_core: List[Dict[str, object]] = []
        for core in self.cores:
            lo, hi = int(bounds[core.core_id]), int(bounds[core.core_id + 1])
            mask = (llc_idx >= lo) & (llc_idx < hi)
            pos = (llc_idx[mask] - lo)
            lat_c = private_lat[lo:hi]
            prefix = np.cumsum(lat_c)
            prefix -= lat_c
            base = (pos * np.int64(core.gap) + prefix[pos]).tolist()
            pos_list = pos.tolist()
            per_core.append({
                "base": base,
                "blocks": [core._blocks[p] for p in pos_list],
                "pcs": [core._pcs[p] for p in pos_list],
                "writes": [core._writes[p] for p in pos_list],
                "pos": pos_list,
                "out": [0] * len(pos_list),
                "hit": [False] * len(pos_list),
            })
        cursor = [0] * ncores
        cum = [0] * ncores
        remaining = sum(len(state["pos"]) for state in per_core)  # type: ignore[arg-type]
        while remaining:
            best_clock = -1
            best_core = -1
            for cid in range(ncores):
                i = cursor[cid]
                state = per_core[cid]
                if i >= len(state["pos"]):  # type: ignore[arg-type]
                    continue
                clock = state["base"][i] + cum[cid]  # type: ignore[index]
                if best_core < 0 or clock < best_clock:
                    best_clock = clock
                    best_core = cid
            state = per_core[best_core]
            i = cursor[best_core]
            hit = llc.access(
                state["blocks"][i], best_core,  # type: ignore[index]
                state["pcs"][i], state["writes"][i],  # type: ignore[index]
            )
            latency = lat_llc if hit else memory.service(best_clock)
            state["out"][i] = latency  # type: ignore[index]
            state["hit"][i] = hit  # type: ignore[index]
            cum[best_core] += latency
            cursor[best_core] += 1
            remaining -= 1
        # Fold outcomes back into the level codes.
        for cid, state in enumerate(per_core):
            lo = int(bounds[cid])
            pos_arr = np.asarray(state["pos"], dtype=np.int64)
            hit_arr = np.asarray(state["hit"], dtype=bool)
            levels[lo + pos_arr[hit_arr]] = 2
        extra: Dict[str, float] = {}
        deli_hits = getattr(llc, "deli_hits", None)
        if deli_hits is not None:
            extra["deli_hits"] = float(deli_hits)
            extra["retentions"] = float(getattr(llc, "retentions", 0))
        hybrid_lat = [
            np.asarray(state["out"], dtype=np.int64) for state in per_core
        ]
        hybrid_pos = [
            np.asarray(state["pos"], dtype=np.int64) for state in per_core
        ]
        return self._collect_from_levels(
            levels, bounds, llc.occupancy_by_core(), extra=extra,
            llc_lat_override=(hybrid_pos, hybrid_lat),
        )

    # -- shared result assembly -------------------------------------------

    def _private_latencies(self, levels: np.ndarray) -> np.ndarray:
        """Per-access latency of L1/L2 hits (0 for LLC-bound accesses)."""
        latency = self.config.latency
        private = np.zeros(levels.shape[0], dtype=np.int64)
        private[levels == 0] = latency.l1_hit
        private[levels == 1] = latency.l2_hit
        return private

    def _collect_from_levels(
        self,
        levels: np.ndarray,
        bounds: np.ndarray,
        occupancy: Dict[int, int],
        extra: Optional[Dict[str, float]] = None,
        llc_lat_override: Optional[Tuple[List[np.ndarray], List[np.ndarray]]] = None,
    ) -> SimResult:
        """Assemble a byte-identical ``SimResult`` from level codes.

        Reimplements the scalar per-core bookkeeping in closed form:
        clock after access ``i`` is ``(i+1)*gap + cumsum(latency)[i]``,
        the warmup clock is the clock after the last warmup access, and
        the derived metrics use the exact same integer/float formulas
        as :class:`~repro.sim.core.CoreModel`.
        """
        latency = self.config.latency
        lat_table = np.array(
            [latency.l1_hit, latency.l2_hit, latency.llc_hit, latency.memory],
            dtype=np.int64,
        )
        results: List[CoreResult] = []
        for core in self.cores:
            cid = core.core_id
            lo, hi = int(bounds[cid]), int(bounds[cid + 1])
            lv = levels[lo:hi]
            lat = lat_table[lv]
            if llc_lat_override is not None:
                pos_arr, lat_arr = llc_lat_override
                lat[pos_arr[cid]] = lat_arr[cid]
            gap = core.gap
            lat += np.int64(gap)
            clocks = np.cumsum(lat)
            n = hi - lo
            warm = core.warmup_accesses
            completion = int(clocks[n - 1])
            warmup_clock = int(clocks[warm - 1]) if warm > 0 else 0
            measured = np.bincount(lv[warm:], minlength=4)
            counts = {
                LEVEL_L1: int(measured[0]),
                LEVEL_L2: int(measured[1]),
                LEVEL_LLC: int(measured[2]),
                LEVEL_MEMORY: int(measured[3]),
            }
            cycles = max(0, completion - warmup_clock)
            executed = (n - warm) * (gap + 1)
            llc_misses = counts[LEVEL_MEMORY]
            results.append(CoreResult(
                core_id=cid,
                workload=core.trace.name,
                instructions=executed,
                cycles=cycles,
                ipc=executed / cycles if cycles else 0.0,
                mpki=1000.0 * llc_misses / max(1, executed),
                llc_accesses=counts[LEVEL_LLC] + llc_misses,
                llc_misses=llc_misses,
                level_counts=counts,
            ))
            # Mirror the scalar core's terminal state so post-run
            # introspection (tests, debugging) sees a finished core.
            core.completion_clock = completion
            core.warmup_clock = warmup_clock
            core.clock = completion
            core.passes = 1
            core.level_counts = dict(counts)
        return SimResult(
            policy=self.llc.name,
            cores=results,
            llc_occupancy_by_core=dict(occupancy),
            llc_extra=dict(extra or {}),
        )
