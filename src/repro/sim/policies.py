"""Factory for shared-LLC organizations by name.

Central registry so experiments, the CLI and tests all build LLCs the
same way.  The names are the ones used throughout EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cache.cache import LastLevelCache, SetAssociativeCache
from repro.cache.replacement.basic import (
    fifo_factory,
    lip_factory,
    lru_factory,
    nru_factory,
    plru_factory,
    random_factory,
)
from repro.cache.replacement.dip import bip_factory, dip_factory, tadip_factory
from repro.cache.replacement.rrip import brrip_factory, drrip_factory, srrip_factory
from repro.cache.replacement.deadblock import sdbp_factory
from repro.cache.replacement.ship import ship_factory
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.nucache.organization import NUCache
from repro.nucache.partitioned import PartitionedNUCache
from repro.partition.pipp import PIPPCache
from repro.partition.ucp import UCPCache

#: Builder signature: (config, seed) -> LastLevelCache.
LLCBuilder = Callable[[SystemConfig, int], LastLevelCache]


def _plain(name: str, factory_builder: Callable) -> LLCBuilder:
    def build(config: SystemConfig, seed: int) -> LastLevelCache:
        return SetAssociativeCache(config.llc, factory_builder(), name)

    return build


def _seeded(name: str, factory_builder: Callable) -> LLCBuilder:
    def build(config: SystemConfig, seed: int) -> LastLevelCache:
        return SetAssociativeCache(config.llc, factory_builder(seed), name)

    return build


def _build_tadip(config: SystemConfig, seed: int) -> LastLevelCache:
    return SetAssociativeCache(
        config.llc, tadip_factory(config.num_cores, seed), "tadip"
    )


def _build_ucp(config: SystemConfig, seed: int) -> LastLevelCache:
    return UCPCache(config.llc, config.num_cores)


def _build_pipp(config: SystemConfig, seed: int) -> LastLevelCache:
    return PIPPCache(config.llc, config.num_cores, seed=seed)


def _build_nucache(config: SystemConfig, seed: int) -> LastLevelCache:
    return NUCache(config.llc, config.nucache)


def _build_nucache_ucp(config: SystemConfig, seed: int) -> LastLevelCache:
    return PartitionedNUCache(config.llc, config.nucache, config.num_cores)


_REGISTRY: Dict[str, LLCBuilder] = {
    "lru": _plain("lru", lru_factory),
    "fifo": _plain("fifo", fifo_factory),
    "nru": _plain("nru", nru_factory),
    "plru": _plain("plru", plru_factory),
    "lip": _plain("lip", lip_factory),
    "srrip": _plain("srrip", srrip_factory),
    "random": _seeded("random", random_factory),
    "bip": _seeded("bip", bip_factory),
    "dip": _seeded("dip", dip_factory),
    "brrip": _seeded("brrip", brrip_factory),
    "drrip": _seeded("drrip", drrip_factory),
    "tadip": _build_tadip,
    "ucp": _build_ucp,
    "pipp": _build_pipp,
    "nucache": _build_nucache,
    "nucache-ucp": _build_nucache_ucp,
    "ship": lambda config, seed: SetAssociativeCache(
        config.llc, ship_factory(bypass=False), "ship"
    ),
    "ship-bypass": lambda config, seed: SetAssociativeCache(
        config.llc, ship_factory(bypass=True), "ship-bypass"
    ),
    "sdbp": lambda config, seed: SetAssociativeCache(
        config.llc, sdbp_factory(), "sdbp"
    ),
}


def policy_names() -> List[str]:
    """All registered LLC organization names, sorted."""
    return sorted(_REGISTRY)


def make_llc(policy: str, config: SystemConfig, seed: int = 0) -> LastLevelCache:
    """Build a shared LLC organization by name."""
    try:
        builder = _REGISTRY[policy]
    except KeyError:
        raise ConfigError(
            f"unknown LLC policy {policy!r}; known: {', '.join(policy_names())}"
        ) from None
    return builder(config, seed)
