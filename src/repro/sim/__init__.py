"""Trace-driven multicore simulator."""

from repro.sim.core import CoreModel
from repro.sim.engine import CoreResult, MulticoreEngine, SimResult
from repro.sim.memory import BandwidthLimitedMemory, FixedLatencyMemory
from repro.sim.policies import make_llc, policy_names
from repro.sim.runner import (
    DEFAULT_ACCESSES,
    alone_ipc,
    alone_ipcs_for_mix,
    clear_alone_memo,
    make_traces,
    run_mix,
    run_single,
    run_workload,
)

__all__ = [
    "BandwidthLimitedMemory",
    "CoreModel",
    "CoreResult",
    "DEFAULT_ACCESSES",
    "FixedLatencyMemory",
    "MulticoreEngine",
    "SimResult",
    "alone_ipc",
    "alone_ipcs_for_mix",
    "clear_alone_memo",
    "make_llc",
    "make_traces",
    "policy_names",
    "run_mix",
    "run_single",
    "run_workload",
]
