"""Per-core model: private caches, local clock, trace cursor.

Each core replays its trace in order through its private L1 and L2 into
the shared LLC.  The core is in-order with a one-access-at-a-time memory
system: an access costs ``instruction_gap`` compute cycles (CPI = 1 on
non-memory instructions) plus the latency of the level that serviced it.
This is the standard trace-driven approximation for LLC-policy studies —
see DESIGN.md's substitution table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.cache import (
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    LEVEL_MEMORY,
    LastLevelCache,
    SetAssociativeCache,
)
from repro.cache.replacement.basic import lru_factory
from repro.common.addr import log2_exact
from repro.common.config import LatencyConfig, SystemConfig
from repro.prefetch.prefetchers import PREFETCH_PC, Prefetcher
from repro.sim.memory import FixedLatencyMemory
from repro.workloads.trace import Trace


class CoreModel:
    """One core: trace cursor, private hierarchy, local clock, counters.

    The first ``warmup_accesses`` accesses warm the caches without being
    measured (the paper's warm-then-measure methodology): statistics and
    the IPC window start after them.
    """

    def __init__(self, core_id: int, trace: Trace, config: SystemConfig,
                 warmup_accesses: int = 0,
                 prefetcher: Optional[Prefetcher] = None) -> None:
        if not 0 <= warmup_accesses < len(trace):
            raise ValueError(
                f"warmup_accesses must be in [0, {len(trace)}), got {warmup_accesses}"
            )
        self.core_id = core_id
        self.trace = trace
        self.warmup_accesses = warmup_accesses
        self.prefetcher = prefetcher
        self.l1 = SetAssociativeCache(config.l1, lru_factory(), f"l1.{core_id}")
        self.l2 = SetAssociativeCache(config.l2, lru_factory(), f"l2.{core_id}")
        self.latency: LatencyConfig = config.latency
        # Hit latencies flattened out of the frozen dataclass: step()
        # reads one per access and dataclass attribute access is two
        # lookups deep.
        self._lat_l1 = config.latency.l1_hit
        self._lat_l2 = config.latency.l2_hit
        self._lat_llc = config.latency.llc_hit
        self.gap = trace.instruction_gap

        block_shift = log2_exact(config.block_bytes)
        self._blocks: List[int] = (trace.addresses >> block_shift).tolist()
        self._pcs: List[int] = trace.pcs.tolist()
        self._writes: List[bool] = trace.is_write.tolist()

        self.cursor = 0
        self.clock = 0
        self.level_counts: Dict[str, int] = {
            LEVEL_L1: 0, LEVEL_L2: 0, LEVEL_LLC: 0, LEVEL_MEMORY: 0,
        }
        #: Clock at which the first full pass over the trace completed
        #: (-1 while still in the first pass).
        self.completion_clock = -1
        #: Clock at which the warmup window ended (0 if no warmup).
        self.warmup_clock = 0
        self.passes = 0

    @property
    def trace_length(self) -> int:
        """Accesses per pass."""
        return len(self._blocks)

    @property
    def first_pass_done(self) -> bool:
        """Whether the measured (first) pass has completed."""
        return self.completion_clock >= 0

    @property
    def measured_accesses(self) -> int:
        """Accesses in the measured window of one pass."""
        return self.trace_length - self.warmup_accesses

    @property
    def instructions(self) -> int:
        """Instructions represented by the measured window of one pass."""
        return self.measured_accesses * (self.gap + 1)

    def step(self, llc: LastLevelCache, memory: FixedLatencyMemory) -> str:
        """Execute the next access; returns the servicing level.

        Advances the local clock by the compute gap plus the access
        latency.  After the last access of a pass the cursor wraps so
        early finishers keep generating contention (their statistics are
        frozen at :attr:`completion_clock`).
        """
        index = self.cursor
        block = self._blocks[index]
        pc = self._pcs[index]
        is_write = self._writes[index]
        core = self.core_id

        if self.l1.access(block, core, pc, is_write):
            level = LEVEL_L1
            latency = self._lat_l1
        elif self.l2.access(block, core, pc, is_write):
            level = LEVEL_L2
            latency = self._lat_l2
        elif llc.access(block, core, pc, is_write):
            level = LEVEL_LLC
            latency = self._lat_llc
        else:
            level = LEVEL_MEMORY
            latency = memory.service(self.clock)

        if self.prefetcher is not None and level != LEVEL_L1:
            self._issue_prefetches(block, pc, level == LEVEL_MEMORY, llc)

        self.clock += self.gap + latency
        if not self.first_pass_done and index >= self.warmup_accesses:
            self.level_counts[level] += 1

        self.cursor = index + 1
        if self.cursor == self.warmup_accesses and self.passes == 0:
            self.warmup_clock = self.clock
        if self.cursor >= self.trace_length:
            self.cursor = 0
            self.passes += 1
            if self.completion_clock < 0:
                self.completion_clock = self.clock
        return level

    def _issue_prefetches(self, block: int, pc: int, was_miss: bool,
                          llc: LastLevelCache) -> None:
        """Train the prefetcher and install its candidates.

        Prefetch fills go to the L2 and the shared LLC with the reserved
        prefetch PC and are not charged to the core's clock (hardware
        prefetch is off the critical path); their effect on cache
        contents — the part the policy study cares about — is real.
        """
        for candidate in self.prefetcher.observe(block, pc, was_miss):
            if candidate < 0:
                continue
            if not self.l2.probe(candidate):
                self.l2.access(candidate, self.core_id, PREFETCH_PC, False)
                llc.access(candidate, self.core_id, PREFETCH_PC, False)

    # ------------------------------------------------------------------
    # Derived metrics for the measured pass
    # ------------------------------------------------------------------

    def cycles(self) -> int:
        """Cycles of the measured window (current span if unfinished)."""
        end = self.completion_clock if self.first_pass_done else self.clock
        return max(0, end - self.warmup_clock)

    def _executed_accesses(self) -> int:
        if self.first_pass_done:
            return self.measured_accesses
        return max(0, self.cursor - self.warmup_accesses)

    def ipc(self) -> float:
        """Instructions per cycle over the measured window."""
        executed = self._executed_accesses() * (self.gap + 1)
        cycles = self.cycles()
        return executed / cycles if cycles else 0.0

    def llc_accesses(self) -> int:
        """Accesses that reached the LLC during the measured pass."""
        return self.level_counts[LEVEL_LLC] + self.level_counts[LEVEL_MEMORY]

    def llc_misses(self) -> int:
        """LLC misses during the measured pass."""
        return self.level_counts[LEVEL_MEMORY]

    def mpki(self) -> float:
        """LLC misses per thousand instructions over the measured window."""
        executed = max(1, self._executed_accesses() * (self.gap + 1))
        return 1000.0 * self.llc_misses() / executed
