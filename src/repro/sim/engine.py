"""The multicore trace-driven engine.

Cores progress on local clocks; at every step the engine advances the
core with the *smallest* clock, so accesses from different cores reach
the shared LLC in global time order.  A core that finishes its trace
wraps around and keeps running (to keep contention realistic for the
slower cores) but its statistics freeze at the end of its first pass —
the standard multiprogrammed methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cache.cache import LastLevelCache
from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.prefetch.prefetchers import Prefetcher
from repro.sim.core import CoreModel
from repro.sim.memory import FixedLatencyMemory
from repro.workloads.trace import Trace


@dataclass
class CoreResult:
    """Measured-pass results for one core."""

    core_id: int
    workload: str
    instructions: int
    cycles: int
    ipc: float
    mpki: float
    llc_accesses: int
    llc_misses: int
    level_counts: Dict[str, int]

    @property
    def llc_hit_rate(self) -> float:
        """LLC hit rate over the measured pass."""
        if self.llc_accesses == 0:
            return 0.0
        return 1.0 - self.llc_misses / self.llc_accesses

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (exact round-trip)."""
        return {
            "core_id": self.core_id,
            "workload": self.workload,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "mpki": self.mpki,
            "llc_accesses": self.llc_accesses,
            "llc_misses": self.llc_misses,
            "level_counts": dict(self.level_counts),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CoreResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            core_id=int(payload["core_id"]),
            workload=str(payload["workload"]),
            instructions=int(payload["instructions"]),
            cycles=int(payload["cycles"]),
            ipc=float(payload["ipc"]),
            mpki=float(payload["mpki"]),
            llc_accesses=int(payload["llc_accesses"]),
            llc_misses=int(payload["llc_misses"]),
            level_counts={str(k): int(v) for k, v in payload["level_counts"].items()},
        )


@dataclass
class SimResult:
    """Results of one multicore (or single-core) simulation."""

    policy: str
    cores: List[CoreResult]
    llc_occupancy_by_core: Dict[int, int] = field(default_factory=dict)
    llc_extra: Dict[str, float] = field(default_factory=dict)

    def core(self, core_id: int) -> CoreResult:
        """Result for one core."""
        for result in self.cores:
            if result.core_id == core_id:
                return result
        raise SimulationError(f"no result for core {core_id}")

    @property
    def ipcs(self) -> List[float]:
        """Per-core IPCs in core order."""
        return [result.ipc for result in self.cores]

    @property
    def total_llc_misses(self) -> int:
        """Total measured LLC misses across cores."""
        return sum(result.llc_misses for result in self.cores)

    def validate(self, job=None) -> List[str]:
        """Engine-invariant violations of this result (empty == valid).

        Delegates to :func:`repro.exec.validate.validate_result`; the
        optional ``job`` enables spec-consistency checks.  Imported
        lazily so the sim layer stays independent of the exec layer.
        """
        from repro.exec.validate import validate_result

        return validate_result(self, job)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (exact round-trip).

        Occupancy keys become strings (JSON objects cannot have integer
        keys); :meth:`from_dict` converts them back.
        """
        return {
            "policy": self.policy,
            "cores": [core.to_dict() for core in self.cores],
            "llc_occupancy_by_core": {
                str(core_id): count
                for core_id, count in self.llc_occupancy_by_core.items()
            },
            "llc_extra": dict(self.llc_extra),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            policy=str(payload["policy"]),
            cores=[CoreResult.from_dict(core) for core in payload["cores"]],
            llc_occupancy_by_core={
                int(core_id): int(count)
                for core_id, count in payload["llc_occupancy_by_core"].items()
            },
            llc_extra={str(k): float(v) for k, v in payload["llc_extra"].items()},
        )


class MulticoreEngine:
    """Runs a set of traces against one shared LLC organization."""

    def __init__(
        self,
        traces: Sequence[Trace],
        llc: LastLevelCache,
        config: SystemConfig,
        memory: Optional[FixedLatencyMemory] = None,
        warmup_fraction: float = 0.0,
        prefetchers: Optional[Sequence[Optional[Prefetcher]]] = None,
    ) -> None:
        if not traces:
            raise SimulationError("need at least one trace")
        if len(traces) != config.num_cores:
            raise SimulationError(
                f"got {len(traces)} traces for {config.num_cores} cores"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        if prefetchers is not None and len(prefetchers) != len(traces):
            raise SimulationError(
                f"got {len(prefetchers)} prefetchers for {len(traces)} cores"
            )
        self.llc = llc
        self.config = config
        self.memory = memory or FixedLatencyMemory(config.latency.memory)
        self.cores = [
            CoreModel(core_id, trace, config,
                      warmup_accesses=int(len(trace) * warmup_fraction),
                      prefetcher=None if prefetchers is None else prefetchers[core_id])
            for core_id, trace in enumerate(traces)
        ]

    def run(self, max_steps: Optional[int] = None) -> SimResult:
        """Run until every core completes its first pass.

        Args:
            max_steps: safety valve for tests; ``None`` means run to
                completion (guaranteed to terminate since every step
                advances some core's cursor).
        """
        cores = self.cores
        llc = self.llc
        memory = self.memory
        pending = [core for core in cores if not core.first_pass_done]
        steps = 0
        while pending:
            runner = min(pending, key=_clock_of)
            runner.step(llc, memory)
            if runner.first_pass_done:
                pending = [core for core in cores if not core.first_pass_done]
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        return self._collect()

    def _collect(self) -> SimResult:
        core_results = [
            CoreResult(
                core_id=core.core_id,
                workload=core.trace.name,
                instructions=core.instructions,
                cycles=core.cycles(),
                ipc=core.ipc(),
                mpki=core.mpki(),
                llc_accesses=core.llc_accesses(),
                llc_misses=core.llc_misses(),
                level_counts=dict(core.level_counts),
            )
            for core in self.cores
        ]
        extra: Dict[str, float] = {}
        deli_hits = getattr(self.llc, "deli_hits", None)
        if deli_hits is not None:
            extra["deli_hits"] = float(deli_hits)
            extra["retentions"] = float(getattr(self.llc, "retentions", 0))
        return SimResult(
            policy=self.llc.name,
            cores=core_results,
            llc_occupancy_by_core=self.llc.occupancy_by_core(),
            llc_extra=extra,
        )


def _clock_of(core: CoreModel) -> int:
    return core.clock
