"""The multicore trace-driven engine.

Cores progress on local clocks; at every step the engine advances the
core with the *smallest* clock, so accesses from different cores reach
the shared LLC in global time order.  A core that finishes its trace
wraps around and keeps running (to keep contention realistic for the
slower cores) but its statistics freeze at the end of its first pass —
the standard multiprogrammed methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cache.cache import LastLevelCache
from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.prefetch.prefetchers import Prefetcher
from repro.sim.core import CoreModel
from repro.sim.memory import FixedLatencyMemory
from repro.workloads.trace import Trace


@dataclass
class CoreResult:
    """Measured-pass results for one core."""

    core_id: int
    workload: str
    instructions: int
    cycles: int
    ipc: float
    mpki: float
    llc_accesses: int
    llc_misses: int
    level_counts: Dict[str, int]

    @property
    def llc_hit_rate(self) -> float:
        """LLC hit rate over the measured pass."""
        if self.llc_accesses == 0:
            return 0.0
        return 1.0 - self.llc_misses / self.llc_accesses

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (exact round-trip)."""
        return {
            "core_id": self.core_id,
            "workload": self.workload,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "mpki": self.mpki,
            "llc_accesses": self.llc_accesses,
            "llc_misses": self.llc_misses,
            "level_counts": dict(self.level_counts),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CoreResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            core_id=int(payload["core_id"]),
            workload=str(payload["workload"]),
            instructions=int(payload["instructions"]),
            cycles=int(payload["cycles"]),
            ipc=float(payload["ipc"]),
            mpki=float(payload["mpki"]),
            llc_accesses=int(payload["llc_accesses"]),
            llc_misses=int(payload["llc_misses"]),
            level_counts={str(k): int(v) for k, v in payload["level_counts"].items()},
        )


@dataclass
class SimResult:
    """Results of one multicore (or single-core) simulation."""

    policy: str
    cores: List[CoreResult]
    llc_occupancy_by_core: Dict[int, int] = field(default_factory=dict)
    llc_extra: Dict[str, float] = field(default_factory=dict)

    def core(self, core_id: int) -> CoreResult:
        """Result for one core."""
        for result in self.cores:
            if result.core_id == core_id:
                return result
        raise SimulationError(f"no result for core {core_id}")

    @property
    def ipcs(self) -> List[float]:
        """Per-core IPCs in core order."""
        return [result.ipc for result in self.cores]

    @property
    def total_llc_misses(self) -> int:
        """Total measured LLC misses across cores."""
        return sum(result.llc_misses for result in self.cores)

    def validate(self, job=None) -> List[str]:
        """Engine-invariant violations of this result (empty == valid).

        Delegates to :func:`repro.exec.validate.validate_result`; the
        optional ``job`` enables spec-consistency checks.  Imported
        lazily so the sim layer stays independent of the exec layer.
        """
        from repro.exec.validate import validate_result

        return validate_result(self, job)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (exact round-trip).

        Occupancy keys become strings (JSON objects cannot have integer
        keys); :meth:`from_dict` converts them back.
        """
        return {
            "policy": self.policy,
            "cores": [core.to_dict() for core in self.cores],
            "llc_occupancy_by_core": {
                str(core_id): count
                for core_id, count in self.llc_occupancy_by_core.items()
            },
            "llc_extra": dict(self.llc_extra),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            policy=str(payload["policy"]),
            cores=[CoreResult.from_dict(core) for core in payload["cores"]],
            llc_occupancy_by_core={
                int(core_id): int(count)
                for core_id, count in payload["llc_occupancy_by_core"].items()
            },
            llc_extra={str(k): float(v) for k, v in payload["llc_extra"].items()},
        )


class MulticoreEngine:
    """Runs a set of traces against one shared LLC organization."""

    def __init__(
        self,
        traces: Sequence[Trace],
        llc: LastLevelCache,
        config: SystemConfig,
        memory: Optional[FixedLatencyMemory] = None,
        warmup_fraction: float = 0.0,
        prefetchers: Optional[Sequence[Optional[Prefetcher]]] = None,
    ) -> None:
        if not traces:
            raise SimulationError("need at least one trace")
        if len(traces) != config.num_cores:
            raise SimulationError(
                f"got {len(traces)} traces for {config.num_cores} cores"
            )
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        if prefetchers is not None and len(prefetchers) != len(traces):
            raise SimulationError(
                f"got {len(prefetchers)} prefetchers for {len(traces)} cores"
            )
        self.llc = llc
        self.config = config
        self.memory = memory or FixedLatencyMemory(config.latency.memory)
        self.cores = [
            CoreModel(core_id, trace, config,
                      warmup_accesses=int(len(trace) * warmup_fraction),
                      prefetcher=None if prefetchers is None else prefetchers[core_id])
            for core_id, trace in enumerate(traces)
        ]

    def run(self, max_steps: Optional[int] = None) -> SimResult:
        """Run until every core completes its first pass.

        When tracing is enabled (see :mod:`repro.obs.trace`), phase
        boundaries — per-core warmup completion, NUcache selection
        epochs, first-pass completion — and sampled LLC counters are
        emitted along the way.  The observer only *reads* simulator
        state, so traced and untraced runs produce identical results;
        with tracing disabled ``observer`` is ``None`` and the loop pays
        one predicate per step.

        When invariant checking is enabled (``REPRO_CHECK=epoch`` or
        ``access``, see :mod:`repro.check.invariants`), the LLC's
        structural invariants are sanitized at the configured cadence
        and a violation raises
        :class:`~repro.common.errors.InvariantViolation`.  The checker
        is read-only too, so a checked run's results stay byte-identical
        to an unchecked one; with ``REPRO_CHECK=off`` (the default)
        ``checker`` is ``None`` and the fast loop is untouched.

        Args:
            max_steps: safety valve for tests; ``None`` means run to
                completion (guaranteed to terminate since every step
                advances some core's cursor).
        """
        from repro.check.invariants import engine_checker
        from repro.obs.trace import active_tracer

        cores = self.cores
        llc = self.llc
        memory = self.memory
        tracer = active_tracer()
        observer = None if tracer is None else _EngineObserver(self, tracer)
        checker = engine_checker(llc)
        pending = [core for core in cores if not core.first_pass_done]
        if observer is None and checker is None and max_steps is None:
            # Fast loop: no per-step observer/max_steps predicates, and
            # a lone pending core (every single-core run; the tail of
            # every multicore run) steps without the min() scan.  Step
            # order is identical to the instrumented loop: min() is
            # stable, so a lone pending core is what min() would pick.
            while pending:
                if len(pending) == 1:
                    runner = pending[0]
                    step = runner.step
                    while runner.completion_clock < 0:
                        step(llc, memory)
                else:
                    runner = min(pending, key=_clock_of)
                    runner.step(llc, memory)
                if runner.first_pass_done:
                    pending = [core for core in cores if not core.first_pass_done]
            return self._collect()
        steps = 0
        while pending:
            runner = min(pending, key=_clock_of)
            runner.step(llc, memory)
            if runner.first_pass_done:
                pending = [core for core in cores if not core.first_pass_done]
            steps += 1
            if observer is not None:
                observer.after_step(runner, steps)
            if checker is not None:
                checker.after_step(steps)
            if max_steps is not None and steps >= max_steps:
                break
        if observer is not None:
            observer.finish(steps)
        if checker is not None:
            checker.finish(steps)
        return self._collect()

    def _collect(self) -> SimResult:
        core_results = [
            CoreResult(
                core_id=core.core_id,
                workload=core.trace.name,
                instructions=core.instructions,
                cycles=core.cycles(),
                ipc=core.ipc(),
                mpki=core.mpki(),
                llc_accesses=core.llc_accesses(),
                llc_misses=core.llc_misses(),
                level_counts=dict(core.level_counts),
            )
            for core in self.cores
        ]
        extra: Dict[str, float] = {}
        deli_hits = getattr(self.llc, "deli_hits", None)
        if deli_hits is not None:
            extra["deli_hits"] = float(deli_hits)
            extra["retentions"] = float(getattr(self.llc, "retentions", 0))
        return SimResult(
            policy=self.llc.name,
            cores=core_results,
            llc_occupancy_by_core=self.llc.occupancy_by_core(),
            llc_extra=extra,
        )


#: Engine steps between sampled LLC counter emissions while tracing.
OBS_SAMPLE_STEPS = 4096


class _EngineObserver:
    """Emits phase/counter trace records for one engine run.

    Strictly read-only over the simulator: it watches per-core warmup
    and first-pass transitions, polls the NUcache controller's epoch
    counter, and samples the LLC's counter snapshot every
    :data:`OBS_SAMPLE_STEPS` steps.  Allocated only when a tracer is
    active, so untraced runs never pay for it.
    """

    def __init__(self, engine: "MulticoreEngine", tracer) -> None:
        self.tracer = tracer
        self.llc = engine.llc
        self.span = tracer.span(
            "sim.run",
            policy=engine.llc.name,
            cores=len(engine.cores),
            accesses_per_core=engine.cores[0].trace_length,
        )
        self._in_warmup = {
            core.core_id for core in engine.cores if core.warmup_accesses > 0
        }
        self._finished: set = set()
        controller = getattr(engine.llc, "controller", None)
        self._controller = controller
        self._epochs_seen = 0 if controller is None else controller.epochs_completed
        self._phase_started = self.span.elapsed

    def _emit_phase(self, phase: str) -> None:
        now = self.span.elapsed
        self.tracer.event("sim.phase", phase=phase, dur=now - self._phase_started)
        self._phase_started = now

    def after_step(self, runner: CoreModel, steps: int) -> None:
        """Observe one engine step (phase transitions, sampled counters)."""
        core_id = runner.core_id
        if core_id in self._in_warmup and (
            runner.warmup_clock > 0 or runner.passes > 0
        ):
            self._in_warmup.discard(core_id)
            self.tracer.event(
                "core.warmup_done", core=core_id, clock=runner.clock
            )
            if not self._in_warmup:
                self._emit_phase("warmup")
        if runner.first_pass_done and core_id not in self._finished:
            self._finished.add(core_id)
            self.tracer.event(
                "core.first_pass",
                core=core_id,
                clock=runner.clock,
                cycles=runner.cycles(),
            )
        controller = self._controller
        if controller is not None and controller.epochs_completed != self._epochs_seen:
            self._epochs_seen = controller.epochs_completed
            self.tracer.event(
                "nucache.epoch",
                epoch=self._epochs_seen,
                selected=len(controller.selected_slots),
            )
        if steps % OBS_SAMPLE_STEPS == 0:
            self.tracer.counter(
                "llc.counters", steps, **self.llc.snapshot_counters()
            )

    def finish(self, steps: int) -> None:
        """Close the run span after the loop ends."""
        if self._in_warmup:
            # max_steps cut the run short inside the warmup window.
            self._in_warmup.clear()
            self._emit_phase("warmup")
        self._emit_phase("measure")
        self.tracer.counter("llc.counters", steps, **self.llc.snapshot_counters())
        self.span.done(steps=steps)


def _clock_of(core: CoreModel) -> int:
    return core.clock
