"""Access-pattern primitives for the synthetic workload generator.

Each pattern models one *static access site* family — the accesses a
small group of load/store PCs would issue — as a stateful stream that
can produce its next ``count`` byte addresses as a vector.  Patterns are
deterministic given their construction parameters and the generator's
RNG, and they are the knobs through which the synthetic benchmarks
obtain (or avoid) the two properties NUcache exploits: miss
concentration in few PCs and short post-eviction next-use distances.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.common.errors import WorkloadError

#: All patterns issue block-granular addresses with this default stride.
DEFAULT_STRIDE = 64


class AccessPattern(ABC):
    """A stateful generator of byte addresses within one region."""

    def __init__(self, base: int, region_bytes: int) -> None:
        if base < 0:
            raise WorkloadError(f"region base must be >= 0, got {base}")
        if region_bytes <= 0:
            raise WorkloadError(f"region size must be positive, got {region_bytes}")
        self.base = base
        self.region_bytes = region_bytes

    @abstractmethod
    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Produce the next ``count`` byte addresses (int64 vector)."""

    def _check_count(self, count: int) -> None:
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")


class StridedLoop(AccessPattern):
    """A strided walk that wraps at the region boundary.

    With a region much larger than the cache this is a *stream* (no
    temporal reuse at cache timescales); with a modest region it is a
    *loop* whose reuse distance equals the region's footprint — the
    canonical delinquent-PC shape when the footprint slightly exceeds
    what LRU can hold.
    """

    def __init__(self, base: int, region_bytes: int, stride: int = DEFAULT_STRIDE) -> None:
        super().__init__(base, region_bytes)
        if stride <= 0:
            raise WorkloadError(f"stride must be positive, got {stride}")
        if region_bytes % stride != 0:
            raise WorkloadError(
                f"region ({region_bytes}) must be a multiple of stride ({stride})"
            )
        self.stride = stride
        self._cursor = 0

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(count)
        steps = self.region_bytes // self.stride
        offsets = (self._cursor + np.arange(count, dtype=np.int64)) % steps
        self._cursor = (self._cursor + count) % steps
        return self.base + offsets * self.stride


class UniformRandom(AccessPattern):
    """Uniformly random block-aligned accesses within the region.

    Reuse distances are geometric in the region size: a region a few
    times the cache gives occasional, hard-to-time reuse (the "mcf"
    flavour of badness); a region smaller than the cache is friendly.
    """

    def __init__(self, base: int, region_bytes: int, block_bytes: int = DEFAULT_STRIDE) -> None:
        super().__init__(base, region_bytes)
        if region_bytes < block_bytes:
            raise WorkloadError(
                f"region ({region_bytes}) smaller than one block ({block_bytes})"
            )
        self.block_bytes = block_bytes

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(count)
        blocks = self.region_bytes // self.block_bytes
        picks = rng.integers(0, blocks, size=count, dtype=np.int64)
        return self.base + picks * self.block_bytes


class PointerChase(AccessPattern):
    """A walk along a fixed random permutation cycle over the region.

    Every block is visited exactly once per lap (like a loop) but in an
    address order with no spatial structure — the dependent-load shape.
    The permutation is drawn once at construction so the chase is
    repeatable lap after lap.
    """

    def __init__(
        self,
        base: int,
        region_bytes: int,
        rng: np.random.Generator,
        block_bytes: int = DEFAULT_STRIDE,
    ) -> None:
        super().__init__(base, region_bytes)
        blocks = region_bytes // block_bytes
        if blocks <= 0:
            raise WorkloadError(f"region ({region_bytes}) holds no blocks")
        self.block_bytes = block_bytes
        self._order = rng.permutation(blocks).astype(np.int64)
        self._cursor = 0

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(count)
        blocks = len(self._order)
        positions = (self._cursor + np.arange(count, dtype=np.int64)) % blocks
        self._cursor = (self._cursor + count) % blocks
        return self.base + self._order[positions] * self.block_bytes


class HotSpot(AccessPattern):
    """Skewed accesses over a small region (approximate Zipf).

    Models stack/globals traffic: almost always hits the upper levels,
    contributing the high-hit-rate PC population that makes delinquent
    PCs a small *fraction* of all PCs.
    """

    def __init__(
        self,
        base: int,
        region_bytes: int,
        block_bytes: int = DEFAULT_STRIDE,
        skew: float = 1.2,
    ) -> None:
        super().__init__(base, region_bytes)
        if skew <= 0:
            raise WorkloadError(f"skew must be positive, got {skew}")
        blocks = max(1, region_bytes // block_bytes)
        ranks = np.arange(1, blocks + 1, dtype=np.float64)
        weights = ranks ** (-skew)
        self._cdf = np.cumsum(weights / weights.sum())
        self.block_bytes = block_bytes

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(count)
        picks = np.searchsorted(self._cdf, rng.random(count)).astype(np.int64)
        return self.base + picks * self.block_bytes
