"""Catalog of SPEC-like synthetic benchmarks.

Each entry models the memory behaviour *class* of a well-known SPEC
CPU2000/2006 benchmark (names carry a ``_like`` suffix because only the
statistical shape is claimed, not the program).  Footprints are chosen
relative to the scaled evaluation machine (256 KB LLC per core — 4096
lines; 64 KB private L2 — 1024 lines; see DESIGN.md).

The classes, and why each exists in the study:

* **delinquent-friendly** (``art_like``, ``ammp_like``, ``soplex_like``,
  ``equake_like``): a loop whose footprint slightly exceeds what LRU can
  retain under the program's own streaming traffic — short post-eviction
  next-use, exactly the property NUcache converts into DeliWay hits.
* **streaming** (``swim_like``, ``libquantum_like``, ``lbm_like``,
  ``milc_like``): the LLC is nearly useless; a policy must avoid losing
  capacity to these.
* **irregular** (``mcf_like``, ``omnetpp_like``): pointer chases and
  large random regions; high miss PCs whose next use is *far* — the case
  where naive "retain the top missers" fails but cost-benefit selection
  correctly declines.
* **cache-friendly** (``h264_like``, ``hmmer_like``, ``twolf_like``,
  ``gcc_like``): most reuse is captured by LRU already; a good policy
  must not regress them.
* **partition-friendly** (``sphinx_like``, ``vortex_like``): fit the LLC
  when alone but are destroyed by sharing — the case UCP/PIPP exist for.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import WorkloadError
from repro.workloads.synthetic import BenchmarkSpec, StreamSpec

KB = 1024
MB = 1024 * KB

_CATALOG: Dict[str, BenchmarkSpec] = {}
_CLASSES: Dict[str, str] = {}


def _register(spec: BenchmarkSpec, klass: str) -> None:
    _CATALOG[spec.name] = spec
    _CLASSES[spec.name] = klass


# --- delinquent-friendly -------------------------------------------------

_register(
    BenchmarkSpec(
        "art_like",
        (
            StreamSpec("loop", region_bytes=112 * KB, weight=0.30, num_pcs=1),
            StreamSpec("loop", region_bytes=64 * MB, weight=0.55, num_pcs=1),
            StreamSpec("hot", region_bytes=8 * KB, weight=0.15),
        ),
        instruction_gap=2,
    ),
    "delinquent",
)

_register(
    BenchmarkSpec(
        "ammp_like",
        (
            StreamSpec("loop", region_bytes=224 * KB, weight=0.40, num_pcs=2),
            StreamSpec("loop", region_bytes=64 * MB, weight=0.40, num_pcs=1),
            StreamSpec("hot", region_bytes=8 * KB, weight=0.20),
        ),
        instruction_gap=2,
    ),
    "delinquent",
)

_register(
    BenchmarkSpec(
        "soplex_like",
        (
            StreamSpec("loop", region_bytes=200 * KB, weight=0.40, num_pcs=2),
            StreamSpec("random", region_bytes=2 * MB, weight=0.25),
            StreamSpec("hot", region_bytes=16 * KB, weight=0.35),
        ),
        instruction_gap=3,
    ),
    "delinquent",
)

_register(
    BenchmarkSpec(
        "equake_like",
        (
            StreamSpec("chase", region_bytes=128 * KB, weight=0.33),
            StreamSpec("loop", region_bytes=64 * MB, weight=0.45, num_pcs=2),
            StreamSpec("hot", region_bytes=8 * KB, weight=0.22),
        ),
        instruction_gap=2,
    ),
    "delinquent",
)

# --- streaming -----------------------------------------------------------

_register(
    BenchmarkSpec(
        "swim_like",
        (
            StreamSpec("loop", region_bytes=64 * MB, weight=0.40, num_pcs=1),
            StreamSpec("loop", region_bytes=48 * MB, weight=0.35, num_pcs=2),
            StreamSpec("hot", region_bytes=8 * KB, weight=0.25),
        ),
        instruction_gap=2,
    ),
    "streaming",
)

_register(
    BenchmarkSpec(
        "libquantum_like",
        (
            StreamSpec("loop", region_bytes=96 * MB, weight=0.75, num_pcs=1),
            StreamSpec("hot", region_bytes=4 * KB, weight=0.25),
        ),
        instruction_gap=2,
    ),
    "streaming",
)

_register(
    BenchmarkSpec(
        "lbm_like",
        (
            StreamSpec("loop", region_bytes=80 * MB, weight=0.55, num_pcs=2,
                       write_fraction=0.5),
            StreamSpec("loop", region_bytes=16 * KB, weight=0.20),
            StreamSpec("hot", region_bytes=8 * KB, weight=0.25),
        ),
        instruction_gap=2,
    ),
    "streaming",
)

_register(
    BenchmarkSpec(
        "milc_like",
        (
            StreamSpec("loop", region_bytes=48 * MB, weight=0.45, num_pcs=1),
            StreamSpec("random", region_bytes=8 * MB, weight=0.25),
            StreamSpec("hot", region_bytes=8 * KB, weight=0.30),
        ),
        instruction_gap=3,
    ),
    "streaming",
)

# --- irregular -----------------------------------------------------------

_register(
    BenchmarkSpec(
        "mcf_like",
        (
            StreamSpec("chase", region_bytes=16 * MB, weight=0.50),
            StreamSpec("loop", region_bytes=48 * KB, weight=0.22),
            StreamSpec("hot", region_bytes=8 * KB, weight=0.28),
        ),
        instruction_gap=2,
    ),
    "irregular",
)

_register(
    BenchmarkSpec(
        "omnetpp_like",
        (
            StreamSpec("random", region_bytes=768 * KB, weight=0.40),
            StreamSpec("loop", region_bytes=96 * KB, weight=0.25, num_pcs=1),
            StreamSpec("hot", region_bytes=16 * KB, weight=0.35),
        ),
        instruction_gap=3,
    ),
    "irregular",
)

# --- cache-friendly ------------------------------------------------------

_register(
    BenchmarkSpec(
        "h264_like",
        (
            StreamSpec("hot", region_bytes=16 * KB, weight=0.55),
            StreamSpec("loop", region_bytes=32 * KB, weight=0.30, num_pcs=2),
            StreamSpec("loop", region_bytes=32 * MB, weight=0.15, num_pcs=1),
        ),
        instruction_gap=4,
    ),
    "friendly",
)

_register(
    BenchmarkSpec(
        "hmmer_like",
        (
            StreamSpec("hot", region_bytes=32 * KB, weight=0.75),
            StreamSpec("loop", region_bytes=48 * KB, weight=0.25, num_pcs=1),
        ),
        instruction_gap=4,
    ),
    "friendly",
)

_register(
    BenchmarkSpec(
        "twolf_like",
        (
            StreamSpec("random", region_bytes=96 * KB, weight=0.45),
            StreamSpec("hot", region_bytes=16 * KB, weight=0.55),
        ),
        instruction_gap=3,
    ),
    "friendly",
)

_register(
    BenchmarkSpec(
        "gcc_like",
        (
            StreamSpec("loop", region_bytes=64 * KB, weight=0.30, num_pcs=4),
            StreamSpec("random", region_bytes=64 * KB, weight=0.25, num_pcs=4),
            StreamSpec("hot", region_bytes=24 * KB, weight=0.45),
        ),
        instruction_gap=3,
    ),
    "friendly",
)

# --- partition-friendly --------------------------------------------------

_register(
    BenchmarkSpec(
        "sphinx_like",
        (
            StreamSpec("loop", region_bytes=112 * KB, weight=0.55, num_pcs=1),
            StreamSpec("hot", region_bytes=16 * KB, weight=0.45),
        ),
        instruction_gap=3,
    ),
    "partition",
)

_register(
    BenchmarkSpec(
        "vortex_like",
        (
            StreamSpec("loop", region_bytes=144 * KB, weight=0.40, num_pcs=2),
            StreamSpec("random", region_bytes=64 * KB, weight=0.20),
            StreamSpec("hot", region_bytes=16 * KB, weight=0.40),
        ),
        instruction_gap=3,
    ),
    "partition",
)


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise WorkloadError(f"unknown benchmark {name!r}; known: {known}") from None


def benchmark_names() -> List[str]:
    """All benchmark names, sorted."""
    return sorted(_CATALOG)


def benchmark_class(name: str) -> str:
    """The behaviour class of a benchmark (see module docstring)."""
    benchmark(name)  # raises on unknown names
    return _CLASSES[name]


def benchmarks_in_class(klass: str) -> List[str]:
    """All benchmarks of one behaviour class, sorted."""
    names = sorted(name for name, k in _CLASSES.items() if k == klass)
    if not names:
        known = ", ".join(sorted(set(_CLASSES.values())))
        raise WorkloadError(f"unknown class {klass!r}; known: {known}")
    return names


def catalog() -> List[Tuple[str, str, BenchmarkSpec]]:
    """The full catalog as (name, class, spec) rows."""
    return [(name, _CLASSES[name], _CATALOG[name]) for name in sorted(_CATALOG)]
