"""Workloads: traces, synthetic generators, SPEC-like catalog, mixes."""

from repro.workloads.mixes import all_mixes, mix_members, mix_names
from repro.workloads.patterns import (
    AccessPattern,
    HotSpot,
    PointerChase,
    StridedLoop,
    UniformRandom,
)
from repro.workloads.spec_like import (
    benchmark,
    benchmark_class,
    benchmark_names,
    benchmarks_in_class,
    catalog,
)
from repro.workloads.synthetic import BenchmarkSpec, StreamSpec, generate_trace
from repro.workloads.textio import (
    concatenate,
    downsample,
    interleave,
    load_text,
    save_text,
    window,
)
from repro.workloads.trace import Trace

__all__ = [
    "AccessPattern",
    "BenchmarkSpec",
    "HotSpot",
    "PointerChase",
    "StreamSpec",
    "StridedLoop",
    "Trace",
    "UniformRandom",
    "all_mixes",
    "benchmark",
    "benchmark_class",
    "benchmark_names",
    "benchmarks_in_class",
    "catalog",
    "concatenate",
    "downsample",
    "generate_trace",
    "interleave",
    "load_text",
    "mix_members",
    "mix_names",
    "save_text",
    "window",
]
