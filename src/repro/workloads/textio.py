"""Text trace interchange and trace transformations.

Besides the native ``.npz`` format, traces can be exchanged in a simple
line-oriented text format (one access per line)::

    # name: my_workload
    # instruction_gap: 3
    R 0x7f001040 0x400812
    W 0x7f001080 0x400824

— operation (``R``/``W``), byte address, PC; ``#`` lines are comments,
the two header comments are optional.  This is the import path for
traces captured with external tools (Pin/DynamoRIO-style pintools print
exactly this shape).

Also here: structural transformations used by the harness — slicing by
window, systematic downsampling, and interleaved merging for building
a multiprogrammed trace by hand.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.common.errors import TraceError
from repro.workloads.trace import Trace


def save_text(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace in the text interchange format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# name: {trace.name}\n")
        handle.write(f"# instruction_gap: {trace.instruction_gap}\n")
        for address, pc, is_write in zip(
            trace.addresses.tolist(), trace.pcs.tolist(), trace.is_write.tolist()
        ):
            op = "W" if is_write else "R"
            handle.write(f"{op} {address:#x} {pc:#x}\n")


def load_text(path: Union[str, Path], name: str = "") -> Trace:
    """Read a trace from the text interchange format.

    Args:
        path: file to read.
        name: trace name; overrides any ``# name:`` header when given.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    header_name = path.stem
    gap = 3
    addresses: List[int] = []
    pcs: List[int] = []
    writes: List[bool] = []
    try:
        content = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        raise TraceError(
            f"{path}: not a text trace (invalid UTF-8 at byte {exc.start})"
        ) from exc
    for line_number, raw in enumerate(content.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("name:"):
                header_name = body[len("name:"):].strip()
            elif body.startswith("instruction_gap:"):
                try:
                    gap = int(body[len("instruction_gap:"):].strip())
                except ValueError:
                    raise TraceError(
                        f"{path}:{line_number}: bad instruction_gap header"
                    ) from None
            continue
        parts = line.split()
        if len(parts) != 3:
            raise TraceError(
                f"{path}:{line_number}: expected 'R|W addr pc', got {line!r}"
            )
        op, addr_text, pc_text = parts
        if op not in ("R", "W", "r", "w"):
            raise TraceError(f"{path}:{line_number}: bad op {op!r}")
        try:
            addresses.append(int(addr_text, 0))
            pcs.append(int(pc_text, 0))
        except ValueError:
            raise TraceError(
                f"{path}:{line_number}: bad address or pc in {line!r}"
            ) from None
        writes.append(op in ("W", "w"))
    if not addresses:
        raise TraceError(f"{path}: no accesses found")
    return Trace(
        name or header_name,
        np.array(addresses, dtype=np.int64),
        np.array(pcs, dtype=np.int64),
        np.array(writes, dtype=bool),
        instruction_gap=gap,
    )


def window(trace: Trace, start: int, length: int) -> Trace:
    """A contiguous slice of a trace (e.g. one phase)."""
    if start < 0 or length <= 0 or start + length > len(trace):
        raise TraceError(
            f"window [{start}, {start + length}) out of range for "
            f"{len(trace)}-access trace"
        )
    stop = start + length
    return Trace(
        f"{trace.name}[{start}:{stop}]",
        trace.addresses[start:stop],
        trace.pcs[start:stop],
        trace.is_write[start:stop],
        trace.instruction_gap,
    )


def downsample(trace: Trace, period: int) -> Trace:
    """Keep every ``period``-th access (systematic sampling).

    The instruction gap is scaled up so the sampled trace still
    represents roughly the original instruction count.
    """
    if period <= 0:
        raise TraceError(f"period must be positive, got {period}")
    if period == 1:
        return trace
    if len(trace) < period:
        raise TraceError(
            f"cannot downsample a {len(trace)}-access trace by {period}"
        )
    new_gap = (trace.instruction_gap + 1) * period - 1
    return Trace(
        f"{trace.name}/ds{period}",
        trace.addresses[::period],
        trace.pcs[::period],
        trace.is_write[::period],
        instruction_gap=new_gap,
    )


def interleave(traces: Sequence[Trace], name: str = "interleaved") -> Trace:
    """Round-robin merge of several traces into one.

    Useful for handcrafting a single-core trace with phase mixing; the
    multicore engine does *not* need this (it interleaves by clock).
    The result is truncated to the shortest input times the trace count
    and inherits the first trace's instruction gap.
    """
    if not traces:
        raise TraceError("need at least one trace to interleave")
    shortest = min(len(trace) for trace in traces)
    k = len(traces)
    addresses = np.empty(shortest * k, dtype=np.int64)
    pcs = np.empty(shortest * k, dtype=np.int64)
    writes = np.empty(shortest * k, dtype=bool)
    for offset, trace in enumerate(traces):
        addresses[offset::k] = trace.addresses[:shortest]
        pcs[offset::k] = trace.pcs[:shortest]
        writes[offset::k] = trace.is_write[:shortest]
    return Trace(name, addresses, pcs, writes, traces[0].instruction_gap)


def concatenate(traces: Iterable[Trace], name: str = "phases") -> Trace:
    """Join traces back to back (phase behaviour)."""
    traces = list(traces)
    if not traces:
        raise TraceError("need at least one trace to concatenate")
    return Trace(
        name,
        np.concatenate([trace.addresses for trace in traces]),
        np.concatenate([trace.pcs for trace in traces]),
        np.concatenate([trace.is_write for trace in traces]),
        traces[0].instruction_gap,
    )
