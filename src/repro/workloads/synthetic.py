"""Synthetic benchmark specification and trace generation.

A :class:`BenchmarkSpec` models one SPEC-like program as a weighted
mixture of *streams*, each a family of PCs issuing one access pattern
over a private region.  Generation interleaves the streams by drawing
each access's stream i.i.d. from the weights — so every stream's
accesses are spread uniformly through time, and the reuse distance of a
loop stream is inflated by the other streams' traffic exactly the way a
real program's delinquent loads are separated by its other memory
traffic.

This is the SPEC-trace substitution described in DESIGN.md: the specs in
:mod:`repro.workloads.spec_like` are parameterized to reproduce the
statistical properties NUcache exploits, not the literal address streams
of SPEC binaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.common.errors import WorkloadError
from repro.common.rng import DEFAULT_SEED, make_rng
from repro.workloads.patterns import (
    AccessPattern,
    HotSpot,
    PointerChase,
    StridedLoop,
    UniformRandom,
)
from repro.workloads.trace import Trace

#: Recognized stream kinds.
KIND_LOOP = "loop"
KIND_RANDOM = "random"
KIND_CHASE = "chase"
KIND_HOT = "hot"
_KINDS = (KIND_LOOP, KIND_RANDOM, KIND_CHASE, KIND_HOT)

#: Regions of successive streams are spaced this far apart.
_REGION_SPACING_SHIFT = 34
#: PC name spaces of successive streams are spaced this far apart.
_PC_SPACING = 1 << 20


@dataclass(frozen=True)
class StreamSpec:
    """One stream (PC family) of a synthetic benchmark.

    Attributes:
        kind: one of ``"loop"``, ``"random"``, ``"chase"``, ``"hot"``.
        region_bytes: footprint of the stream's region.
        weight: fraction of the benchmark's accesses from this stream.
        num_pcs: number of distinct PCs the stream's accesses rotate
            through (NUcache can select any subset of them).
        stride: stride of ``"loop"`` streams, bytes.
        write_fraction: probability an access is a store.
    """

    kind: str
    region_bytes: int
    weight: float
    num_pcs: int = 1
    stride: int = 64
    write_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise WorkloadError(f"unknown stream kind {self.kind!r}; expected one of {_KINDS}")
        if self.weight <= 0:
            raise WorkloadError(f"stream weight must be positive, got {self.weight}")
        if self.num_pcs <= 0:
            raise WorkloadError(f"num_pcs must be positive, got {self.num_pcs}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError(
                f"write_fraction must be in [0, 1], got {self.write_fraction}"
            )


@dataclass(frozen=True)
class BenchmarkSpec:
    """A synthetic benchmark: named mixture of streams.

    Attributes:
        name: benchmark name (e.g. ``"art_like"``).
        streams: the mixture; weights are normalized at generation time.
        instruction_gap: non-memory instructions between accesses.
    """

    name: str
    streams: Tuple[StreamSpec, ...]
    instruction_gap: int = 3

    def __post_init__(self) -> None:
        if not self.streams:
            raise WorkloadError(f"benchmark '{self.name}' has no streams")
        if self.instruction_gap < 0:
            raise WorkloadError(
                f"benchmark '{self.name}': instruction_gap must be >= 0"
            )

    @property
    def weights(self) -> np.ndarray:
        """Normalized stream weights."""
        raw = np.array([stream.weight for stream in self.streams], dtype=np.float64)
        return raw / raw.sum()


def _build_pattern(spec: StreamSpec, index: int, rng: np.random.Generator) -> AccessPattern:
    base = (index + 1) << _REGION_SPACING_SHIFT
    if spec.kind == KIND_LOOP:
        return StridedLoop(base, spec.region_bytes, spec.stride)
    if spec.kind == KIND_RANDOM:
        return UniformRandom(base, spec.region_bytes)
    if spec.kind == KIND_CHASE:
        return PointerChase(base, spec.region_bytes, rng)
    return HotSpot(base, spec.region_bytes)


def generate_trace(
    spec: BenchmarkSpec, num_accesses: int, seed: int = DEFAULT_SEED
) -> Trace:
    """Generate a trace for a benchmark spec.

    Deterministic in ``(spec.name, num_accesses, seed)``.  Each stream
    lives in its own region and PC name space; use
    :meth:`~repro.workloads.trace.Trace.relocated` to give multiple
    instances of the same benchmark disjoint addresses in a mix.
    """
    if num_accesses <= 0:
        raise WorkloadError(f"num_accesses must be positive, got {num_accesses}")
    rng = make_rng(seed, f"workload-{spec.name}")
    choices = rng.choice(len(spec.streams), size=num_accesses, p=spec.weights)

    addresses = np.empty(num_accesses, dtype=np.int64)
    pcs = np.empty(num_accesses, dtype=np.int64)
    is_write = np.empty(num_accesses, dtype=bool)
    for index, stream in enumerate(spec.streams):
        positions = np.nonzero(choices == index)[0]
        count = len(positions)
        if count == 0:
            continue
        pattern = _build_pattern(stream, index, rng)
        addresses[positions] = pattern.generate(count, rng)
        pc_base = (index + 1) * _PC_SPACING
        # PCs are attributed randomly, not round-robin: a deterministic
        # rotation correlates PC identity with address parity (and hence
        # with cache-set parity), which no real program exhibits.
        pcs[positions] = pc_base + rng.integers(0, stream.num_pcs, size=count)
        is_write[positions] = rng.random(count) < stream.write_fraction

    return Trace(spec.name, addresses, pcs, is_write, spec.instruction_gap)
