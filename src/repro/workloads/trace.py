"""Memory-access traces.

A :class:`Trace` is the unit of workload in this library: a sequence of
(byte address, program counter, is_write) triples plus the number of
non-memory instructions between consecutive accesses (the timing model's
compute component).  Traces are stored as parallel numpy arrays and can
be saved/loaded as ``.npz`` files so expensive generations can be reused
across experiments.
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.common.addr import log2_exact
from repro.common.errors import TraceError


@dataclass
class Trace:
    """One core's memory-access trace.

    Attributes:
        name: workload name (used for caching and reports).
        addresses: byte addresses, ``int64``.
        pcs: program counter of each access, ``int64``.
        is_write: write flag per access.
        instruction_gap: non-memory instructions executed between
            consecutive accesses (so the trace represents
            ``len(trace) * (instruction_gap + 1)`` instructions).
    """

    name: str
    addresses: np.ndarray
    pcs: np.ndarray
    is_write: np.ndarray
    instruction_gap: int = 3

    def __post_init__(self) -> None:
        self.addresses = np.ascontiguousarray(self.addresses, dtype=np.int64)
        self.pcs = np.ascontiguousarray(self.pcs, dtype=np.int64)
        self.is_write = np.ascontiguousarray(self.is_write, dtype=bool)
        if not (len(self.addresses) == len(self.pcs) == len(self.is_write)):
            raise TraceError(
                f"trace '{self.name}': array lengths differ "
                f"({len(self.addresses)}, {len(self.pcs)}, {len(self.is_write)})"
            )
        if len(self.addresses) == 0:
            raise TraceError(f"trace '{self.name}' is empty")
        if self.instruction_gap < 0:
            raise TraceError(
                f"trace '{self.name}': instruction_gap must be >= 0, "
                f"got {self.instruction_gap}"
            )
        if int(self.addresses.min()) < 0:
            raise TraceError(f"trace '{self.name}' contains negative addresses")

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def instructions(self) -> int:
        """Total instructions the trace represents."""
        return len(self) * (self.instruction_gap + 1)

    def block_addresses(self, block_bytes: int) -> np.ndarray:
        """Block-aligned addresses for a given line size."""
        return self.addresses >> log2_exact(block_bytes)

    def footprint_blocks(self, block_bytes: int) -> int:
        """Number of distinct blocks touched."""
        return int(np.unique(self.block_addresses(block_bytes)).shape[0])

    def unique_pcs(self) -> int:
        """Number of distinct PCs in the trace."""
        return int(np.unique(self.pcs).shape[0])

    def head(self, count: int) -> "Trace":
        """A trace consisting of the first ``count`` accesses."""
        if count <= 0:
            raise TraceError(f"head count must be positive, got {count}")
        count = min(count, len(self))
        return Trace(
            self.name,
            self.addresses[:count],
            self.pcs[:count],
            self.is_write[:count],
            self.instruction_gap,
        )

    def relocated(self, tag: int, tag_shift: int = 44) -> "Trace":
        """The same trace in a disjoint address/PC space.

        Used when the same workload runs on several cores of a mix: each
        instance is offset so cores never accidentally share lines.
        """
        if tag < 0:
            raise TraceError(f"relocation tag must be >= 0, got {tag}")
        offset = np.int64(tag) << np.int64(tag_shift)
        return Trace(
            self.name,
            self.addresses + offset,
            self.pcs + offset,
            self.is_write,
            self.instruction_gap,
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace to a ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            name=np.array(self.name),
            addresses=self.addresses,
            pcs=self.pcs,
            is_write=self.is_write,
            instruction_gap=np.array(self.instruction_gap),
        )

    #: Arrays a saved trace file must contain (see :meth:`save`).
    _FIELDS = ("name", "addresses", "pcs", "is_write", "instruction_gap")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written by :meth:`save`.

        Any way the file can be bad — missing, truncated, not an
        ``.npz`` archive at all, missing one of the expected arrays, or
        holding arrays that fail trace validation — raises
        :class:`~repro.common.errors.TraceError` naming the file, never
        a bare ``zipfile``/``ValueError``/``KeyError`` from the guts of
        ``np.load``.
        """
        path = Path(path)
        if not path.exists():
            raise TraceError(f"trace file not found: {path}")
        try:
            archive = np.load(path, allow_pickle=False)
        except (ValueError, OSError, EOFError, zipfile.BadZipFile) as exc:
            # np.load reports garbage input inconsistently across
            # formats/versions: BadZipFile for corrupt archives,
            # ValueError for non-npz bytes and pickle refusal, OSError/
            # EOFError for truncation.
            raise TraceError(
                f"trace file {path} is not a readable trace archive: {exc}"
            ) from exc
        with archive as data:
            missing = [field for field in cls._FIELDS if field not in data.files]
            if missing:
                raise TraceError(
                    f"trace file {path} is missing field(s) "
                    f"{', '.join(missing)} (has: {', '.join(data.files) or 'none'})"
                )
            try:
                return cls(
                    str(data["name"]),
                    data["addresses"],
                    data["pcs"],
                    data["is_write"],
                    int(data["instruction_gap"]),
                )
            except (ValueError, TypeError, OSError, EOFError,
                    zipfile.BadZipFile) as exc:
                # Member decompression is lazy: a truncated archive can
                # list a field yet fail while inflating it; TypeError
                # covers fields with the wrong shape (e.g. a vector
                # where the scalar instruction_gap belongs).
                raise TraceError(
                    f"trace file {path} is corrupt: {exc}"
                ) from exc
            except TraceError as exc:
                raise TraceError(f"trace file {path}: {exc}") from exc

    def describe(self, block_bytes: int = 64) -> str:
        """One-line human summary (used by the exploration example)."""
        return (
            f"{self.name}: {len(self)} accesses, {self.unique_pcs()} PCs, "
            f"{self.footprint_blocks(block_bytes)} blocks touched, "
            f"gap={self.instruction_gap}"
        )
