"""Multiprogrammed mix tables for the multicore experiments.

The paper evaluates dual-, quad- and eight-core workloads "comprised of
SPEC benchmarks".  The exact mix tables are not in the available text
(see DESIGN.md), so the tables below follow the standard construction of
that literature: cover the cross product of behaviour classes
(delinquent x streaming, delinquent x friendly, partition x streaming,
...) so that every policy's strong and weak cases appear.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import WorkloadError
from repro.workloads.spec_like import benchmark

#: name -> tuple of benchmark names, one per core.
_DUAL: Dict[str, Tuple[str, ...]] = {
    "mix2_1": ("art_like", "swim_like"),
    "mix2_2": ("ammp_like", "libquantum_like"),
    "mix2_3": ("art_like", "mcf_like"),
    "mix2_4": ("soplex_like", "lbm_like"),
    "mix2_5": ("sphinx_like", "swim_like"),
    "mix2_6": ("ammp_like", "h264_like"),
    "mix2_7": ("equake_like", "milc_like"),
    "mix2_8": ("art_like", "ammp_like"),
    "mix2_9": ("hmmer_like", "twolf_like"),
    "mix2_10": ("vortex_like", "libquantum_like"),
    "mix2_11": ("h264_like", "gcc_like"),
    "mix2_12": ("omnetpp_like", "hmmer_like"),
}

_QUAD: Dict[str, Tuple[str, ...]] = {
    "mix4_1": ("art_like", "swim_like", "ammp_like", "libquantum_like"),
    "mix4_2": ("art_like", "lbm_like", "swim_like", "milc_like"),
    "mix4_3": ("soplex_like", "milc_like", "equake_like", "swim_like"),
    "mix4_4": ("ammp_like", "libquantum_like", "equake_like", "swim_like"),
    "mix4_5": ("art_like", "ammp_like", "soplex_like", "equake_like"),
    "mix4_6": ("hmmer_like", "twolf_like", "gcc_like", "h264_like"),
    "mix4_7": ("soplex_like", "swim_like", "milc_like", "mcf_like"),
    "mix4_8": ("equake_like", "lbm_like", "art_like", "omnetpp_like"),
}

_EIGHT: Dict[str, Tuple[str, ...]] = {
    "mix8_1": (
        "art_like", "swim_like", "ammp_like", "libquantum_like",
        "soplex_like", "milc_like", "equake_like", "lbm_like",
    ),
    "mix8_2": (
        "soplex_like", "ammp_like", "equake_like", "swim_like",
        "lbm_like", "libquantum_like", "milc_like", "swim_like",
    ),
    "mix8_3": (
        "hmmer_like", "twolf_like", "gcc_like", "h264_like",
        "art_like", "swim_like", "sphinx_like", "omnetpp_like",
    ),
    "mix8_4": (
        "equake_like", "soplex_like", "art_like", "ammp_like",
        "libquantum_like", "milc_like", "mcf_like", "swim_like",
    ),
    "mix8_5": (
        "soplex_like", "soplex_like", "ammp_like", "art_like",
        "swim_like", "lbm_like", "milc_like", "libquantum_like",
    ),
    "mix8_6": (
        "ammp_like", "soplex_like", "soplex_like", "equake_like",
        "swim_like", "lbm_like", "libquantum_like", "milc_like",
    ),
}

_TABLES: Dict[int, Dict[str, Tuple[str, ...]]] = {2: _DUAL, 4: _QUAD, 8: _EIGHT}


def _validated() -> None:
    for cores, table in _TABLES.items():
        for mix_name, members in table.items():
            if len(members) != cores:
                raise WorkloadError(
                    f"mix {mix_name!r} should have {cores} members, has {len(members)}"
                )
            for member in members:
                benchmark(member)  # raises on unknown names


_validated()


def mix_names(num_cores: int) -> List[str]:
    """Mix names defined for a core count (2, 4 or 8)."""
    try:
        table = _TABLES[num_cores]
    except KeyError:
        raise WorkloadError(
            f"no mixes defined for {num_cores} cores; choose from {sorted(_TABLES)}"
        ) from None
    return sorted(table, key=lambda name: int(name.rsplit("_", 1)[1]))


def mix_members(mix_name: str) -> Tuple[str, ...]:
    """Benchmarks of a mix, one per core."""
    for table in _TABLES.values():
        if mix_name in table:
            return table[mix_name]
    known = [name for table in _TABLES.values() for name in table]
    raise WorkloadError(f"unknown mix {mix_name!r}; known: {sorted(known)}")


def all_mixes() -> Dict[int, List[str]]:
    """All mix names keyed by core count."""
    return {cores: mix_names(cores) for cores in sorted(_TABLES)}
