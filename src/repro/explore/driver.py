"""Search orchestration: the propose/evaluate/observe loop, journaled.

:func:`run_search` is the one entry point a search goes through (the
CLI's ``explore run`` and ``explore resume`` both land here).  Each run:

1. opens an append-only run journal (the same
   :class:`~repro.exec.journal.RunJournal` machinery ``run --resume``
   uses) and records the search settings in an ``explore_start`` record;
2. loops: the algorithm proposes a batch, the evaluator resolves it
   through the exec scheduler (cache-first, deduplicated, parallel,
   fault-tolerant), the scores are observed, and one ``probe`` record
   per point — params, objective, store keys, cache provenance, settle
   times — is appended to the journal;
3. writes the deterministic ``explore.json`` report and closes the
   journal.

**Resume** replays the journal instead of re-running it: because every
algorithm is deterministic in ``(space, seed, observation history)``,
re-proposing reproduces the recorded trajectory exactly, so journaled
probes are fed back through ``observe`` without touching the scheduler
and only the missing tail is evaluated — an interrupted thousand-probe
search loses at most the batch that was in flight, and even those jobs
are served from the result store.

An interrupt (SIGINT/SIGTERM, surfaced by the scheduler as
:class:`~repro.common.errors.RunInterrupted`) closes the journal with
``interrupted`` status and re-raises; the CLI prints the
``explore resume <run-id>`` hint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.common.errors import RunInterrupted
from repro.common.rng import DEFAULT_SEED
from repro.exec import context as exec_context
from repro.exec import journal as run_journal
from repro.exec.journal import RunJournal
from repro.exec.store import default_store_dir
from repro.experiments.base import scaled_accesses
from repro.explore.evaluate import Evaluator, ProbeResult, Study, get_objective
from repro.explore.report import build_report, write_report
from repro.explore.search import make_algorithm
from repro.explore.space import ExploreError, Point
from repro.explore.studies import get_study

#: Default probe budget when the CLI does not pass one.
DEFAULT_BUDGET = 16

#: Subdirectory of the store base where explore reports land by default.
EXPLORE_DIR_NAME = "explore"

#: Per-probe progress hook (one event dict per resolved probe).
ProbeHook = Callable[[Dict[str, object]], None]


def default_report_dir() -> Path:
    """Where explore reports live (shares the result store's base)."""
    return default_store_dir() / EXPLORE_DIR_NAME


@dataclass
class ExploreOutcome:
    """Everything one finished search produced."""

    run_id: str
    report: Dict[str, Any]
    report_path: Path
    probes: List[ProbeResult] = field(default_factory=list)
    #: Probes served from the journal transcript (resume), not evaluated.
    replayed: int = 0
    #: Occurrence-weighted job provenance of the probes this run evaluated.
    cached_jobs: int = 0
    computed_jobs: int = 0

    @property
    def cache_fraction(self) -> float:
        """Fraction of this run's evaluated jobs served from the store."""
        total = self.cached_jobs + self.computed_jobs
        if total == 0:
            return 0.0
        return self.cached_jobs / total

    def describe(self) -> str:
        """One-line summary for the CLI (stderr)."""
        evaluated = len(self.probes) - self.replayed
        line = (
            f"{len(self.probes)} probes ({evaluated} evaluated"
            + (f", {self.replayed} replayed from journal" if self.replayed else "")
            + f"), {self.cached_jobs + self.computed_jobs} jobs: "
            f"{self.computed_jobs} computed, {self.cached_jobs} cached "
            f"({self.cache_fraction:.1%} cache-served)"
        )
        best = self.report.get("best")
        if isinstance(best, dict):
            objective = self.report["objective"]["name"]
            line += f", best {objective}={float(best['objective']):.6g}"
        return line


def _probe_record(probe: ProbeResult, replayed: bool) -> Dict[str, object]:
    """The journal record for one resolved probe."""
    record: Dict[str, object] = {
        "record": "probe",
        "index": probe.index,
        "params": dict(probe.point),
        "valid": probe.valid,
        "objective": probe.objective,
        "job_keys": list(probe.job_keys),
        "cached": probe.cached,
        "computed": probe.computed,
        "settle": list(probe.settle),
    }
    if replayed:
        record["replayed"] = True
    return record


def _probe_from_record(record: Dict[str, Any]) -> ProbeResult:
    """Rebuild a :class:`ProbeResult` from its journal record (replay)."""
    objective = record.get("objective")
    return ProbeResult(
        index=int(record["index"]),
        point=dict(record["params"]),
        valid=bool(record.get("valid", False)),
        objective=None if objective is None else float(objective),
        job_keys=[str(k) for k in record.get("job_keys", [])],
        cached=int(record.get("cached", 0)),
        computed=int(record.get("computed", 0)),
        settle=[float(t) for t in record.get("settle", [])],
    )


def run_search(
    study: Union[str, Study],
    algo: str = "random",
    budget: int = DEFAULT_BUDGET,
    seed: int = DEFAULT_SEED,
    objective: Optional[str] = None,
    output: Optional[Union[str, Path]] = None,
    transcript: Optional[Dict[int, Dict[str, Any]]] = None,
    resumed_from: Optional[str] = None,
    progress: Optional[ProbeHook] = None,
) -> ExploreOutcome:
    """Run (or resume, given a ``transcript``) one design-space search.

    Args:
        study: registered study name or a :class:`Study` value.
        algo: search algorithm name (see
            :func:`repro.explore.search.algorithm_names`).
        budget: number of probes to resolve (exhaustion may end the
            search earlier, e.g. a grid smaller than the budget).
        seed: search seed (proposal randomness only; the simulations'
            seed belongs to the study).
        objective: objective name overriding the study default.
        output: where to write ``explore.json`` (default
            ``<store base>/explore/<run-id>.json``).
        transcript: journaled probe records by index, for resume; the
            re-proposed trajectory must match it record for record.
        resumed_from: run id the transcript came from (journal metadata).
        progress: optional per-probe event hook.

    Returns:
        The :class:`ExploreOutcome`, report written and journal closed.
    """
    if budget <= 0:
        raise ExploreError(f"budget must be positive, got {budget}")
    if isinstance(study, str):
        study = get_study(study)
    resolved_objective = get_objective(objective or study.objective)
    accesses = scaled_accesses(study.accesses)
    algorithm = make_algorithm(algo, study.space, seed)
    evaluator = Evaluator(study, resolved_objective, accesses)
    transcript = transcript or {}

    config = exec_context.current()
    experiment_label = f"explore:{study.name}"
    journal = RunJournal.create(
        experiments=[experiment_label],
        jobs=config.jobs,
        use_cache=config.use_cache,
        resumed_from=resumed_from,
    )
    report_path = Path(output) if output is not None else (
        default_report_dir() / f"{journal.run_id}.json"
    )
    report_path = report_path.resolve()
    journal.append(
        {
            "record": "explore_start",
            "study": study.name,
            "space_hash": study.space.space_hash(),
            "algo": algo,
            "seed": seed,
            "budget": budget,
            "objective": resolved_objective.name,
            "accesses": accesses,
            "output": str(report_path),
        }
    )
    journal.record_experiment_start(experiment_label)

    outcome = ExploreOutcome(
        run_id=journal.run_id, report={}, report_path=report_path
    )
    previous_journal = exec_context.active_journal()
    exec_context.set_journal(journal)
    try:
        while len(outcome.probes) < budget:
            proposed = algorithm.propose(budget - len(outcome.probes))
            if not proposed:
                break
            proposed = proposed[: budget - len(outcome.probes)]
            first_index = len(outcome.probes)
            batch = _resolve_batch(
                proposed, first_index, evaluator, transcript, outcome
            )
            for probe, replayed in batch:
                journal.append(_probe_record(probe, replayed))
                outcome.probes.append(probe)
                if progress is not None:
                    progress(_progress_event(probe, replayed, algorithm))
            algorithm.observe(
                [
                    (probe.point, probe.score(resolved_objective))
                    for probe, _replayed in batch
                ]
            )
    except (RunInterrupted, KeyboardInterrupt):
        journal.record_experiment_end(experiment_label, status="interrupted")
        journal.close("interrupted")
        interrupt = RunInterrupted(
            f"search interrupted after {len(outcome.probes)} of {budget} "
            f"probes — resume with: nucache-repro explore resume {journal.run_id}",
        )
        interrupt.run_id = journal.run_id  # type: ignore[attr-defined]
        raise interrupt from None
    except Exception as exc:
        journal.record_experiment_end(experiment_label, status="failed")
        journal.close("failed", error=repr(exc))
        raise
    finally:
        exec_context.set_journal(previous_journal)

    outcome.report = build_report(
        study, resolved_objective, algo, seed, budget, accesses, outcome.probes
    )
    write_report(outcome.report, report_path)
    journal.record_experiment_end(experiment_label, status="ok")
    journal.close("completed")
    return outcome


def _resolve_batch(
    proposed: List[Point],
    first_index: int,
    evaluator: Evaluator,
    transcript: Dict[int, Dict[str, Any]],
    outcome: ExploreOutcome,
) -> List[Tuple[ProbeResult, bool]]:
    """Split one proposed batch into replayed and evaluated probes.

    Probes whose index has a matching transcript record are rebuilt from
    the journal; the rest are evaluated through the scheduler as one
    batch.  A transcript record that disagrees with the re-proposed
    point means the study, space, or seed changed since the original
    run — that is an error, not a silent re-run.
    """
    replay: Dict[int, ProbeResult] = {}
    to_evaluate: List[Tuple[int, Point]] = []
    for offset, point in enumerate(proposed):
        index = first_index + offset
        record = transcript.get(index)
        if record is not None:
            if dict(record.get("params", {})) != dict(point):
                raise ExploreError(
                    f"journal replay mismatch at probe {index}: journal has "
                    f"{record.get('params')}, search re-proposed {dict(point)} "
                    "(study, space, or seed changed since the original run?)"
                )
            replay[index] = _probe_from_record(record)
        else:
            to_evaluate.append((index, point))

    evaluated: Dict[int, ProbeResult] = {}
    if to_evaluate:
        indices = [index for index, _point in to_evaluate]
        label = f"probes[{indices[0]}..{indices[-1]}]"
        results = evaluator.evaluate(
            [point for _index, point in to_evaluate], indices[0], label
        )
        # evaluate() numbers probes contiguously from first_index; remap
        # to the true indices (replayed probes may interleave).
        for (index, _point), probe in zip(to_evaluate, results):
            probe.index = index
            evaluated[index] = probe
            outcome.cached_jobs += probe.cached
            outcome.computed_jobs += probe.computed
    outcome.replayed += len(replay)

    batch: List[Tuple[ProbeResult, bool]] = []
    for offset in range(len(proposed)):
        index = first_index + offset
        if index in replay:
            batch.append((replay[index], True))
        else:
            batch.append((evaluated[index], False))
    return batch


def _progress_event(
    probe: ProbeResult, replayed: bool, algorithm: object
) -> Dict[str, object]:
    """The per-probe event dict handed to the progress hook."""
    return {
        "event": "probe",
        "index": probe.index,
        "params": dict(probe.point),
        "valid": probe.valid,
        "objective": probe.objective,
        "cached": probe.cached,
        "computed": probe.computed,
        "replayed": replayed,
    }


def load_search_settings(run_id: str) -> Dict[str, Any]:
    """Read a run's ``explore_start`` record and probe transcript.

    Returns a dict with the original search settings plus
    ``transcript`` (probe records by index) and ``run_id`` — everything
    :func:`resume_search` needs.  Raises if the run has no
    ``explore_start`` record (it was a plain experiment run) or if the
    registered study's space hash no longer matches the journal's.
    """
    summary = run_journal.find_run(run_id)
    records = run_journal.read_records(summary.path)
    start: Optional[Dict[str, Any]] = None
    transcript: Dict[int, Dict[str, Any]] = {}
    for record in records:
        kind = record.get("record")
        if kind == "explore_start":
            start = record
        elif kind == "probe":
            transcript[int(record["index"])] = record
    if start is None:
        raise ExploreError(
            f"run {summary.run_id} is not an exploration run "
            "(no explore_start record in its journal)"
        )
    study = get_study(str(start["study"]))
    if study.space.space_hash() != start.get("space_hash"):
        raise ExploreError(
            f"study {study.name!r} has changed since run {summary.run_id} "
            "(space hash mismatch); the journal cannot be replayed"
        )
    return {
        "run_id": summary.run_id,
        "study": study.name,
        "algo": str(start["algo"]),
        "seed": int(start["seed"]),
        "budget": int(start["budget"]),
        "objective": str(start["objective"]),
        "output": str(start.get("output") or ""),
        "transcript": transcript,
    }


def resume_search(
    run_id: str,
    output: Optional[Union[str, Path]] = None,
    progress: Optional[ProbeHook] = None,
) -> ExploreOutcome:
    """Resume an interrupted search from its journal.

    Journaled probes replay without evaluation; the remaining budget
    runs normally (with the result store additionally serving any job
    the interrupted batch had already settled).  Resuming a *completed*
    run is valid and cheap: the whole trajectory replays and the report
    is rewritten, byte-identical.
    """
    settings = load_search_settings(run_id)
    return run_search(
        study=settings["study"],
        algo=settings["algo"],
        budget=settings["budget"],
        seed=settings["seed"],
        objective=settings["objective"],
        output=output or (settings["output"] or None),
        transcript=settings["transcript"],
        resumed_from=settings["run_id"],
        progress=progress,
    )
