"""Design-space exploration harness over the exec scheduler.

``repro.explore`` searches the NUcache configuration space instead of
hand-gridding it.  A declarative :class:`ParamSpace` (typed dimensions
validated against the config layer) is bound to a workload by a
:class:`Study`; pluggable :class:`SearchAlgorithm` drivers (seeded
random, grid, hill-climb, GA) propose probe batches; the
:class:`Evaluator` resolves each probe through
:meth:`~repro.exec.scheduler.Scheduler.run` — content-addressed,
cache-first, deduplicated, parallel, fault-tolerant, journaled; and
:func:`run_search` orchestrates the loop, writes a deterministic
``explore.json`` report, and supports journal-backed resume
(:func:`resume_search`).  The CLI front end is
``nucache-repro explore``; see ``docs/exploration.md``.
"""

from repro.explore.driver import (
    DEFAULT_BUDGET,
    ExploreOutcome,
    default_report_dir,
    load_search_settings,
    resume_search,
    run_search,
)
from repro.explore.evaluate import (
    OBJECTIVES,
    Evaluator,
    Objective,
    ProbeResult,
    Study,
    get_objective,
    objective_names,
)
from repro.explore.report import (
    REPORT_SCHEMA,
    build_report,
    load_report,
    render_best_table,
    render_report,
    trajectory,
    write_report,
)
from repro.explore.search import (
    ALGORITHMS,
    INVALID_SCORE,
    GeneticSearch,
    GridSearch,
    HillClimb,
    RandomSearch,
    SearchAlgorithm,
    algorithm_names,
    drive,
    make_algorithm,
)
from repro.explore.space import (
    Dimension,
    ExploreError,
    ParamSpace,
    choice,
    int_range,
    log_range,
)
from repro.explore.studies import STUDIES, get_study, study_names

__all__ = [
    "ALGORITHMS",
    "DEFAULT_BUDGET",
    "Dimension",
    "Evaluator",
    "ExploreError",
    "ExploreOutcome",
    "GeneticSearch",
    "GridSearch",
    "HillClimb",
    "INVALID_SCORE",
    "OBJECTIVES",
    "Objective",
    "ParamSpace",
    "ProbeResult",
    "REPORT_SCHEMA",
    "RandomSearch",
    "STUDIES",
    "SearchAlgorithm",
    "Study",
    "algorithm_names",
    "build_report",
    "choice",
    "default_report_dir",
    "drive",
    "get_objective",
    "get_study",
    "int_range",
    "load_report",
    "load_search_settings",
    "log_range",
    "make_algorithm",
    "objective_names",
    "render_best_table",
    "render_report",
    "resume_search",
    "run_search",
    "study_names",
    "trajectory",
    "write_report",
]
