"""The probe-to-scheduler bridge: points become jobs, jobs become scores.

A :class:`Study` binds a :class:`~repro.explore.space.ParamSpace` to a
concrete workload (a mix, an LLC policy, a trace length) and an
:class:`Objective`.  The :class:`Evaluator` turns each probe point into
one or more :class:`~repro.exec.job.SimJob` specs and resolves them
through the exec scheduler (:meth:`~repro.exec.scheduler.Scheduler.run`)
— which is what makes every probe content-addressed, deduplicated
within a batch, served from the persistent result store across batches
and invocations, retried on faults, and recorded in the run journal.

A weighted-speedup objective needs alone-run denominators; those jobs
are identical for every probe of a study, so the first batch computes
them once and every later probe is a store hit — the search only ever
pays for configurations it has not seen.

Objectives are registered in :data:`OBJECTIVES` with an explicit
optimization direction; the driver normalizes scores so search
algorithms always maximize (see :mod:`repro.explore.search`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import RunInterrupted
from repro.common.rng import DEFAULT_SEED
from repro.exec import SimJob
from repro.exec import context as exec_context
from repro.explore.space import ExploreError, ParamSpace, Point
from repro.metrics.multicore import weighted_speedup
from repro.sim.engine import SimResult
from repro.workloads.mixes import mix_members


@dataclass(frozen=True)
class Objective:
    """A named scalar figure of merit over one probe's simulation results.

    Attributes:
        name: registry name (``--objective``).
        direction: ``"max"`` or ``"min"``.
        needs_alone: whether the probe needs the alone-run denominator
            jobs alongside the mix job (weighted speedup does).
    """

    name: str
    direction: str
    needs_alone: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("max", "min"):
            raise ExploreError(f"direction must be 'max' or 'min', got {self.direction!r}")

    def value(self, mix_result: SimResult, alone_ipcs: Sequence[float]) -> float:
        """Compute the objective from a probe's resolved results."""
        if self.name == "ws":
            return weighted_speedup(mix_result.ipcs, list(alone_ipcs))
        if self.name == "ipc":
            return sum(mix_result.ipcs) / len(mix_result.ipcs)
        if self.name == "hit_rate":
            accesses = sum(core.llc_accesses for core in mix_result.cores)
            if accesses == 0:
                return 0.0
            return 1.0 - mix_result.total_llc_misses / accesses
        if self.name == "mpki":
            return sum(core.mpki for core in mix_result.cores) / len(mix_result.cores)
        raise ExploreError(f"objective {self.name!r} has no value function")

    def score(self, value: float) -> float:
        """Normalize a raw objective value to maximize-form for observe."""
        return value if self.direction == "max" else -value


#: Objective registry: name -> Objective.
OBJECTIVES: Dict[str, Objective] = {
    "ws": Objective("ws", "max", needs_alone=True),
    "ipc": Objective("ipc", "max"),
    "hit_rate": Objective("hit_rate", "max"),
    "mpki": Objective("mpki", "min"),
}


def objective_names() -> List[str]:
    """All registered objective names, sorted."""
    return sorted(OBJECTIVES)


def get_objective(name: str) -> Objective:
    """Look up a registered objective by name."""
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ExploreError(
            f"unknown objective {name!r}; known: {', '.join(objective_names())}"
        ) from None


@dataclass(frozen=True)
class Study:
    """A parameter space bound to the workload it is explored on.

    Attributes:
        name: registry name (the CLI's ``explore run <study>``).
        title: one-line description for reports.
        space: the parameter space searched.
        mix: workload mix every probe simulates.
        policy: LLC organization name the searched parameters configure.
        accesses: trace length per core (``REPRO_SCALE`` applies at run
            time, exactly as for the experiment drivers).
        objective: default objective name (overridable per run).
        sim_seed: root RNG seed of every probe's simulation — part of
            the study, *not* the search seed, so two searches with
            different ``--seed`` still share all store entries.
        notes: free-form context rendered by reports.
    """

    name: str
    title: str
    space: ParamSpace
    mix: str
    policy: str = "nucache"
    accesses: int = 120_000
    objective: str = "ws"
    sim_seed: int = DEFAULT_SEED
    notes: str = ""

    def __post_init__(self) -> None:
        members = mix_members(self.mix)  # raises on unknown mixes
        if self.space.num_cores != len(members):
            raise ExploreError(
                f"study {self.name!r}: space validates {self.space.num_cores} "
                f"cores but mix {self.mix!r} has {len(members)}"
            )
        get_objective(self.objective)

    @property
    def members(self) -> Tuple[str, ...]:
        """The mix's benchmark members, one per core."""
        return tuple(mix_members(self.mix))


@dataclass
class ProbeResult:
    """One evaluated probe: the point, its validity, and its objective."""

    index: int
    point: Point
    valid: bool
    objective: Optional[float]
    #: Content keys of the jobs this probe resolved (empty for invalid
    #: points, which never reach the scheduler).
    job_keys: List[str] = field(default_factory=list)
    #: Store provenance per probe: how many of its jobs came from the
    #: result store vs were computed, and the computed jobs' settle
    #: times — journal material, deliberately *not* part of the
    #: deterministic report.
    cached: int = 0
    computed: int = 0
    settle: List[float] = field(default_factory=list)

    def score(self, objective: Objective) -> float:
        """Maximize-form score for :meth:`SearchAlgorithm.observe`."""
        from repro.explore.search import INVALID_SCORE

        if not self.valid or self.objective is None:
            return INVALID_SCORE
        return objective.score(self.objective)


class Evaluator:
    """Maps probe points to scheduler batches for one study.

    Args:
        study: the bound workload and space.
        objective: resolved objective (defaults to the study's).
        accesses: already-scaled trace length per core.
    """

    def __init__(
        self, study: Study, objective: Objective, accesses: int
    ) -> None:
        self.study = study
        self.objective = objective
        self.accesses = accesses

    # ------------------------------------------------------------------

    def jobs_for(self, point: Point) -> List[SimJob]:
        """The job specs one probe resolves (mix run first, then alones)."""
        jobs = [
            SimJob.mix(
                self.study.mix, self.study.policy, self.accesses,
                self.study.sim_seed, **point,
            )
        ]
        if self.objective.needs_alone:
            members = self.study.members
            jobs.extend(
                SimJob.alone(name, len(members), self.accesses, self.study.sim_seed)
                for name in members
            )
        return jobs

    def evaluate(
        self, points: Sequence[Point], first_index: int, label: str
    ) -> List[ProbeResult]:
        """Resolve a batch of probes through the exec scheduler.

        Invalid points (cross-dimension config violations) are scored
        without simulation.  All valid probes' jobs go to the scheduler
        as *one* batch — deduplicated by content key, cache-first,
        parallel on miss — and results come back in submission order,
        so the returned probe order never depends on the worker count.
        An interrupt (SIGINT/SIGTERM) propagates as
        :class:`~repro.common.errors.RunInterrupted` after the batch
        record lands in the journal; settled jobs are already in the
        store, so a resumed search gets them for free.
        """
        probes: List[ProbeResult] = []
        batch: List[SimJob] = []
        slices: List[Tuple[ProbeResult, int, int]] = []
        for offset, point in enumerate(points):
            error = self.study.space.point_error(point)
            probe = ProbeResult(
                index=first_index + offset,
                point=dict(point),
                valid=error is None,
                objective=None,
            )
            probes.append(probe)
            if error is not None:
                continue
            jobs = self.jobs_for(point)
            probe.job_keys = [job.key() for job in jobs]
            slices.append((probe, len(batch), len(batch) + len(jobs)))
            batch.extend(jobs)

        if batch:
            results, outcomes = self._run_batch(batch, label)
            for probe, start, stop in slices:
                mix_result = results[start]
                alone_ipcs = [
                    result.cores[0].ipc for result in results[start + 1:stop]
                ]
                probe.objective = round(
                    float(self.objective.value(mix_result, alone_ipcs)), 6
                )
                self._attach_provenance(probe, outcomes)
        return probes

    @staticmethod
    def _attach_provenance(
        probe: ProbeResult, outcomes: Dict[str, Dict[str, object]]
    ) -> None:
        """Fill a probe's cached/computed counts and settle times.

        Jobs deduplicated *within* a batch share one outcome; each probe
        counts the outcome of every job it references, so a probe whose
        alone-run denominator was computed for an earlier probe of the
        same batch still reports it as computed (the store only dedups
        across batches).
        """
        for key in probe.job_keys:
            outcome = outcomes.get(key)
            if outcome is None:
                continue
            if outcome.get("status") == "cached":
                probe.cached += 1
            else:
                probe.computed += 1
                timings = outcome.get("timings")
                if isinstance(timings, list) and timings:
                    probe.settle.append(round(float(timings[-1]), 6))

    @staticmethod
    def _run_batch(
        batch: Sequence[SimJob], label: str
    ) -> Tuple[List[SimResult], Dict[str, Dict[str, object]]]:
        """One scheduler pass under the process-wide exec defaults.

        Mirrors :func:`repro.exec.context.run_jobs` (journal batch
        records on success and on interrupt) but keeps the scheduler
        handle so the caller can read per-job outcomes for probe
        provenance; run-level totals are accumulated by the driver from
        the batch reports instead of the exec context.
        """
        scheduler = exec_context.get_scheduler()
        journal = exec_context.active_journal()
        try:
            results = scheduler.run(batch)
        except RunInterrupted as exc:
            if journal is not None:
                journal.record_batch(
                    exc.outcomes, exc.report, label=label, status="interrupted"
                )
            raise
        if journal is not None:
            journal.record_batch(
                scheduler.last_outcomes, scheduler.last_report, label=label
            )
        resolved = [result for result in results if result is not None]
        if len(resolved) != len(results):
            # strict=True means this cannot happen; guard the invariant
            # so a future non-strict caller fails loudly, not with None.
            raise ExploreError("scheduler returned unresolved jobs")
        return resolved, scheduler.last_outcomes
