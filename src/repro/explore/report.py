"""Deterministic exploration reports: ``explore.json`` and text tables.

The report is the search's durable artifact.  It is *fully
deterministic* — no timestamps, hostnames, wall times, or store state —
so that the same ``(study, algorithm, seed, budget)`` produces a
byte-identical file whether the search ran serial or parallel, cold or
warm, uninterrupted or resumed from its journal.  That property is what
the reproducibility tests and the CI smoke diff pin down.  Provenance
that legitimately varies between runs (cache-hit ratios, settle times)
lives in the run journal instead and is rendered by ``runs show`` /
``explore show``.

Contents: the study binding, the content-addressed space spec, the
search settings, one record per probe (params, validity, objective,
store keys), the best-so-far trajectory, and the winning configuration.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union, cast

from repro.explore.evaluate import Objective, ProbeResult, Study
from repro.explore.space import ExploreError

#: Schema version of explore.json payloads.
REPORT_SCHEMA = 1


def _better(objective: Objective, candidate: float, incumbent: float) -> bool:
    if objective.direction == "max":
        return candidate > incumbent
    return candidate < incumbent


def build_report(
    study: Study,
    objective: Objective,
    algo: str,
    seed: int,
    budget: int,
    accesses: int,
    probes: Sequence[ProbeResult],
) -> Dict[str, Any]:
    """Assemble the deterministic report payload for one search.

    ``best_curve[i]`` is the best objective value over probes ``0..i``
    (``None`` until the first valid probe) — the best-so-far trajectory
    the trajectory tests and plots consume.  ``best`` identifies the
    winning probe; ties keep the earliest probe, so the winner is stable
    under re-runs.
    """
    probe_rows: List[Dict[str, Any]] = []
    best_curve: List[Optional[float]] = []
    best: Optional[Dict[str, Any]] = None
    for probe in probes:
        probe_rows.append(
            {
                "index": probe.index,
                "params": dict(probe.point),
                "valid": probe.valid,
                "objective": probe.objective,
                "job_keys": list(probe.job_keys),
            }
        )
        if probe.valid and probe.objective is not None:
            if best is None or _better(
                objective, probe.objective, float(best["objective"])
            ):
                best = {
                    "index": probe.index,
                    "params": dict(probe.point),
                    "objective": probe.objective,
                }
        best_curve.append(None if best is None else float(best["objective"]))
    return {
        "schema": REPORT_SCHEMA,
        "study": {
            "name": study.name,
            "title": study.title,
            "mix": study.mix,
            "policy": study.policy,
            "accesses": accesses,
            "sim_seed": study.sim_seed,
        },
        "space": {
            "hash": study.space.space_hash(),
            "spec": study.space.spec(),
        },
        "search": {"algo": algo, "seed": seed, "budget": budget},
        "objective": {"name": objective.name, "direction": objective.direction},
        "probes": probe_rows,
        "best_curve": best_curve,
        "best": best,
    }


def write_report(report: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a report canonically (sorted keys, trailing newline).

    The canonical form is what makes byte-for-byte comparison (the
    reproducibility contract) meaningful; always write through here.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a report written by :func:`write_report`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ExploreError(f"cannot read explore report {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != REPORT_SCHEMA:
        raise ExploreError(
            f"{path} is not a schema-{REPORT_SCHEMA} explore report"
        )
    return payload


def trajectory(report: Dict[str, Any]) -> List[Optional[float]]:
    """The best-so-far curve of a report (the determinism contract)."""
    return list(report.get("best_curve", []))


def render_best_table(report: Dict[str, Any]) -> str:
    """The winning configuration as an aligned parameter/value table."""
    best = report.get("best")
    if not isinstance(best, dict):
        return "no valid probe found (every point was invalid)"
    objective = cast(Dict[str, Any], report["objective"])
    lines = [
        "best configuration (probe {index}, {name}={value:.6g}, {direction}):".format(
            index=best["index"],
            name=objective["name"],
            value=float(best["objective"]),
            direction=objective["direction"],
        )
    ]
    params = cast(Dict[str, Any], best["params"])
    width = max(len(name) for name in params)
    for name in sorted(params):
        lines.append(f"  {name:<{width}} = {params[name]}")
    return "\n".join(lines)


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering: header, best table, probe trajectory."""
    study = cast(Dict[str, Any], report["study"])
    search = cast(Dict[str, Any], report["search"])
    objective = cast(Dict[str, Any], report["objective"])
    space = cast(Dict[str, Any], report["space"])
    lines = [
        "== explore {name}: {algo} seed={seed} budget={budget} "
        "objective={obj} ({direction}) ==".format(
            name=study["name"],
            algo=search["algo"],
            seed=search["seed"],
            budget=search["budget"],
            obj=objective["name"],
            direction=objective["direction"],
        ),
        f"study: {study['title']}",
        "workload: mix={mix} policy={policy} accesses={accesses} "
        "sim_seed={sim_seed}".format(
            mix=study["mix"], policy=study["policy"],
            accesses=study["accesses"], sim_seed=study["sim_seed"],
        ),
        f"space: {str(space['hash'])[:16]}",
        "",
        render_best_table(report),
        "",
        "trajectory (objective, best-so-far):",
    ]
    probes = cast(List[Dict[str, Any]], report.get("probes", []))
    curve = cast(List[Optional[float]], report.get("best_curve", []))
    for row, best_so_far in zip(probes, curve):
        value = row.get("objective")
        shown = "invalid" if not row.get("valid") else f"{value:.6g}"
        star = (
            "  *"
            if row.get("valid") and value is not None and value == best_so_far
            else ""
        )
        best_text = "-" if best_so_far is None else f"{best_so_far:.6g}"
        params = cast(Dict[str, Any], row["params"])
        shown_params = " ".join(f"{name}={params[name]}" for name in sorted(params))
        lines.append(
            f"  probe {row['index']:>3}  {shown:>10}  best {best_text:>10}"
            f"{star}  {shown_params}"
        )
    return "\n".join(lines)
