"""Ready-made exploration studies over the NUcache knob space.

Two production studies ship with the harness:

* ``nucache-split`` — the MainWay/DeliWay split and epoch-length tuning
  study on a fig5 (dual-core) mix: the knobs behind the paper's
  headline sensitivity figures, searched instead of hand-gridded.
* ``nucache-quota`` — a partitioned-NUcache (``nucache-ucp``) quota
  search in the spirit of predictable LLC sharing (arXiv 2204.01679):
  the DeliWay count *is* the shared-vs-partitioned capacity quota
  (MainWays are UCP-partitioned per core, DeliWays are shared), so
  searching it alongside the selection knobs trades per-core isolation
  against post-eviction reuse.

``explore-smoke`` is the miniature study CI and the test suite use: the
same shape as ``nucache-split`` at a trace length short enough to probe
in well under a second.

Studies are plain :class:`~repro.explore.evaluate.Study` values in a
registry; new studies drop in by adding an entry to :data:`STUDIES`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.explore.evaluate import Study
from repro.explore.space import ExploreError, ParamSpace, choice, int_range, log_range

#: Study registry: name -> Study.
STUDIES: Dict[str, Study] = {
    "nucache-split": Study(
        name="nucache-split",
        title="MainWay/DeliWay split and epoch tuning (fig5 mix, NUcache)",
        space=ParamSpace(
            [
                int_range("deli_ways", 2, 12, step=2),
                log_range("epoch_misses", 2_500, 40_000),
                choice("max_selected_pcs", (4, 8, 16)),
            ],
            num_cores=2,
        ),
        mix="mix2_1",
        policy="nucache",
        accesses=120_000,
        objective="ws",
        notes=(
            "Searches the split/epoch/selection-budget space the paper's "
            "figs. 4/9 sample by hand; weighted speedup vs the LRU-alone "
            "baseline, on the first dual-core mix."
        ),
    ),
    "nucache-quota": Study(
        name="nucache-quota",
        title="Partitioned-NUcache quota search (fig5 mix, nucache-ucp)",
        space=ParamSpace(
            [
                int_range("deli_ways", 2, 12, step=2),
                log_range("epoch_misses", 5_000, 40_000),
                choice("selector", ("greedy", "topk", "all")),
            ],
            num_cores=2,
        ),
        mix="mix2_3",
        policy="nucache-ucp",
        accesses=120_000,
        objective="ws",
        notes=(
            "UCP partitions the MainWays per core while the DeliWays stay "
            "shared: deli_ways is the shared-capacity quota, searched "
            "against the selection knobs for the best isolation/reuse "
            "trade (the arXiv 2204.01679-flavoured story)."
        ),
    ),
    "explore-smoke": Study(
        name="explore-smoke",
        title="Miniature split/epoch study for CI smoke and tests",
        space=ParamSpace(
            [
                int_range("deli_ways", 2, 8, step=2),
                log_range("epoch_misses", 2_500, 20_000),
            ],
            num_cores=2,
        ),
        mix="mix2_1",
        policy="nucache",
        accesses=24_000,
        objective="ws",
        notes="Same shape as nucache-split at smoke-test trace lengths.",
    ),
}


def study_names() -> List[str]:
    """All registered study names, sorted."""
    return sorted(STUDIES)


def get_study(name: str) -> Study:
    """Look up a registered study by name."""
    try:
        return STUDIES[name]
    except KeyError:
        raise ExploreError(
            f"unknown study {name!r}; known: {', '.join(study_names())}"
        ) from None
