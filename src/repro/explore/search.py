"""Pluggable search drivers over a :class:`~repro.explore.space.ParamSpace`.

Every algorithm implements one small interface with *propose/observe*
semantics:

* :meth:`SearchAlgorithm.propose` returns the next batch of candidate
  points it wants evaluated (an empty list means the search is
  exhausted).  The batch boundary is the algorithm's natural decision
  granularity — a GA generation, a hill-climb neighbour ring, a chunk
  of random draws — and never depends on the worker count, which is
  what keeps a search's trajectory byte-identical at any ``--jobs``.
* :meth:`SearchAlgorithm.observe` feeds back ``(point, score)`` pairs.
  Scores are always *maximized*; the evaluation layer negates
  minimizing objectives before calling observe, and scores an invalid
  point as ``-inf`` so searches learn to avoid invalid corners without
  special cases.

All randomness flows through :func:`repro.common.rng.make_rng` seeded
from the search seed plus the space hash, so a given
``(space, algorithm, seed)`` triple proposes the same trajectory on
every machine — the property the resume path and the reproducibility
tests rely on.  New algorithms drop in by subclassing
:class:`SearchAlgorithm` and registering a factory in
:data:`ALGORITHMS`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.rng import make_rng
from repro.explore.space import ExploreError, Indices, ParamSpace, Point

#: Score assigned to invalid points (observe semantics: maximize).
INVALID_SCORE = float("-inf")

#: How many points chunk-style algorithms (random) propose per batch
#: when the caller's budget allows more; a bound keeps journals granular
#: without ever depending on the worker count.
_CHUNK = 16


class SearchAlgorithm:
    """Base class: deterministic propose/observe over a finite space.

    Subclasses implement :meth:`_propose_indices` and (optionally)
    :meth:`_observe_indices`; the base class handles encoding between
    points and index vectors and records every observation in
    :attr:`evaluated` so algorithms can avoid re-proposing known points.
    """

    #: Registry name (overridden per subclass).
    name = "base"

    def __init__(self, space: ParamSpace, seed: int) -> None:
        self.space = space
        self.seed = seed
        self.rng = make_rng(seed, f"explore:{self.name}:{space.space_hash()[:16]}")
        #: Every observed point: index vector -> score (maximize).
        self.evaluated: Dict[Indices, float] = {}

    # -- interface ------------------------------------------------------

    def propose(self, budget: int) -> List[Point]:
        """Up to ``budget`` new candidate points (empty when exhausted)."""
        if budget <= 0:
            return []
        return [self.space.point(ix) for ix in self._propose_indices(budget)]

    def observe(self, evaluations: Sequence[Tuple[Point, float]]) -> None:
        """Feed back scores for previously proposed points (maximize)."""
        encoded = [(self.space.indices(point), score) for point, score in evaluations]
        for indices, score in encoded:
            self.evaluated[indices] = score
        self._observe_indices(encoded)

    @property
    def best(self) -> Optional[Tuple[Indices, float]]:
        """Best observed ``(indices, score)`` so far, if anything scored."""
        finite = {ix: s for ix, s in self.evaluated.items() if s != INVALID_SCORE}
        if not finite:
            return None
        # Tie-break on the index vector so 'best' is deterministic.
        return max(finite.items(), key=lambda item: (item[1], item[0]))

    # -- subclass hooks -------------------------------------------------

    def _propose_indices(self, budget: int) -> List[Indices]:
        """Return up to ``budget`` index vectors to evaluate next."""
        raise NotImplementedError

    def _observe_indices(self, evaluations: Sequence[Tuple[Indices, float]]) -> None:
        """React to new scores (default: nothing beyond the base records)."""

    # -- shared helpers -------------------------------------------------

    def _random_indices(self) -> Indices:
        """One uniformly random index vector."""
        return tuple(int(self.rng.integers(0, n)) for n in self.space.shape)

    def _random_unseen(self, exclude: Optional[set] = None) -> Optional[Indices]:
        """A random not-yet-evaluated index vector, or ``None`` if none left.

        Draws with rejection first (cheap, overwhelmingly likely in
        sparse searches), then falls back to a deterministic scan so a
        nearly-exhausted space still terminates.
        """
        skip = set(self.evaluated)
        if exclude:
            skip |= exclude
        if len(skip) >= self.space.size:
            return None
        for _ in range(32):
            candidate = self._random_indices()
            if candidate not in skip:
                return candidate
        for candidate in self.space.iter_indices():
            if candidate not in skip:
                return candidate
        return None


class RandomSearch(SearchAlgorithm):
    """Seeded uniform sampling without replacement.

    Sampling *without* replacement gives the useful limit behaviour
    that a budget of ``space.size`` probes is exhaustive; duplicates
    would only burn budget on guaranteed store hits.
    """

    name = "random"

    def _propose_indices(self, budget: int) -> List[Indices]:
        batch: List[Indices] = []
        pending: set = set()
        for _ in range(min(budget, _CHUNK)):
            candidate = self._random_unseen(exclude=pending)
            if candidate is None:
                break
            pending.add(candidate)
            batch.append(candidate)
        return batch


class GridSearch(SearchAlgorithm):
    """Exhaustive lexicographic enumeration (ignores scores)."""

    name = "grid"

    def __init__(self, space: ParamSpace, seed: int) -> None:
        super().__init__(space, seed)
        self._cursor = space.iter_indices()

    def _propose_indices(self, budget: int) -> List[Indices]:
        batch: List[Indices] = []
        for indices in self._cursor:
            batch.append(indices)
            if len(batch) >= min(budget, _CHUNK):
                break
        return batch


class HillClimb(SearchAlgorithm):
    """Greedy neighbourhood ascent with seeded random restarts.

    From the current best point, proposes the full ring of unevaluated
    one-step neighbours (one dimension index moved by one); when the
    ring is exhausted without improvement, restarts at a fresh random
    point.  The ring is proposed as one batch, so every neighbour can
    be simulated in parallel without changing the trajectory.
    """

    name = "hill"

    def __init__(self, space: ParamSpace, seed: int) -> None:
        super().__init__(space, seed)
        self._current: Optional[Indices] = None
        self._current_score = INVALID_SCORE

    def _neighbours(self, center: Indices) -> List[Indices]:
        ring: List[Indices] = []
        for axis, width in enumerate(self.space.shape):
            for delta in (-1, 1):
                moved = center[axis] + delta
                if 0 <= moved < width:
                    ring.append(center[:axis] + (moved,) + center[axis + 1:])
        return ring

    def _propose_indices(self, budget: int) -> List[Indices]:
        if self._current is None:
            start = self._random_unseen()
            return [] if start is None else [start]
        ring = [ix for ix in self._neighbours(self._current) if ix not in self.evaluated]
        if ring:
            return ring[:budget]
        # Local optimum (or a fully-probed ring): random restart.
        restart = self._random_unseen()
        return [] if restart is None else [restart]

    def _observe_indices(self, evaluations: Sequence[Tuple[Indices, float]]) -> None:
        for indices, score in evaluations:
            if self._current is None or score > self._current_score:
                self._current = indices
                self._current_score = score


class GeneticSearch(SearchAlgorithm):
    """A simple generational GA over index-vector genomes.

    Generations of :attr:`population` genomes; once a generation is
    fully scored, the next is bred with two-elite carryover, tournament
    parent selection, uniform crossover, and per-gene mutation.  A
    generation's unevaluated genomes are proposed as one batch, so the
    whole population can evaluate in parallel.
    """

    name = "ga"

    def __init__(
        self,
        space: ParamSpace,
        seed: int,
        population: int = 8,
        mutation_rate: float = 0.25,
        tournament: int = 3,
        elites: int = 2,
    ) -> None:
        super().__init__(space, seed)
        if population < 2:
            raise ExploreError(f"population must be >= 2, got {population}")
        self.population = min(population, space.size)
        self.mutation_rate = mutation_rate
        self.tournament = min(tournament, self.population)
        self.elites = min(elites, self.population)
        self._generation: List[Indices] = [
            self._random_indices() for _ in range(self.population)
        ]

    def _propose_indices(self, budget: int) -> List[Indices]:
        pending = [ix for ix in self._generation if ix not in self.evaluated]
        # Deduplicate within the batch while keeping generation order.
        unique: List[Indices] = []
        for indices in pending:
            if indices not in unique:
                unique.append(indices)
        if not unique:
            self._breed()
            unique = []
            for indices in self._generation:
                if indices not in self.evaluated and indices not in unique:
                    unique.append(indices)
            if not unique:
                # Bred a fully-known generation: inject a fresh point so
                # the search always makes progress within budget.
                fresh = self._random_unseen()
                return [] if fresh is None else [fresh]
        return unique[:budget]

    def _score(self, indices: Indices) -> float:
        return self.evaluated.get(indices, INVALID_SCORE)

    def _select(self) -> Indices:
        """Tournament selection over the current generation."""
        picks = [
            self._generation[int(self.rng.integers(0, len(self._generation)))]
            for _ in range(self.tournament)
        ]
        return max(picks, key=lambda ix: (self._score(ix), ix))

    def _breed(self) -> None:
        """Replace the generation: elites + crossover/mutation offspring."""
        ranked = sorted(
            self._generation, key=lambda ix: (self._score(ix), ix), reverse=True
        )
        next_gen: List[Indices] = []
        for elite in ranked:
            if elite not in next_gen:
                next_gen.append(elite)
            if len(next_gen) >= self.elites:
                break
        while len(next_gen) < self.population:
            mother, father = self._select(), self._select()
            child = tuple(
                mother[axis] if self.rng.random() < 0.5 else father[axis]
                for axis in range(len(self.space.shape))
            )
            child = tuple(
                int(self.rng.integers(0, width))
                if self.rng.random() < self.mutation_rate
                else gene
                for gene, width in zip(child, self.space.shape)
            )
            next_gen.append(child)
        self._generation = next_gen


#: Algorithm registry: name -> factory(space, seed).
ALGORITHMS: Dict[str, Callable[[ParamSpace, int], SearchAlgorithm]] = {
    "random": RandomSearch,
    "grid": GridSearch,
    "hill": HillClimb,
    "ga": GeneticSearch,
}


def algorithm_names() -> List[str]:
    """All registered search algorithm names, sorted."""
    return sorted(ALGORITHMS)


def make_algorithm(name: str, space: ParamSpace, seed: int) -> SearchAlgorithm:
    """Build a registered search algorithm by name."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise ExploreError(
            f"unknown search algorithm {name!r}; known: {', '.join(algorithm_names())}"
        ) from None
    return factory(space, seed)


def drive(
    algorithm: SearchAlgorithm,
    scorer: Callable[[Point], float],
    budget: int,
) -> List[Tuple[Point, float]]:
    """Run an algorithm against a closed-form scorer (no simulation).

    The synthetic-objective test bed: loops propose/observe until
    ``budget`` points are scored or the algorithm is exhausted, and
    returns the evaluations in probe order.  Scores follow observe
    semantics (higher is better).
    """
    history: List[Tuple[Point, float]] = []
    while len(history) < budget:
        batch = algorithm.propose(budget - len(history))
        if not batch:
            break
        scored = [(point, scorer(point)) for point in batch]
        algorithm.observe(scored)
        history.extend(scored)
    return history
