"""Declarative parameter spaces: typed dimensions over the config layer.

A :class:`ParamSpace` is an ordered set of named, *finite* dimensions —
integer ranges, log-spaced ranges, categorical choices — whose cross
product is the set of candidate configurations a search explores.
Finiteness is deliberate: every dimension exposes an ordered value
tuple, so a point is just an index vector, and the same space serves
random sampling, exhaustive grids, neighbourhood moves (hill-climb) and
genome crossover (GA) without per-algorithm encodings.

Spaces are validated against the existing config layer at construction:
each dimension must name a :class:`~repro.common.config.NUcacheConfig`
field, and every value of every dimension must individually produce a
constructible system config.  Cross-dimension constraints (for example
``max_selected_pcs <= num_candidate_pcs``) cannot be checked per
dimension, so :meth:`ParamSpace.point_error` re-validates each concrete
point at probe time — a search is allowed to wander into an invalid
corner and simply scores it as unusable.

Like :class:`~repro.exec.job.SimJob`, spaces are content-addressed:
:meth:`ParamSpace.space_hash` digests the canonical dimension spec, so
journals and reports can detect when a resumed search no longer matches
the space it started from.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields as dataclass_fields
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.common.config import NUcacheConfig, paper_system_config
from repro.common.errors import ConfigError, ReproError

#: Scalar value types a dimension may take (JSON-stable, like job
#: overrides — see :mod:`repro.exec.job`).
ParamValue = Union[bool, int, float, str]

#: A concrete point of the space: dimension name -> value.
Point = Dict[str, ParamValue]

#: Internal index-vector encoding of a point (one index per dimension,
#: in space order).
Indices = Tuple[int, ...]


class ExploreError(ReproError):
    """A parameter space, study, or search request is unusable."""


@dataclass(frozen=True)
class Dimension:
    """One named axis of a parameter space (a finite, ordered value set).

    Attributes:
        name: the config parameter this axis controls (a
            :class:`~repro.common.config.NUcacheConfig` field name).
        values: ordered candidate values; adjacency in this tuple is
            what neighbourhood-based searches (hill-climb, GA mutation)
            treat as "one step".
        kind: how the axis was declared (``int``/``log``/``choice``) —
            metadata for reports; the mechanics only use ``values``.
    """

    name: str
    values: Tuple[ParamValue, ...]
    kind: str = "choice"

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ExploreError(f"dimension name must be a non-empty string, got {self.name!r}")
        if not self.values:
            raise ExploreError(f"dimension {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ExploreError(f"dimension {self.name!r} has duplicate values")
        for value in self.values:
            if not isinstance(value, (bool, int, float, str)):
                raise ExploreError(
                    f"dimension {self.name!r} value {value!r} is not a scalar"
                )

    def spec(self) -> Dict[str, object]:
        """Canonical JSON-stable description (hashed into the space hash)."""
        return {"name": self.name, "kind": self.kind, "values": list(self.values)}


def int_range(name: str, low: int, high: int, step: int = 1) -> Dimension:
    """An inclusive integer range ``low, low+step, ..., <= high``."""
    if step <= 0:
        raise ExploreError(f"step must be positive, got {step}")
    if low > high:
        raise ExploreError(f"int_range {name!r} is empty: low {low} > high {high}")
    return Dimension(name, tuple(range(low, high + 1, step)), kind="int")


def log_range(name: str, low: int, high: int, factor: int = 2) -> Dimension:
    """A geometric series ``low, low*factor, ... <= high`` (log-spaced axis)."""
    if factor <= 1:
        raise ExploreError(f"factor must be > 1, got {factor}")
    if low <= 0 or low > high:
        raise ExploreError(f"log_range {name!r} needs 0 < low <= high, got {low}..{high}")
    values: List[ParamValue] = []
    value = low
    while value <= high:
        values.append(value)
        value *= factor
    return Dimension(name, tuple(values), kind="log")


def choice(name: str, options: Sequence[ParamValue]) -> Dimension:
    """A categorical dimension over an explicit option list."""
    return Dimension(name, tuple(options), kind="choice")


#: NUcacheConfig field names a dimension may target.
_CONFIG_FIELDS = tuple(f.name for f in dataclass_fields(NUcacheConfig))


class ParamSpace:
    """An ordered, validated, content-addressed set of dimensions.

    Args:
        dimensions: the axes, in declaration order (the order index
            vectors and grid enumeration follow).
        num_cores: core count of the system the points configure; used
            to validate values against the real config constructors.
    """

    def __init__(self, dimensions: Sequence[Dimension], num_cores: int = 2) -> None:
        if not dimensions:
            raise ExploreError("a parameter space needs at least one dimension")
        names = [dim.name for dim in dimensions]
        if len(set(names)) != len(names):
            raise ExploreError(f"duplicate dimension names: {names}")
        self.dimensions: Tuple[Dimension, ...] = tuple(dimensions)
        self.num_cores = num_cores
        self._validate_against_config()

    # ------------------------------------------------------------------
    # Validation against the config layer
    # ------------------------------------------------------------------

    def _validate_against_config(self) -> None:
        """Reject axes the config layer could never accept.

        Checks each dimension name against the
        :class:`~repro.common.config.NUcacheConfig` schema and builds a
        real system config for every value *in isolation*, so a typo'd
        parameter or an out-of-domain value fails at declaration time,
        not at probe time.
        """
        for dim in self.dimensions:
            if dim.name not in _CONFIG_FIELDS:
                raise ExploreError(
                    f"dimension {dim.name!r} is not a NUcacheConfig parameter; "
                    f"known: {', '.join(_CONFIG_FIELDS)}"
                )
            for value in dim.values:
                try:
                    paper_system_config(self.num_cores, **{dim.name: value})
                except ConfigError as exc:
                    raise ExploreError(
                        f"dimension {dim.name!r} value {value!r} is invalid "
                        f"for a {self.num_cores}-core system: {exc}"
                    ) from exc

    def point_error(self, point: Point) -> Optional[str]:
        """Why this concrete point is invalid, or ``None`` if it is fine.

        Per-dimension values are valid by construction; this catches
        *cross-dimension* constraints by building the full config.
        Searches treat an invalid point as a probed-and-worthless
        configuration rather than an error.
        """
        try:
            paper_system_config(self.num_cores, **point)
        except ConfigError as exc:
            return str(exc)
        return None

    # ------------------------------------------------------------------
    # Point encoding
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of points in the full cross product."""
        total = 1
        for dim in self.dimensions:
            total *= len(dim.values)
        return total

    @property
    def shape(self) -> Tuple[int, ...]:
        """Value count per dimension, in space order."""
        return tuple(len(dim.values) for dim in self.dimensions)

    def point(self, indices: Sequence[int]) -> Point:
        """Decode an index vector into a ``{name: value}`` point."""
        if len(indices) != len(self.dimensions):
            raise ExploreError(
                f"index vector length {len(indices)} != {len(self.dimensions)} dimensions"
            )
        point: Point = {}
        for dim, index in zip(self.dimensions, indices):
            if not 0 <= index < len(dim.values):
                raise ExploreError(
                    f"index {index} out of range for dimension {dim.name!r} "
                    f"({len(dim.values)} values)"
                )
            point[dim.name] = dim.values[index]
        return point

    def indices(self, point: Point) -> Indices:
        """Encode a point back into its index vector (inverse of :meth:`point`)."""
        if set(point) != {dim.name for dim in self.dimensions}:
            raise ExploreError(
                f"point names {sorted(point)} do not match space dimensions "
                f"{[dim.name for dim in self.dimensions]}"
            )
        vector: List[int] = []
        for dim in self.dimensions:
            try:
                vector.append(dim.values.index(point[dim.name]))
            except ValueError:
                raise ExploreError(
                    f"value {point[dim.name]!r} is not on dimension {dim.name!r}"
                ) from None
        return tuple(vector)

    def iter_indices(self) -> Iterator[Indices]:
        """Every index vector in lexicographic (grid) order."""
        return iter(product(*(range(n) for n in self.shape)))

    # ------------------------------------------------------------------
    # Content addressing and serialization
    # ------------------------------------------------------------------

    def spec(self) -> Dict[str, object]:
        """Canonical field dict (the hashed content)."""
        return {
            "num_cores": self.num_cores,
            "dimensions": [dim.spec() for dim in self.dimensions],
        }

    def space_hash(self) -> str:
        """Stable content hash of the space (dimension names, values, order)."""
        canon = json.dumps(self.spec(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line human-readable summary of the axes."""
        parts = []
        for dim in self.dimensions:
            values = dim.values
            if len(values) > 4:
                shown = f"{values[0]}, {values[1]}, ..., {values[-1]}"
            else:
                shown = ", ".join(str(v) for v in values)
            parts.append(f"{dim.name} in {{{shown}}} ({len(values)})")
        return "; ".join(parts)
