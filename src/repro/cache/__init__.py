"""Cache substrate: lines, sets, set-associative caches, hierarchies."""

from repro.cache.cache import (
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    LEVEL_MEMORY,
    LastLevelCache,
    PrivateHierarchy,
    SetAssociativeCache,
    make_private_cache,
)
from repro.cache.line import NO_PC_SLOT, CacheLine
from repro.cache.set_ import CacheSet

__all__ = [
    "CacheLine",
    "CacheSet",
    "LEVEL_L1",
    "LEVEL_L2",
    "LEVEL_LLC",
    "LEVEL_MEMORY",
    "LastLevelCache",
    "NO_PC_SLOT",
    "PrivateHierarchy",
    "SetAssociativeCache",
    "make_private_cache",
]
