"""Set-associative cache and the shared-LLC interface.

:class:`LastLevelCache` is the abstract interface every shared-LLC
organization implements (plain policies, UCP, PIPP, NUcache); the
multicore engine only ever talks to this interface.
:class:`SetAssociativeCache` is the concrete policy-parameterized cache
used for every non-partitioned organization and for the private levels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List, Tuple

from repro.cache.line import CacheLine
from repro.cache.replacement.base import PolicyFactory
from repro.cache.replacement.basic import LRUPolicy
from repro.cache.set_ import CacheSet
from repro.common.config import CacheGeometry
from repro.common.stats import AccessStats, SharedCacheStats


class LastLevelCache(ABC):
    """Interface between the simulator engine and any LLC organization."""

    #: Organization name used in reports ("lru", "nucache", "ucp", ...).
    name = "abstract"

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.stats = SharedCacheStats()

    @abstractmethod
    def access(self, block_addr: int, core: int, pc: int, is_write: bool) -> bool:
        """Service one access; returns True on hit.

        Misses are assumed to be filled from memory by the time the call
        returns (no MSHR modelling — the timing model charges a fixed
        memory latency instead).
        """

    def end_of_interval(self) -> None:
        """Hook called periodically by the engine (epoch boundaries).

        Organizations with epoch behaviour (NUcache, UCP) override this;
        the default does nothing.
        """

    def occupancy_by_core(self) -> dict:
        """Lines currently held per core (for occupancy reports)."""
        return {}

    def snapshot_counters(self) -> dict:
        """Current policy counters, for sampled tracing.

        Read-only and cheap (no per-set walks): the engine's observer
        calls this every few thousand steps while tracing, so a sequence
        of snapshots reconstructs per-phase fill/hit/eviction rates
        offline without touching the access path.  Organizations with
        extra machinery (NUcache's DeliWay retention/promotion counters)
        extend the dict.
        """
        total = self.stats.total
        return {
            "hits": total.hits,
            "misses": total.misses,
            "evictions": total.evictions,
            "writebacks": total.writebacks,
        }


class SetAssociativeCache(LastLevelCache):
    """A cache whose behaviour is fully defined by a replacement policy."""

    def __init__(self, geometry: CacheGeometry, policy_factory: PolicyFactory, name: str) -> None:
        super().__init__(geometry)
        self.name = name
        ways = geometry.ways
        self.sets: List[CacheSet] = [
            CacheSet(ways, policy_factory(ways, index)) for index in range(geometry.num_sets)
        ]
        self._set_mask = geometry.num_sets - 1
        self._index_bits = geometry.num_sets.bit_length() - 1
        # Plain LRU (exact type: subclasses change semantics) never
        # bypasses, so the per-miss should_bypass call can be skipped.
        self._plain_lru = bool(self.sets) and type(self.sets[0].policy) is LRUPolicy
        #: Lines installed (misses that were not bypassed).
        self.fills = 0

    def access(self, block_addr: int, core: int, pc: int, is_write: bool) -> bool:
        # The simulator's hottest function: one combined set lookup and
        # inlined stats bookkeeping (SharedCacheStats.record unrolled)
        # instead of the find/touch/record call chain.
        cache_set = self.sets[block_addr & self._set_mask]
        tag = block_addr >> self._index_bits
        way = cache_set.lookup(tag, core, is_write)
        stats = self.stats
        per_core = stats.per_core.get(core)
        if per_core is None:
            per_core = stats.per_core.setdefault(core, AccessStats())
        total = stats.total
        if way >= 0:
            total.hits += 1
            per_core.hits += 1
            return True
        total.misses += 1
        per_core.misses += 1
        if self._plain_lru or not cache_set.policy.should_bypass(core, pc):
            self.fills += 1
            evicted = cache_set.allocate(tag, core, pc, is_write)
            if evicted is not None:
                total.evictions += 1
                if evicted[1]:
                    total.writebacks += 1
        return False

    def snapshot_counters(self) -> dict:
        """Base counters plus the fill count (misses minus bypasses)."""
        counters = super().snapshot_counters()
        counters["fills"] = self.fills
        return counters

    def probe(self, block_addr: int) -> bool:
        """Check presence without disturbing any state."""
        cache_set = self.sets[block_addr & self._set_mask]
        return cache_set.find(block_addr >> self._index_bits) >= 0

    def invalidate(self, block_addr: int) -> bool:
        """Drop a block if present; returns whether it was present."""
        cache_set = self.sets[block_addr & self._set_mask]
        return cache_set.invalidate(block_addr >> self._index_bits)

    def set_of(self, block_addr: int) -> CacheSet:
        """The set a block address maps to (for tests and monitors)."""
        return self.sets[block_addr & self._set_mask]

    def split_address(self, block_addr: int) -> Tuple[int, int]:
        """Return ``(set_index, tag)`` of a block address."""
        return block_addr & self._set_mask, block_addr >> self._index_bits

    def valid_lines(self) -> Iterator[Tuple[int, CacheLine]]:
        """Iterate ``(set_index, line)`` over every valid line."""
        for index, cache_set in enumerate(self.sets):
            for line in cache_set.valid_lines():
                yield index, line

    def occupancy_by_core(self) -> dict:
        counts: dict = {}
        for _, line in self.valid_lines():
            counts[line.core] = counts.get(line.core, 0) + 1
        return counts

    @property
    def occupancy(self) -> int:
        """Total valid lines in the cache."""
        return sum(cache_set.occupancy for cache_set in self.sets)


def make_private_cache(geometry: CacheGeometry, policy_factory: PolicyFactory,
                       name: str) -> SetAssociativeCache:
    """Convenience constructor for private L1/L2 caches (always LRU-family)."""
    return SetAssociativeCache(geometry, policy_factory, name)


#: Result of a hierarchy access: the level that serviced it.
LEVEL_L1 = "l1"
LEVEL_L2 = "l2"
LEVEL_LLC = "llc"
LEVEL_MEMORY = "memory"


class PrivateHierarchy:
    """A core's private L1+L2 in front of a shared LLC.

    Non-inclusive, no back-invalidation: each level is looked up and
    filled independently, which matches the paper's use of the LLC as a
    victim of the private levels' filtering without modelling coherence.
    """

    __slots__ = ("l1", "l2", "core_id")

    def __init__(self, l1: SetAssociativeCache, l2: SetAssociativeCache, core_id: int) -> None:
        self.l1 = l1
        self.l2 = l2
        self.core_id = core_id

    def access(self, block_addr: int, pc: int, is_write: bool,
               llc: LastLevelCache) -> str:
        """Walk the hierarchy; returns the servicing level constant."""
        core = self.core_id
        if self.l1.access(block_addr, core, pc, is_write):
            return LEVEL_L1
        if self.l2.access(block_addr, core, pc, is_write):
            return LEVEL_L2
        if llc.access(block_addr, core, pc, is_write):
            return LEVEL_LLC
        return LEVEL_MEMORY
