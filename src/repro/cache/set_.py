"""One set of a set-associative cache.

The set owns its way slots, a tag-to-way index for O(1) lookup, and a
per-set replacement policy.  It knows nothing about addresses,
statistics or hierarchy — the owning cache handles those.

Storage is *slot arrays*: parallel per-way lists (``_valid``, ``_tags``,
``_dirty``, ...) instead of a list of :class:`CacheLine` objects.  The
access loop then touches one list element per field instead of chasing
an object and its attribute, which is measurably faster in CPython.  The
object view survives for introspection: :attr:`lines` and
:meth:`valid_lines` materialize :class:`CacheLine` snapshots on demand,
so tests and reports keep the same API while the hot path never builds
an object.

LRU fast path: when the policy is exactly :class:`LRUPolicy`,
:meth:`lookup` and :meth:`allocate` perform the recency-stack updates
inline (hit → move to MRU, victim → stack bottom) instead of calling
``policy.touch``/``victim``/``insert``.  The inlined operations are the
literal bodies of the LRU methods, so behaviour is identical; subclasses
with different semantics (FIFO, LIP, DIP, ...) fail the exact-type check
and take the generic path.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.cache.line import NO_PC_SLOT, CacheLine
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.basic import LRUPolicy


class CacheSet:
    """The ways of one set plus their replacement state."""

    __slots__ = (
        "policy",
        "_ways",
        "_is_lru",
        "_tag_to_way",
        "_free_ways",
        "_valid",
        "_tags",
        "_dirty",
        "_cores",
        "_pcs",
        "_pc_slots",
    )

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.policy = policy
        self._ways = ways
        # Exact type check: LRU subclasses (FIFO, LIP, ...) change the
        # touch/insert semantics and must take the generic path.
        self._is_lru = type(policy) is LRUPolicy
        self._tag_to_way: dict = {}
        # Invalid ways are consumed highest-first so pop() is O(1).
        self._free_ways = list(range(ways - 1, -1, -1))
        self._valid = [False] * ways
        self._tags = [0] * ways
        self._dirty = [False] * ways
        self._cores = [0] * ways
        self._pcs = [0] * ways
        self._pc_slots = [NO_PC_SLOT] * ways

    def find(self, tag: int) -> int:
        """Way currently holding ``tag``, or -1."""
        return self._tag_to_way.get(tag, -1)

    def lookup(self, tag: int, core: int, is_write: bool) -> int:
        """Combined find+touch: service a potential hit in one call.

        Returns the way holding ``tag`` after recording the hit on it,
        or -1 on miss (no state changes).  Equivalent to ``find`` then
        ``touch``, minus the call overhead on the hot path.
        """
        way = self._tag_to_way.get(tag, -1)
        if way >= 0:
            if self._is_lru:
                # Inline LRUPolicy.touch: promote to MRU.  Skipping the
                # list surgery when the way already sits at MRU changes
                # no state (remove+insert at 0 is the identity there).
                stack = self.policy.stack
                if stack[0] != way:
                    stack.remove(way)
                    stack.insert(0, way)
            else:
                self.policy.touch(way, core)
            if is_write:
                self._dirty[way] = True
        return way

    def touch(self, way: int, core: int, is_write: bool) -> None:
        """Record a hit on ``way``."""
        self.policy.touch(way, core)
        if is_write:
            self._dirty[way] = True

    def allocate(
        self, tag: int, core: int, pc: int, is_write: bool
    ) -> Optional[Tuple[int, bool]]:
        """Fill ``tag`` into the set, evicting if necessary.

        Free ways are filled without consulting ``policy.victim``, but
        ``policy.insert`` runs after *every* fill — free-way or victim —
        which is the contract every policy's state machine relies on.
        That contract is sound across explicit invalidation because
        ``invalidate`` calls ``policy.invalidate(way)`` before the way
        enters the free list, and every stateful policy (RRIP's rrpv,
        SHiP's occupied/signature/reused, SDBP's predictions, the
        recency stacks) resets its per-way state there — so a later
        free-way fill's ``insert`` sees a way indistinguishable from a
        never-used one.  ``tests/test_invalidate_refill.py`` pins this.

        Returns:
            ``(evicted_tag, evicted_dirty)`` when a valid line was
            displaced, else ``None``.
        """
        evicted: Optional[Tuple[int, bool]] = None
        tags = self._tags
        if self._free_ways:
            way = self._free_ways.pop()
            if self._is_lru:
                # Inline LRUPolicy.insert: place at MRU.
                stack = self.policy.stack
                stack.remove(way)
                stack.insert(0, way)
            else:
                self.policy.insert(way, core, pc)
        elif self._is_lru:
            # Inline LRUPolicy.victim (stack bottom) + insert (to MRU).
            stack = self.policy.stack
            way = stack.pop()
            stack.insert(0, way)
            evicted = (tags[way], self._dirty[way])
            del self._tag_to_way[tags[way]]
        else:
            way = self.policy.victim()
            evicted = (tags[way], self._dirty[way])
            del self._tag_to_way[tags[way]]
            self.policy.insert(way, core, pc)
        self._valid[way] = True
        tags[way] = tag
        self._dirty[way] = is_write
        self._cores[way] = core
        self._pcs[way] = pc
        self._pc_slots[way] = NO_PC_SLOT
        self._tag_to_way[tag] = way
        return evicted

    def invalidate(self, tag: int) -> bool:
        """Drop ``tag`` from the set; returns whether it was present.

        Order matters: ``policy.invalidate(way)`` runs before the way
        joins the free list, so the policy's per-way state is clean by
        the time a future free-way fill reuses the slot (see
        :meth:`allocate`).
        """
        way = self._tag_to_way.pop(tag, None)
        if way is None:
            return False
        self._valid[way] = False
        self._dirty[way] = False
        self._pc_slots[way] = NO_PC_SLOT
        self.policy.invalidate(way)
        self._free_ways.append(way)
        return True

    @property
    def occupancy(self) -> int:
        """Number of valid lines in the set."""
        return len(self._tag_to_way)

    def dirty_of(self, way: int) -> bool:
        """Whether ``way`` holds a dirty line."""
        return self._dirty[way]

    def core_of(self, way: int) -> int:
        """Core that filled ``way``."""
        return self._cores[way]

    def _line_view(self, way: int) -> CacheLine:
        """Materialize one way's state as a :class:`CacheLine` snapshot."""
        line = CacheLine()
        line.valid = self._valid[way]
        line.tag = self._tags[way]
        line.dirty = self._dirty[way]
        line.core = self._cores[way]
        line.pc = self._pcs[way]
        line.pc_slot = self._pc_slots[way]
        return line

    @property
    def lines(self) -> List[CacheLine]:
        """Snapshot of every way as :class:`CacheLine` objects.

        Introspection only (tests, reports): the snapshots are fresh
        objects, so mutating them does not change the set.
        """
        return [self._line_view(way) for way in range(self._ways)]

    def valid_lines(self) -> Iterator[CacheLine]:
        """Iterate snapshots of the valid lines (unspecified order)."""
        return (
            self._line_view(way) for way in range(self._ways) if self._valid[way]
        )
