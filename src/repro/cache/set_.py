"""One set of a set-associative cache.

The set owns its :class:`~repro.cache.line.CacheLine` slots, a
tag-to-way index for O(1) lookup, and a per-set replacement policy.
It knows nothing about addresses, statistics or hierarchy — the owning
cache handles those.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.cache.line import CacheLine
from repro.cache.replacement.base import ReplacementPolicy


class CacheSet:
    """The ways of one set plus their replacement state."""

    __slots__ = ("lines", "policy", "_tag_to_way", "_free_ways")

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.lines = [CacheLine() for _ in range(ways)]
        self.policy = policy
        self._tag_to_way: dict = {}
        # Invalid ways are consumed highest-first so pop() is O(1).
        self._free_ways = list(range(ways - 1, -1, -1))

    def find(self, tag: int) -> int:
        """Way currently holding ``tag``, or -1."""
        return self._tag_to_way.get(tag, -1)

    def touch(self, way: int, core: int, is_write: bool) -> None:
        """Record a hit on ``way``."""
        self.policy.touch(way, core)
        if is_write:
            self.lines[way].dirty = True

    def allocate(
        self, tag: int, core: int, pc: int, is_write: bool
    ) -> Optional[Tuple[int, bool]]:
        """Fill ``tag`` into the set, evicting if necessary.

        Returns:
            ``(evicted_tag, evicted_dirty)`` when a valid line was
            displaced, else ``None``.
        """
        evicted: Optional[Tuple[int, bool]] = None
        if self._free_ways:
            way = self._free_ways.pop()
        else:
            way = self.policy.victim()
            victim_line = self.lines[way]
            evicted = (victim_line.tag, victim_line.dirty)
            del self._tag_to_way[victim_line.tag]
        self.lines[way].fill(tag, core, pc, is_write)
        self._tag_to_way[tag] = way
        self.policy.insert(way, core, pc)
        return evicted

    def invalidate(self, tag: int) -> bool:
        """Drop ``tag`` from the set; returns whether it was present."""
        way = self._tag_to_way.pop(tag, None)
        if way is None:
            return False
        self.lines[way].invalidate()
        self.policy.invalidate(way)
        self._free_ways.append(way)
        return True

    @property
    def occupancy(self) -> int:
        """Number of valid lines in the set."""
        return len(self._tag_to_way)

    def valid_lines(self) -> Iterator[CacheLine]:
        """Iterate the valid lines (unspecified order)."""
        return (line for line in self.lines if line.valid)
