"""SHiP — Signature-based Hit Prediction (Wu+, MICRO 2011).

SHiP postdates NUcache by a few months and is the other landmark
PC-centric LLC policy; it is included as an extension comparison (the
"later PC-based policies" study).  Mechanism, on top of SRRIP:

* Each line carries the *signature* of the PC that filled it and an
  *outcome* bit (has the line been re-referenced since fill?).
* A table of saturating counters (the SHCT), indexed by a hash of the
  signature, learns whether fills from that signature tend to be
  re-referenced: trained down when a never-reused line is evicted,
  trained up on a line's first reuse.
* On a fill, a signature whose counter is zero is predicted dead-on-
  arrival and inserted at distant RRPV (evicted first); everything else
  gets SRRIP's long insertion.
* The bypass variant (``SHiPPolicy(bypass=True)``) goes one step
  further and does not allocate zero-counter fills at all.

Like NUcache, SHiP acts on fill-PC information — but it throttles
*insertion priority* per PC, whereas NUcache grants *extra lifetime*
to a selected subset.  The fig. 11 extension quantifies where each
choice wins.
"""

from __future__ import annotations

from typing import List

from repro.cache.replacement.base import PolicyFactory
from repro.cache.replacement.rrip import SRRIPPolicy

#: Default SHCT size (counters) and width (bits).
DEFAULT_SHCT_ENTRIES = 16 * 1024
DEFAULT_SHCT_BITS = 3


class SignatureHitCounterTable:
    """The SHCT: shared, signature-indexed saturating counters."""

    def __init__(self, entries: int = DEFAULT_SHCT_ENTRIES,
                 counter_bits: int = DEFAULT_SHCT_BITS) -> None:
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        if counter_bits <= 0:
            raise ValueError(f"counter_bits must be positive, got {counter_bits}")
        self.entries = entries
        self.max_value = (1 << counter_bits) - 1
        # Weak "reused" bias at reset: new signatures are given the
        # benefit of the doubt (value 1, not 0).
        self._counters = [1] * entries

    def index_of(self, core: int, pc: int) -> int:
        """Hash a (core, PC) pair into the table."""
        return hash((core, pc)) % self.entries

    def value(self, signature: int) -> int:
        """Current counter value for a signature index."""
        return self._counters[signature]

    def train_reused(self, signature: int) -> None:
        """A line of this signature was re-referenced."""
        if self._counters[signature] < self.max_value:
            self._counters[signature] += 1

    def train_dead(self, signature: int) -> None:
        """A line of this signature was evicted without reuse."""
        if self._counters[signature] > 0:
            self._counters[signature] -= 1


class SHiPPolicy(SRRIPPolicy):
    """Per-set SHiP state over a shared SHCT."""

    name = "ship"

    def __init__(self, ways: int, shct: SignatureHitCounterTable,
                 rrpv_bits: int = 2, bypass: bool = False) -> None:
        super().__init__(ways, rrpv_bits)
        self.shct = shct
        self.bypass = bypass
        self._signature: List[int] = [-1] * ways
        self._reused: List[bool] = [False] * ways
        self._occupied: List[bool] = [False] * ways

    def touch(self, way: int, core: int) -> None:
        super().touch(way, core)
        if not self._reused[way] and self._signature[way] >= 0:
            self._reused[way] = True
            self.shct.train_reused(self._signature[way])

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        # Close out the outgoing line's training first.
        if self._occupied[way] and not self._reused[way] and self._signature[way] >= 0:
            self.shct.train_dead(self._signature[way])
        signature = self.shct.index_of(core, pc)
        self._signature[way] = signature
        self._reused[way] = False
        self._occupied[way] = True
        if self.shct.value(signature) == 0:
            self.rrpv[way] = self.max_rrpv  # predicted dead on arrival
        else:
            self.rrpv[way] = self.max_rrpv - 1

    def should_bypass(self, core: int, pc: int) -> bool:
        if not self.bypass:
            return False
        return self.shct.value(self.shct.index_of(core, pc)) == 0

    def invalidate(self, way: int) -> None:
        super().invalidate(way)
        if self._occupied[way] and not self._reused[way] and self._signature[way] >= 0:
            self.shct.train_dead(self._signature[way])
        self._occupied[way] = False
        self._signature[way] = -1
        self._reused[way] = False


def ship_factory(bypass: bool = False, shct_entries: int = DEFAULT_SHCT_ENTRIES,
                 rrpv_bits: int = 2) -> PolicyFactory:
    """Factory producing a SHiP cache with one shared SHCT."""
    shct = SignatureHitCounterTable(shct_entries)
    return lambda ways, set_index: SHiPPolicy(ways, shct, rrpv_bits, bypass)
