"""Set-dueling infrastructure shared by DIP, TADIP-F and DRRIP.

Set dueling (Qureshi+, ISCA'07) dedicates a few *leader* sets to each of
two competing policies and lets the remaining *follower* sets adopt
whichever leader currently misses less, tracked by a saturating policy
selector (PSEL): a miss in a policy-A leader nudges PSEL one way, a miss
in a policy-B leader nudges it the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class SaturatingCounter:
    """An n-bit saturating counter with a mid-point decision threshold."""

    def __init__(self, bits: int = 10) -> None:
        if bits <= 1:
            raise ValueError(f"counter needs at least 2 bits, got {bits}")
        self.max_value = (1 << bits) - 1
        self.value = 1 << (bits - 1)

    def increment(self) -> None:
        """Saturating increment."""
        if self.value < self.max_value:
            self.value += 1

    def decrement(self) -> None:
        """Saturating decrement."""
        if self.value > 0:
            self.value -= 1

    @property
    def msb_set(self) -> bool:
        """True when the counter is in its upper half."""
        return self.value > self.max_value // 2


#: Roles a set can play in a duel.
FOLLOWER = "follower"
LEADER_PRIMARY = "leader-primary"    # dedicated to the baseline policy
LEADER_ALTERNATE = "leader-alternate"  # dedicated to the challenger


@dataclass(frozen=True)
class DuelRole:
    """Role of one set: which policy it is dedicated to, and for whom.

    ``owner`` is the core whose PSEL this leader set trains (always 0 for
    single-selector duels such as DIP/DRRIP).
    """

    kind: str
    owner: int = 0


def assign_role(set_index: int, num_owners: int = 1, period: int = 64) -> DuelRole:
    """Static leader-set assignment.

    Every ``period`` consecutive sets contain one primary leader (offset
    0) and one alternate leader (offset ``period // 2``); ownership
    rotates over ``num_owners`` so each owner gets an equal share of
    leader sets of both kinds.  All other sets are followers.
    """
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")
    offset = set_index % period
    group = set_index // period
    if offset == 0:
        return DuelRole(LEADER_PRIMARY, group % num_owners)
    if offset == period // 2:
        return DuelRole(LEADER_ALTERNATE, group % num_owners)
    return DuelRole(FOLLOWER)


class DuelState:
    """Shared PSEL bank for one duel, one counter per owner.

    Convention: a miss in a *primary* leader increments the owner's PSEL
    (evidence against the primary policy), a miss in an *alternate*
    leader decrements it.  ``prefer_alternate`` is True when the
    challenger is currently winning for that owner.
    """

    def __init__(self, num_owners: int = 1, psel_bits: int = 10) -> None:
        if num_owners <= 0:
            raise ValueError(f"num_owners must be positive, got {num_owners}")
        self._counters = [SaturatingCounter(psel_bits) for _ in range(num_owners)]

    def record_leader_miss(self, role: DuelRole) -> None:
        """Update the owner's PSEL after a miss in a leader set."""
        if role.kind == LEADER_PRIMARY:
            self._counters[role.owner].increment()
        elif role.kind == LEADER_ALTERNATE:
            self._counters[role.owner].decrement()

    def prefer_alternate(self, owner: int = 0) -> bool:
        """Should followers of ``owner`` use the alternate policy?"""
        return self._counters[owner].msb_set

    def counter_value(self, owner: int = 0) -> int:
        """Raw PSEL value, for inspection in tests and reports."""
        return self._counters[owner].value


def policy_for(role: DuelRole, state: DuelState, owner: Optional[int] = None) -> bool:
    """Decide whether to apply the *alternate* policy for an access.

    Leader sets are pinned to their dedicated policy for their owner;
    any other requester in a leader set, and everyone in follower sets,
    follows its own PSEL (the "-F" feedback refinement of TADIP).
    """
    requester = role.owner if owner is None else owner
    if role.kind == LEADER_PRIMARY and requester == role.owner:
        return False
    if role.kind == LEADER_ALTERNATE and requester == role.owner:
        return True
    return state.prefer_alternate(requester)
