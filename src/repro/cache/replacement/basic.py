"""Basic replacement policies: LRU, FIFO, Random, NRU, tree-PLRU, LIP.

These are the textbook policies the richer schemes (DIP, TADIP, DRRIP,
UCP, PIPP, NUcache) build on or duel against.
"""

from __future__ import annotations

import random

from repro.cache.replacement.base import PolicyFactory, RecencyStackPolicy, ReplacementPolicy
from repro.common.addr import is_power_of_two
from repro.common.rng import derive_seed


class LRUPolicy(RecencyStackPolicy):
    """Least-recently-used: hits promote to MRU, fills insert at MRU."""

    name = "lru"


class FIFOPolicy(RecencyStackPolicy):
    """First-in-first-out: fills insert at MRU, hits do not promote."""

    name = "fifo"

    def touch(self, way: int, core: int) -> None:
        """Hits leave the insertion order untouched."""


class LIPPolicy(RecencyStackPolicy):
    """LRU-insertion policy: fills land at the LRU position.

    A line only survives if it is reused before the next fill, which
    protects the cache against thrashing working sets (Qureshi+, ISCA'07).
    """

    name = "lip"

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        self.place(way, self.ways - 1)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim selection, deterministic per set."""

    name = "random"

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._rng = random.Random(seed)

    def touch(self, way: int, core: int) -> None:
        """Random replacement keeps no hit state."""

    def victim(self) -> int:
        return self._rng.randrange(self.ways)

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        """Random replacement keeps no fill state."""


class NRUPolicy(ReplacementPolicy):
    """Not-recently-used: one reference bit per way.

    Hits and fills set the bit; the victim is the lowest-numbered way
    with a clear bit.  When every bit is set, all bits (except the one
    just touched, per the classic formulation: all of them) are cleared.
    """

    name = "nru"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._referenced = [False] * ways

    def touch(self, way: int, core: int) -> None:
        self._mark(way)

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        self._mark(way)

    def _mark(self, way: int) -> None:
        self._referenced[way] = True
        if all(self._referenced):
            self._referenced = [False] * self.ways
            self._referenced[way] = True

    def victim(self) -> int:
        for way, referenced in enumerate(self._referenced):
            if not referenced:
                return way
        # _mark guarantees at least one clear bit, but stay total anyway.
        return 0

    def invalidate(self, way: int) -> None:
        self._referenced[way] = False


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU over a power-of-two number of ways.

    The classic binary-tree approximation: each internal node holds one
    bit pointing toward the less-recently-used half.  Touching a way
    flips the bits on its root path to point away from it; the victim is
    found by following the bits from the root.
    """

    name = "plru"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if not is_power_of_two(ways):
            raise ValueError(f"tree-PLRU requires power-of-two ways, got {ways}")
        # Implicit heap layout: node i has children 2i+1, 2i+2; there are
        # ways-1 internal nodes.
        self._bits = [False] * (ways - 1)

    def touch(self, way: int, core: int) -> None:
        self._point_away_from(way)

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        self._point_away_from(way)

    def _point_away_from(self, way: int) -> None:
        node = 0
        low, high = 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            went_right = way >= mid
            # Bit True means "LRU side is the right child".
            self._bits[node] = not went_right
            if went_right:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid

    def victim(self) -> int:
        node = 0
        low, high = 0, self.ways
        while high - low > 1:
            mid = (low + high) // 2
            if self._bits[node]:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        return low


def lru_factory() -> PolicyFactory:
    """Factory producing per-set LRU policies."""
    return lambda ways, set_index: LRUPolicy(ways)


def fifo_factory() -> PolicyFactory:
    """Factory producing per-set FIFO policies."""
    return lambda ways, set_index: FIFOPolicy(ways)


def lip_factory() -> PolicyFactory:
    """Factory producing per-set LIP policies."""
    return lambda ways, set_index: LIPPolicy(ways)


def nru_factory() -> PolicyFactory:
    """Factory producing per-set NRU policies."""
    return lambda ways, set_index: NRUPolicy(ways)


def plru_factory() -> PolicyFactory:
    """Factory producing per-set tree-PLRU policies."""
    return lambda ways, set_index: TreePLRUPolicy(ways)


def random_factory(seed: int = 0) -> PolicyFactory:
    """Factory producing per-set random policies with derived seeds."""
    return lambda ways, set_index: RandomPolicy(ways, derive_seed(seed, f"rand-set{set_index}"))
