"""BIP, DIP and TADIP-F insertion policies.

* **BIP** (bimodal insertion) inserts at LRU except with a small
  probability ``1/32`` at MRU, preserving a trickle of long-lived lines
  in thrashing workloads.
* **DIP** (dynamic insertion) set-duels LRU against BIP with one PSEL.
* **TADIP-F** (thread-aware DIP with feedback) runs one duel *per core*:
  each core's insertions independently choose LRU or BIP according to
  that core's PSEL, trained on per-core leader sets.  This is the
  shared-cache baseline the NUcache paper compares against.
"""

from __future__ import annotations

import random

from repro.cache.replacement.base import PolicyFactory, RecencyStackPolicy
from repro.cache.replacement.dueling import DuelRole, DuelState, assign_role, policy_for
from repro.common.rng import derive_seed

#: BIP's bimodal throttle: probability of an MRU insertion.
BIP_EPSILON = 1.0 / 32.0


class BIPPolicy(RecencyStackPolicy):
    """Bimodal insertion: MRU with probability epsilon, else LRU."""

    name = "bip"

    def __init__(self, ways: int, seed: int = 0, epsilon: float = BIP_EPSILON) -> None:
        super().__init__(ways)
        self._rng = random.Random(seed)
        self._epsilon = epsilon

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        if self._rng.random() < self._epsilon:
            self.place(way, 0)
        else:
            self.place(way, self.ways - 1)


class DuelingInsertionPolicy(RecencyStackPolicy):
    """Per-set half of a DIP/TADIP duel between LRU and BIP insertion.

    The shared :class:`DuelState` is handed in by the factory; this class
    only knows its own role and performs the insertion dictated by
    :func:`policy_for` for the inserting core.
    """

    name = "dip"

    def __init__(
        self,
        ways: int,
        role: DuelRole,
        state: DuelState,
        seed: int = 0,
        thread_aware: bool = False,
        epsilon: float = BIP_EPSILON,
    ) -> None:
        super().__init__(ways)
        self._role = role
        self._state = state
        self._rng = random.Random(seed)
        self._thread_aware = thread_aware
        self._epsilon = epsilon

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        owner = core if self._thread_aware else 0
        if self._is_trainer(owner):
            self._state.record_leader_miss(self._role)
        use_bip = policy_for(self._role, self._state, owner)
        if use_bip and self._rng.random() >= self._epsilon:
            self.place(way, self.ways - 1)
        else:
            self.place(way, 0)

    def _is_trainer(self, owner: int) -> bool:
        """A leader set trains its PSEL only on its owner's misses."""
        return self._role.kind != "follower" and owner == self._role.owner


def bip_factory(seed: int = 0) -> PolicyFactory:
    """Factory producing per-set BIP policies."""
    return lambda ways, set_index: BIPPolicy(ways, derive_seed(seed, f"bip-set{set_index}"))


def dip_factory(seed: int = 0, psel_bits: int = 10) -> PolicyFactory:
    """Factory producing a DIP cache: one duel, LRU vs BIP."""
    state = DuelState(num_owners=1, psel_bits=psel_bits)

    def factory(ways: int, set_index: int) -> DuelingInsertionPolicy:
        role = assign_role(set_index, num_owners=1)
        return DuelingInsertionPolicy(
            ways, role, state, derive_seed(seed, f"dip-set{set_index}"), thread_aware=False
        )

    return factory


def tadip_factory(num_cores: int, seed: int = 0, psel_bits: int = 10) -> PolicyFactory:
    """Factory producing a TADIP-F cache: one LRU-vs-BIP duel per core."""
    state = DuelState(num_owners=num_cores, psel_bits=psel_bits)

    def factory(ways: int, set_index: int) -> DuelingInsertionPolicy:
        role = assign_role(set_index, num_owners=num_cores)
        return DuelingInsertionPolicy(
            ways, role, state, derive_seed(seed, f"tadip-set{set_index}"), thread_aware=True
        )

    return factory
