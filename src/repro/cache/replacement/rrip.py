"""SRRIP, BRRIP and DRRIP replacement (Jaleel+, ISCA 2010).

Re-reference interval prediction keeps an M-bit RRPV (re-reference
prediction value) per way:

* hit  → RRPV := 0 (near-immediate re-reference predicted),
* fill → SRRIP inserts with RRPV = max-1 ("long"); BRRIP inserts with
  max ("distant") except with probability 1/32 with max-1,
* victim → leftmost way with RRPV == max; if none, age every way by one
  and rescan.

DRRIP set-duels SRRIP against BRRIP.  RRIP postdates NUcache by a year;
it is included as the substrate's modern point of comparison and used by
the extension experiments.
"""

from __future__ import annotations

import random

from repro.cache.replacement.base import PolicyFactory, ReplacementPolicy
from repro.cache.replacement.dueling import DuelRole, DuelState, assign_role, policy_for
from repro.common.rng import derive_seed

#: BRRIP's bimodal throttle: probability of a "long" (max-1) insertion.
BRRIP_EPSILON = 1.0 / 32.0


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with M-bit RRPVs (default M=2)."""

    name = "srrip"

    def __init__(self, ways: int, rrpv_bits: int = 2) -> None:
        super().__init__(ways)
        if rrpv_bits <= 0:
            raise ValueError(f"rrpv_bits must be positive, got {rrpv_bits}")
        self.max_rrpv = (1 << rrpv_bits) - 1
        # Start distant so untouched ways are evicted first.
        self.rrpv = [self.max_rrpv] * ways

    def touch(self, way: int, core: int) -> None:
        self.rrpv[way] = 0

    def victim(self) -> int:
        while True:
            for way in range(self.ways):
                if self.rrpv[way] == self.max_rrpv:
                    return way
            for way in range(self.ways):
                self.rrpv[way] += 1

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        self.rrpv[way] = self._insertion_rrpv()

    def _insertion_rrpv(self) -> int:
        return self.max_rrpv - 1

    def invalidate(self, way: int) -> None:
        self.rrpv[way] = self.max_rrpv


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: distant insertion with a rare long insertion."""

    name = "brrip"

    def __init__(self, ways: int, seed: int = 0, rrpv_bits: int = 2) -> None:
        super().__init__(ways, rrpv_bits)
        self._rng = random.Random(seed)

    def _insertion_rrpv(self) -> int:
        if self._rng.random() < BRRIP_EPSILON:
            return self.max_rrpv - 1
        return self.max_rrpv


class DRRIPPolicy(SRRIPPolicy):
    """Per-set half of a DRRIP duel between SRRIP and BRRIP insertion."""

    name = "drrip"

    def __init__(
        self,
        ways: int,
        role: DuelRole,
        state: DuelState,
        seed: int = 0,
        rrpv_bits: int = 2,
    ) -> None:
        super().__init__(ways, rrpv_bits)
        self._role = role
        self._state = state
        self._rng = random.Random(seed)

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        if self._role.kind != "follower":
            self._state.record_leader_miss(self._role)
        use_brrip = policy_for(self._role, self._state)
        if use_brrip and self._rng.random() >= BRRIP_EPSILON:
            self.rrpv[way] = self.max_rrpv
        else:
            self.rrpv[way] = self.max_rrpv - 1


def srrip_factory(rrpv_bits: int = 2) -> PolicyFactory:
    """Factory producing per-set SRRIP policies."""
    return lambda ways, set_index: SRRIPPolicy(ways, rrpv_bits)


def brrip_factory(seed: int = 0, rrpv_bits: int = 2) -> PolicyFactory:
    """Factory producing per-set BRRIP policies."""
    return lambda ways, set_index: BRRIPPolicy(
        ways, derive_seed(seed, f"brrip-set{set_index}"), rrpv_bits
    )


def drrip_factory(seed: int = 0, rrpv_bits: int = 2, psel_bits: int = 10) -> PolicyFactory:
    """Factory producing a DRRIP cache: one duel, SRRIP vs BRRIP."""
    state = DuelState(num_owners=1, psel_bits=psel_bits)

    def factory(ways: int, set_index: int) -> DRRIPPolicy:
        role = assign_role(set_index, num_owners=1)
        return DRRIPPolicy(ways, role, state, derive_seed(seed, f"drrip-set{set_index}"), rrpv_bits)

    return factory
