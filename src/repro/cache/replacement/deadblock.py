"""Dead-block-prediction replacement (SDBP-style, Khan+ MICRO 2010).

Contemporary with NUcache, dead-block prediction is the third PC-based
approach of that era: predict, at each *touch* of a line, whether that
touch is the line's last before eviction — and if so, make the line the
preferred victim (its space is free capacity from that moment on).

This implementation is the trace-free "reference + eviction voting"
variant:

* Each way remembers the PC of its most recent touch.
* A shared table of saturating counters (indexed by a PC hash) tallies
  outcomes: when a line is evicted, the PC of its last touch correctly
  ended the lifetime → train toward *dead*; when a line is re-touched,
  the PC of its previous touch was not last → train toward *live*.
* A line whose last touch PC's counter exceeds a threshold is predicted
  dead and outranks the LRU order for victim selection.

The full SDBP trains on sampler sets with partial tags; the shared-
table simplification keeps the same learning signal with less
machinery (the sampler exists to save hardware, which a simulator does
not need — cf. the Table 2 discussion of monitor budgets).
"""

from __future__ import annotations

from typing import List

from repro.cache.replacement.base import PolicyFactory, RecencyStackPolicy

#: Default predictor table size and counter geometry.
DEFAULT_TABLE_ENTRIES = 16 * 1024
DEFAULT_COUNTER_BITS = 2
#: A counter at or above this value predicts "dead".
DEFAULT_DEAD_THRESHOLD = 2


class DeadBlockPredictor:
    """Shared PC-indexed dead/live vote table."""

    def __init__(self, entries: int = DEFAULT_TABLE_ENTRIES,
                 counter_bits: int = DEFAULT_COUNTER_BITS,
                 dead_threshold: int = DEFAULT_DEAD_THRESHOLD) -> None:
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        if counter_bits <= 0:
            raise ValueError(f"counter_bits must be positive, got {counter_bits}")
        max_value = (1 << counter_bits) - 1
        if not 0 < dead_threshold <= max_value:
            raise ValueError(
                f"dead_threshold must be in 1..{max_value}, got {dead_threshold}"
            )
        self.entries = entries
        self.max_value = max_value
        self.dead_threshold = dead_threshold
        self._counters = [0] * entries

    def index_of(self, core: int, pc: int) -> int:
        """Hash a (core, PC) pair into the table."""
        return hash((core, pc)) % self.entries

    def predicts_dead(self, signature: int) -> bool:
        """Whether a touch by this signature is predicted to be last."""
        return self._counters[signature] >= self.dead_threshold

    def train_dead(self, signature: int) -> None:
        """The signature's touch turned out to be the last."""
        if self._counters[signature] < self.max_value:
            self._counters[signature] += 1

    def train_live(self, signature: int) -> None:
        """The signature's touch was followed by a reuse."""
        if self._counters[signature] > 0:
            self._counters[signature] -= 1


class SDBPPolicy(RecencyStackPolicy):
    """LRU augmented with dead-block victim priority.

    Note: ``touch`` does not receive the touching PC through the policy
    interface (hits are PC-agnostic for every other policy), so the
    last-touch signature is the *fill* signature refreshed on hits —
    the "fill-PC dead block" simplification, which is also what keeps
    the hardware analogy to NUcache's per-line fill-PC annotation.
    """

    name = "sdbp"

    def __init__(self, ways: int, predictor: DeadBlockPredictor) -> None:
        super().__init__(ways)
        self.predictor = predictor
        self._signature: List[int] = [-1] * ways
        self._occupied: List[bool] = [False] * ways
        self._predicted_dead: List[bool] = [False] * ways

    def touch(self, way: int, core: int) -> None:
        super().touch(way, core)
        signature = self._signature[way]
        if signature >= 0:
            # The previous touch was not last: train live, re-predict.
            self.predictor.train_live(signature)
            self._predicted_dead[way] = self.predictor.predicts_dead(signature)

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        outgoing = self._signature[way]
        if self._occupied[way] and outgoing >= 0:
            # The outgoing line's last touch really was last.
            self.predictor.train_dead(outgoing)
        super().insert(way, core, pc)
        signature = self.predictor.index_of(core, pc)
        self._signature[way] = signature
        self._occupied[way] = True
        self._predicted_dead[way] = self.predictor.predicts_dead(signature)

    def victim(self) -> int:
        # Prefer the least-recent predicted-dead line; else plain LRU.
        for way in reversed(self.stack):
            if self._predicted_dead[way]:
                return way
        return self.stack[-1]

    def invalidate(self, way: int) -> None:
        super().invalidate(way)
        self._occupied[way] = False
        self._signature[way] = -1
        self._predicted_dead[way] = False


def sdbp_factory(table_entries: int = DEFAULT_TABLE_ENTRIES,
                 dead_threshold: int = DEFAULT_DEAD_THRESHOLD) -> PolicyFactory:
    """Factory producing an SDBP cache with one shared predictor."""
    predictor = DeadBlockPredictor(table_entries, dead_threshold=dead_threshold)
    return lambda ways, set_index: SDBPPolicy(ways, predictor)
