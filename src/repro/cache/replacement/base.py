"""Replacement-policy interface.

A policy instance manages the replacement state of *one* cache set (its
``ways`` ways, numbered ``0 .. ways-1``).  The owning
:class:`~repro.cache.cache.SetAssociativeCache` calls:

* :meth:`ReplacementPolicy.touch` on every hit,
* :meth:`ReplacementPolicy.victim` when the set is full and a fill needs
  a slot (the returned way is then overwritten),
* :meth:`ReplacementPolicy.insert` after every fill (whether the slot came
  from :meth:`victim` or was an invalid way),
* :meth:`ReplacementPolicy.invalidate` when a way is explicitly dropped.

Policies that need cache-global state (set dueling, PIPP allocations)
receive a shared state object at construction; the per-set instance holds
only per-set state.  Policies are created by a *factory* — see
:data:`PolicyFactory` — so the cache itself stays policy-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable


class ReplacementPolicy(ABC):
    """Replacement state for one cache set."""

    #: Human-readable policy name, used in reports.
    name = "abstract"

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.ways = ways

    @abstractmethod
    def touch(self, way: int, core: int) -> None:
        """Record a hit on ``way`` by ``core``."""

    @abstractmethod
    def victim(self) -> int:
        """Choose the way to evict; only called when the set is full."""

    @abstractmethod
    def insert(self, way: int, core: int, pc: int = 0) -> None:
        """Record a fill into ``way`` by ``core`` from access site ``pc``
        (i.e., a miss happened)."""

    def should_bypass(self, core: int, pc: int) -> bool:
        """Whether a miss by (core, pc) should skip allocation.

        Consulted by the owning cache before filling; the default never
        bypasses.  PC-predictive policies (SHiP with bypassing, dead-
        block prediction) override this.
        """
        return False

    def invalidate(self, way: int) -> None:
        """Record that ``way`` was explicitly invalidated.

        The default treats the way as the next victim candidate by doing
        nothing; stack-based policies override this to remove the way
        from their recency order.
        """


#: Factory signature: ``factory(ways, set_index) -> ReplacementPolicy``.
#: The set index lets set-dueling policies assign leader/follower roles.
PolicyFactory = Callable[[int, int], ReplacementPolicy]


class RecencyStackPolicy(ReplacementPolicy):
    """Base for policies expressible as a recency stack.

    ``self.stack`` lists way numbers from MRU (index 0) to LRU (last).
    Subclasses decide the *insertion position* of a fill and whether hits
    promote; eviction is always the stack bottom.  This family covers
    LRU, FIFO, LIP, BIP, DIP, TADIP and PIPP.
    """

    name = "recency-stack"

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Start with every way present so victim() is total from the
        # first fill; the cache fills invalid ways in stack order anyway.
        self.stack = list(range(ways))

    def touch(self, way: int, core: int) -> None:
        """Default hit behaviour: promote to MRU (LRU semantics)."""
        self.stack.remove(way)
        self.stack.insert(0, way)

    def victim(self) -> int:
        return self.stack[-1]

    def insert(self, way: int, core: int, pc: int = 0) -> None:
        """Default fill behaviour: insert at MRU."""
        self.place(way, 0)

    def place(self, way: int, position: int) -> None:
        """Move ``way`` to ``position`` in the stack (0 = MRU)."""
        self.stack.remove(way)
        self.stack.insert(position, way)

    def position_of(self, way: int) -> int:
        """Current stack depth of ``way`` (0 = MRU)."""
        return self.stack.index(way)

    def invalidate(self, way: int) -> None:
        """Demote an invalidated way straight to LRU."""
        self.stack.remove(way)
        self.stack.append(way)
