"""Replacement policies for the cache substrate."""

from repro.cache.replacement.base import PolicyFactory, RecencyStackPolicy, ReplacementPolicy
from repro.cache.replacement.basic import (
    FIFOPolicy,
    LIPPolicy,
    LRUPolicy,
    NRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    fifo_factory,
    lip_factory,
    lru_factory,
    nru_factory,
    plru_factory,
    random_factory,
)
from repro.cache.replacement.dip import (
    BIPPolicy,
    DuelingInsertionPolicy,
    bip_factory,
    dip_factory,
    tadip_factory,
)
from repro.cache.replacement.dueling import (
    DuelRole,
    DuelState,
    SaturatingCounter,
    assign_role,
    policy_for,
)
from repro.cache.replacement.deadblock import (
    DeadBlockPredictor,
    SDBPPolicy,
    sdbp_factory,
)
from repro.cache.replacement.ship import (
    SHiPPolicy,
    SignatureHitCounterTable,
    ship_factory,
)
from repro.cache.replacement.rrip import (
    BRRIPPolicy,
    DRRIPPolicy,
    SRRIPPolicy,
    brrip_factory,
    drrip_factory,
    srrip_factory,
)

__all__ = [
    "BIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "DuelRole",
    "DuelState",
    "DeadBlockPredictor",
    "DuelingInsertionPolicy",
    "FIFOPolicy",
    "LIPPolicy",
    "LRUPolicy",
    "NRUPolicy",
    "PolicyFactory",
    "RandomPolicy",
    "RecencyStackPolicy",
    "ReplacementPolicy",
    "SDBPPolicy",
    "SHiPPolicy",
    "SRRIPPolicy",
    "SignatureHitCounterTable",
    "SaturatingCounter",
    "TreePLRUPolicy",
    "assign_role",
    "bip_factory",
    "brrip_factory",
    "dip_factory",
    "drrip_factory",
    "fifo_factory",
    "lip_factory",
    "lru_factory",
    "nru_factory",
    "plru_factory",
    "policy_for",
    "random_factory",
    "sdbp_factory",
    "ship_factory",
    "srrip_factory",
    "tadip_factory",
]
