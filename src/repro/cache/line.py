"""Cache line bookkeeping.

A :class:`CacheLine` is a mutable record of one way of one set.  It is
deliberately a ``__slots__`` class rather than a dataclass: the simulator
allocates one per way at construction and mutates it on the hot path, and
attribute access on slots is measurably faster than on dict-backed
instances.
"""

from __future__ import annotations

#: Sentinel PC slot meaning "not brought in by a tracked candidate PC".
NO_PC_SLOT = -1


class CacheLine:
    """One way of a cache set.

    Attributes:
        valid: whether the slot holds a line.
        tag: tag of the held line (meaningless when invalid).
        dirty: set by write hits/fills; drives writeback counting.
        core: id of the core whose access filled the line.
        pc: program counter of the filling access (full value).
        pc_slot: index of the filling PC in the NUcache candidate table,
            or :data:`NO_PC_SLOT`.  Plain caches leave it untouched.
    """

    __slots__ = ("valid", "tag", "dirty", "core", "pc", "pc_slot")

    def __init__(self) -> None:
        self.valid = False
        self.tag = 0
        self.dirty = False
        self.core = 0
        self.pc = 0
        self.pc_slot = NO_PC_SLOT

    def fill(self, tag: int, core: int, pc: int, dirty: bool) -> None:
        """Install a new line into this slot."""
        self.valid = True
        self.tag = tag
        self.dirty = dirty
        self.core = core
        self.pc = pc
        self.pc_slot = NO_PC_SLOT

    def invalidate(self) -> None:
        """Drop the held line."""
        self.valid = False
        self.dirty = False
        self.pc_slot = NO_PC_SLOT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.valid:
            return "<line invalid>"
        flags = "D" if self.dirty else "-"
        return f"<line tag={self.tag:#x} core={self.core} pc={self.pc:#x} {flags}>"
