#!/usr/bin/env python
"""Docstring coverage gate for public APIs (stdlib-only).

Walks the given files/directories and reports every public module,
class, function, and method that lacks a docstring.  "Public" means the
name has no leading underscore and is not nested inside a private
scope; ``__init__`` and other dunders are exempt (the class docstring
covers them).  Overloads of abstract one-liners still need at least a
one-line docstring — if a def is worth exporting, it is worth a
sentence.

Usage::

    python tools/check_docstrings.py src/repro/exec src/repro/obs

Exit status is the number of offenders (0 = fully covered), so CI can
use it directly as a gate.  CI additionally runs ``interrogate`` for
the same check with coverage percentages; this script is the no-dependency
version that works in any environment the repo supports.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Defaults checked when no paths are given: the layers whose public
#: APIs carry the documented execution/observability contracts.
DEFAULT_PATHS = (
    "src/repro/bench",
    "src/repro/check",
    "src/repro/exec",
    "src/repro/explore",
    "src/repro/obs",
    "src/repro/sim/vector.py",
)


def iter_python_files(paths: List[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def missing_docstrings(path: Path) -> List[Tuple[int, str]]:
    """``(line, description)`` for every public def lacking a docstring."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    offenders: List[Tuple[int, str]] = []
    if ast.get_docstring(tree) is None:
        offenders.append((1, "module"))

    def visit(node: ast.AST, prefix: str, public: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                child_public = public and _is_public(child.name)
                qualname = f"{prefix}{child.name}"
                if child_public and ast.get_docstring(child) is None:
                    kind = "class" if isinstance(child, ast.ClassDef) else "def"
                    offenders.append((child.lineno, f"{kind} {qualname}"))
                # Only classes introduce a documented nesting level a
                # caller can reach; defs inside defs are implementation.
                if isinstance(child, ast.ClassDef):
                    visit(child, f"{qualname}.", child_public)
    visit(tree, "", True)
    return offenders


def main(argv: List[str]) -> int:
    """Check the given paths; print offenders; return their count."""
    paths = argv or list(DEFAULT_PATHS)
    total = 0
    for path in iter_python_files(paths):
        for lineno, description in missing_docstrings(path):
            print(f"{path}:{lineno}: missing docstring: {description}")
            total += 1
    if total:
        print(f"{total} public definition(s) lack docstrings", file=sys.stderr)
    return total


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
