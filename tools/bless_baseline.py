#!/usr/bin/env python
"""Re-bless the committed performance baseline (``BENCH_baseline.json``).

One command::

    PYTHONPATH=src python tools/bless_baseline.py

Runs the benchmark suite in **quick** mode (the mode CI's ``perf-smoke``
job runs, so the two payloads stay comparable — the comparator refuses
cross-mode comparisons) and writes the payload to the repo root.  Commit
the refreshed file together with the change that legitimately moved the
numbers; see ``docs/benchmarking.md`` for when re-blessing is the right
response to a failing gate.

Options mirror the CLI: ``--full`` blesses a full-mode baseline instead
(only useful if CI is switched to full mode too), ``--repetitions K``
overrides the median-of-k count, ``--output PATH`` redirects the file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    """Run the suite and write the blessed baseline payload."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench import run_suite, save_payload

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="bless a full-mode baseline (CI's perf-smoke runs quick mode)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=None, metavar="K",
        help="median-of-K repetitions (default: 3 quick / 5 full)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_baseline.json"),
        metavar="PATH", help="where to write the payload (default: repo root)",
    )
    args = parser.parse_args(argv)

    payload = run_suite(
        quick=not args.full,
        repetitions=args.repetitions,
        progress=lambda name: print(f"[bless] running {name}...", file=sys.stderr),
    )
    save_payload(payload, args.output)
    for name, entry in payload["benchmarks"].items():
        print(f"{name:<16} {entry['ops_per_sec']:>14,.0f} {entry['unit']}/s")
    print(f"blessed {args.output} ({payload['mode']} mode)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
