"""End-to-end integration tests across the whole stack.

These run real (but short) simulations through the public API and check
the qualitative results the reproduction stands on.  Trace lengths are
chosen to keep the whole file under ~1 minute.
"""

from __future__ import annotations

import pytest

from repro import (
    alone_ipc,
    mix_members,
    run_mix,
    run_single,
    run_workload,
    weighted_speedup,
)

ACCESSES = 60_000


@pytest.fixture(scope="module")
def art_results():
    """LRU and NUcache single-core runs on the flagship benchmark."""
    return {
        policy: run_single("art_like", policy, ACCESSES)
        for policy in ("lru", "nucache")
    }


class TestSingleCore:
    def test_nucache_beats_lru_on_delinquent_benchmark(self, art_results):
        lru = art_results["lru"].cores[0]
        nuca = art_results["nucache"].cores[0]
        assert nuca.ipc > lru.ipc * 1.15
        assert nuca.llc_misses < lru.llc_misses

    def test_deliways_actually_used(self, art_results):
        extra = art_results["nucache"].llc_extra
        assert extra["deli_hits"] > 1000
        assert extra["retentions"] >= extra["deli_hits"]

    def test_parity_on_cache_friendly_benchmark(self):
        lru = run_single("hmmer_like", "lru", ACCESSES).cores[0]
        nuca = run_single("hmmer_like", "nucache", ACCESSES).cores[0]
        assert nuca.ipc == pytest.approx(lru.ipc, rel=0.03)

    def test_no_gain_no_loss_on_pure_stream(self):
        lru = run_single("libquantum_like", "lru", ACCESSES).cores[0]
        nuca = run_single("libquantum_like", "nucache", ACCESSES).cores[0]
        assert nuca.ipc == pytest.approx(lru.ipc, rel=0.03)

    def test_zero_deliways_matches_lru_end_to_end(self):
        lru = run_single("art_like", "lru", ACCESSES).cores[0]
        nuca = run_single("art_like", "nucache", ACCESSES, deli_ways=0).cores[0]
        assert nuca.llc_misses == lru.llc_misses
        assert nuca.ipc == pytest.approx(lru.ipc)


class TestMulticore:
    def test_nucache_improves_quad_mix(self):
        members = mix_members("mix4_1")
        alone = [alone_ipc(name, 4, ACCESSES) for name in members]
        base = run_mix("mix4_1", "lru", ACCESSES)
        nuca = run_mix("mix4_1", "nucache", ACCESSES)
        base_ws = weighted_speedup(base.ipcs, alone)
        nuca_ws = weighted_speedup(nuca.ipcs, alone)
        assert nuca_ws > base_ws * 1.05

    def test_weighted_speedup_bounded_by_core_count(self):
        members = mix_members("mix2_9")
        alone = [alone_ipc(name, 2, ACCESSES) for name in members]
        result = run_mix("mix2_9", "lru", ACCESSES)
        assert weighted_speedup(result.ipcs, alone) <= 2.05

    def test_ucp_protects_partition_friendly_core(self):
        # sphinx fits its share; swim streams.  UCP must not let swim
        # take sphinx's capacity.
        members = ("sphinx_like", "swim_like")
        base = run_workload(members, "lru", accesses=ACCESSES)
        ucp = run_workload(members, "ucp", accesses=ACCESSES)
        assert ucp.core(0).ipc >= base.core(0).ipc * 0.98

    def test_relocation_prevents_sharing(self):
        # The same benchmark on both cores must not share LLC lines.
        result = run_workload(("art_like", "art_like"), "lru", accesses=20_000)
        occupancy = result.llc_occupancy_by_core
        assert occupancy.get(0, 0) > 0 and occupancy.get(1, 0) > 0

    def test_alone_ipc_memoized(self):
        first = alone_ipc("twolf_like", 2, 20_000)
        second = alone_ipc("twolf_like", 2, 20_000)
        assert first == second

    def test_occupancy_reported_for_all_policies(self):
        for policy in ("lru", "ucp", "pipp", "nucache"):
            result = run_workload(("art_like", "swim_like"), policy,
                                  accesses=20_000)
            assert sum(result.llc_occupancy_by_core.values()) > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_single("omnetpp_like", "nucache", 20_000, seed=7)
        b = run_single("omnetpp_like", "nucache", 20_000, seed=7)
        assert a.cores[0].ipc == b.cores[0].ipc
        assert a.cores[0].llc_misses == b.cores[0].llc_misses

    def test_different_seed_different_trace(self):
        a = run_single("omnetpp_like", "lru", 20_000, seed=7)
        b = run_single("omnetpp_like", "lru", 20_000, seed=8)
        assert a.cores[0].llc_misses != b.cores[0].llc_misses
