"""Tests for the PC selection algorithms."""

from __future__ import annotations

import numpy as np

from repro.nucache.nextuse import EpochProfile, NextUseEvent
from repro.nucache.selection import (
    all_select,
    evaluate_subset,
    greedy_select,
    oracle_select,
    topk_select,
)


def profile_from(events, slots, evictions=None):
    return EpochProfile(
        slots,
        [NextUseEvent(pc, tuple(deltas)) for pc, deltas in events],
        evictions or [0] * slots,
        sample_period=1,
    )


def capturable(pc, slots, own=1):
    """An event trivially capturable when only its own PC is selected."""
    deltas = [0] * slots
    deltas[pc] = own
    return (pc, deltas)


class TestEvaluateSubset:
    def test_counts_captured(self):
        profile = profile_from([capturable(0, 2), capturable(1, 2)], 2)
        assert evaluate_subset(profile, [0], 10) == 1
        assert evaluate_subset(profile, [0, 1], 10) == 2


class TestGreedySelect:
    def test_selects_obviously_good_pc(self):
        profile = profile_from([capturable(0, 3)] * 5, 3)
        assert greedy_select(profile, deli_capacity=10, max_selected=2) == {0}

    def test_empty_profile_selects_nothing(self):
        profile = profile_from([], 3)
        assert greedy_select(profile, 10, 2) == frozenset()

    def test_rejects_uncapturable_pc(self):
        # PC 1's reuses are far beyond capacity.
        events = [capturable(0, 2)] * 5 + [(1, [0, 1000])] * 50
        profile = profile_from(events, 2)
        assert greedy_select(profile, deli_capacity=10, max_selected=2) == {0}

    def test_respects_max_selected(self):
        events = [capturable(pc, 4) for pc in range(4)] * 3
        profile = profile_from(events, 4)
        selected = greedy_select(profile, deli_capacity=100, max_selected=2)
        assert len(selected) == 2

    def test_mutual_exclusion_picks_the_bigger(self):
        # Selecting both PCs pushes distances beyond capacity; PC 1 has
        # more events so greedy must choose it alone.
        events = [(0, [8, 8]) for _ in range(3)] + [(1, [8, 8]) for _ in range(5)]
        profile = profile_from(events, 2)
        assert greedy_select(profile, deli_capacity=10, max_selected=2) == {1}

    def test_zero_max_selected(self):
        profile = profile_from([capturable(0, 2)], 2)
        assert greedy_select(profile, 10, 0) == frozenset()

    def test_matches_oracle_on_small_pools(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            events = []
            slots = 4
            for _ in range(30):
                pc = int(rng.integers(0, slots))
                deltas = rng.integers(0, 6, size=slots).tolist()
                events.append((pc, deltas))
            profile = profile_from(events, slots)
            greedy = greedy_select(profile, deli_capacity=8, max_selected=3)
            oracle = oracle_select(profile, deli_capacity=8, max_selected=3)
            greedy_hits = evaluate_subset(profile, sorted(greedy), 8)
            oracle_hits = evaluate_subset(profile, sorted(oracle), 8)
            # Greedy is near-optimal on these small random instances.
            assert greedy_hits >= 0.7 * oracle_hits


class TestOracleSelect:
    def test_finds_exact_optimum(self):
        # The optimum requires skipping the most-evicting PC.
        events = [capturable(0, 3)] * 3 + [(2, [0, 0, 500])] * 10
        profile = profile_from(events, 3, evictions=[10, 0, 500])
        assert oracle_select(profile, deli_capacity=10, max_selected=2) == {0}

    def test_empty_profile(self):
        assert oracle_select(profile_from([], 3), 10, 2) == frozenset()

    def test_pairs_better_than_singles(self):
        # Two PCs capturable together (small mutual distances).
        events = [(0, [1, 1, 0])] * 4 + [(1, [1, 1, 0])] * 4
        profile = profile_from(events, 3)
        assert oracle_select(profile, deli_capacity=10, max_selected=2) == {0, 1}


class TestTopkSelect:
    def test_picks_biggest_evictors(self):
        profile = profile_from([], 3, evictions=[5, 100, 50])
        assert topk_select(profile, 10, 2) == {1, 2}

    def test_skips_zero_evictors(self):
        profile = profile_from([capturable(0, 3)], 3, evictions=[5, 0, 0])
        assert topk_select(profile, 10, 3) == {0}

    def test_blind_to_capturability(self):
        # The canonical failure: the top evictor's reuses are hopeless,
        # topk picks it anyway.
        events = [capturable(0, 2)] * 5 + [(1, [0, 10_000])] * 2
        profile = profile_from(events, 2, evictions=[10, 10_000])
        assert 1 in topk_select(profile, deli_capacity=10, max_selected=1)
        assert greedy_select(profile, deli_capacity=10, max_selected=1) == {0}


class TestAllSelect:
    def test_selects_every_active_candidate(self):
        profile = profile_from([], 4, evictions=[3, 0, 7, 1])
        assert all_select(profile, 10, 2) == {0, 2, 3}

    def test_ignores_max_selected(self):
        profile = profile_from([], 4, evictions=[1, 1, 1, 1])
        assert len(all_select(profile, 10, 1)) == 4

    def test_empty_on_no_traffic(self):
        profile = profile_from([], 3, evictions=[0, 0, 0])
        assert all_select(profile, 10, 3) == frozenset()
