"""Tests for the UCP+NUcache hybrid organization."""

from __future__ import annotations

import pytest

from repro.common.config import CacheGeometry, NUcacheConfig
from repro.nucache.partitioned import PartitionedNUCache


def _geometry(sets=2, ways=8):
    return CacheGeometry(size_bytes=sets * ways * 64, block_bytes=64, ways=ways)


def _hybrid(sets=2, ways=8, deli=2, cores=2, **overrides):
    defaults = dict(
        deli_ways=deli,
        num_candidate_pcs=4,
        epoch_misses=100,
        history_capacity=64,
        max_selected_pcs=2,
    )
    defaults.update(overrides)
    return PartitionedNUCache(
        _geometry(sets, ways), NUcacheConfig(**defaults), num_cores=cores,
        repartition_period=10**9,
    )


class TestConstruction:
    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            _hybrid(cores=0)

    def test_rejects_more_cores_than_mainways(self):
        with pytest.raises(ValueError):
            _hybrid(ways=4, deli=3, cores=2)  # 1 MainWay, 2 cores

    def test_even_initial_allocation(self):
        hybrid = _hybrid(ways=8, deli=2, cores=2)
        assert hybrid.allocation == [3, 3]


class TestBehaviour:
    def test_basic_hit_miss(self):
        hybrid = _hybrid()
        assert not hybrid.access(0, 0, 0, False)
        assert hybrid.access(0, 0, 0, False)

    def test_quota_protects_against_flood(self):
        # 1 set, 6 MainWays; core 0 allocated 4, core 1 allocated 2.
        hybrid = _hybrid(sets=1, ways=8, deli=2, cores=2)
        hybrid.allocation = [4, 2]
        for block in (0, 1, 2, 3):
            hybrid.access(block, core=0, pc=0, is_write=False)
        for block in (10, 11, 12, 13, 14, 15):
            hybrid.access(block, core=1, pc=0, is_write=False)
        # Core 0's lines survive the flood (nothing selected -> no deli).
        for block in (0, 1, 2, 3):
            assert hybrid.access(block, core=0, pc=0, is_write=False), block

    def test_repartition_runs_and_sums(self):
        hybrid = _hybrid(cores=2)
        hybrid.monitors[0].position_hits = [10] * hybrid.geometry.ways
        allocation = hybrid.repartition()
        assert sum(allocation) == hybrid.main_ways
        assert all(ways >= 1 for ways in allocation)
        assert hybrid.repartitions == 1

    def test_repartition_on_schedule(self):
        hybrid = PartitionedNUCache(
            _geometry(), NUcacheConfig(deli_ways=2, num_candidate_pcs=4,
                                       max_selected_pcs=2),
            num_cores=2, repartition_period=10,
        )
        for block in range(25):
            hybrid.access(block, core=block % 2, pc=0, is_write=False)
        assert hybrid.repartitions == 2

    def test_deliways_still_work(self):
        hybrid = _hybrid(sets=1, ways=8, deli=2, cores=2)
        controller = hybrid.controller
        controller._slot_of = {(0, 0x40): 0}
        controller._slot_keys = [(0, 0x40)]
        controller._selected = frozenset([0])
        controller.profiler.begin_epoch(1)
        # Overflow the 6 MainWays with selected-PC lines: the evicted
        # selected lines must land in the DeliWays and hit.
        hybrid.allocation = [3, 3]
        for block in range(7):
            hybrid.access(block, core=0, pc=0x40, is_write=False)
        assert hybrid.retentions >= 1
        assert hybrid.access(0, core=0, pc=0x40, is_write=False)
        assert hybrid.deli_hits >= 1

    def test_occupancy_conserved(self):
        hybrid = _hybrid(sets=2, ways=8, deli=2, cores=2)
        for block in range(40):
            hybrid.access(block, core=block % 2, pc=block % 3, is_write=False)
        for nu_set in hybrid.sets:
            assert len(nu_set.main_tag_to_way) <= hybrid.main_ways
            assert len(nu_set.deli) <= hybrid.deli_ways
