"""Tests for the terminal plotting helpers."""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.plots import (
    bar_chart,
    guess_bar_column,
    render_with_bars,
    result_bars,
    sparkline,
)


class TestBarChart:
    def test_renders_all_rows(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert "2" in lines[1]

    def test_longest_bar_fills_width(self):
        text = bar_chart(["x"], [5.0], width=8)
        assert "#" * 8 in text

    def test_zero_values(self):
        text = bar_chart(["x", "y"], [0.0, 0.0], width=8)
        assert "#" not in text

    def test_reference_marker(self):
        text = bar_chart(["x"], [2.0], width=10, reference=1.0)
        assert "|" in text

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] < line[-1]  # glyph levels are ordered by ASCII here

    def test_flat_series(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestResultBars:
    def _result(self):
        return ExperimentResult(
            "figX", "title",
            [
                {"mix": "m1", "speedup": 1.2, "note": "x"},
                {"mix": "m2", "speedup": 0.9},
                {"mix": "gmean", "speedup": 1.05},
            ],
        )

    def test_charts_numeric_column(self):
        text = result_bars(self._result(), "speedup")
        assert "m1" in text and "gmean" in text
        assert "figX: speedup" in text

    def test_skips_non_numeric_cells(self):
        result = ExperimentResult(
            "figX", "t", [{"mix": "a", "v": 1.0}, {"mix": "b", "v": "n/a"}]
        )
        text = result_bars(result, "v")
        assert "a" in text
        assert "\nb " not in text

    def test_no_numeric_values(self):
        result = ExperimentResult("figX", "t", [{"mix": "a", "v": "x"}])
        assert "no numeric values" in result_bars(result, "v")

    def test_guess_prefers_vs_columns(self):
        result = ExperimentResult(
            "figX", "t", [{"mix": "a", "ws_lru": 2.0, "nucache_vs_lru": 0.1}]
        )
        assert guess_bar_column(result) == "nucache_vs_lru"

    def test_guess_falls_back_to_speedup(self):
        assert guess_bar_column(self._result()) == "speedup"

    def test_render_with_bars_appends_chart(self):
        text = render_with_bars(self._result())
        assert "figX: title" in text
        assert "figX: speedup" in text

    def test_render_without_chartable_column(self):
        result = ExperimentResult("figX", "t", [{"mix": "a", "v": "text"}])
        assert render_with_bars(result) == result.to_text()
