"""Tests for the Trace container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import TraceError
from repro.workloads.trace import Trace

from conftest import make_trace


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            Trace("t", np.array([], dtype=np.int64), np.array([], dtype=np.int64),
                  np.array([], dtype=bool))

    def test_rejects_length_mismatch(self):
        with pytest.raises(TraceError):
            Trace("t", np.array([1, 2]), np.array([0]), np.array([False, False]))

    def test_rejects_negative_gap(self):
        with pytest.raises(TraceError):
            make_trace([1, 2], gap=-1)

    def test_rejects_negative_addresses(self):
        with pytest.raises(TraceError):
            Trace("t", np.array([-64]), np.array([0]), np.array([False]))

    def test_coerces_dtypes(self):
        trace = Trace("t", np.array([64.0]), np.array([1.0]), np.array([1]))
        assert trace.addresses.dtype == np.int64
        assert trace.is_write.dtype == bool


class TestDerived:
    def test_len_and_instructions(self):
        trace = make_trace([0, 1, 2], gap=3)
        assert len(trace) == 3
        assert trace.instructions == 12

    def test_block_addresses(self):
        trace = make_trace([0, 1, 5])
        assert trace.block_addresses(64).tolist() == [0, 1, 5]

    def test_footprint(self):
        trace = make_trace([0, 1, 1, 0, 5])
        assert trace.footprint_blocks(64) == 3

    def test_unique_pcs(self):
        trace = make_trace([0, 1, 2], pcs=[7, 7, 9])
        assert trace.unique_pcs() == 2

    def test_head(self):
        trace = make_trace(list(range(10)))
        head = trace.head(3)
        assert len(head) == 3
        assert head.addresses.tolist() == trace.addresses[:3].tolist()

    def test_head_clamps(self):
        assert len(make_trace([0, 1]).head(10)) == 2

    def test_head_rejects_zero(self):
        with pytest.raises(TraceError):
            make_trace([0]).head(0)

    def test_describe_mentions_name(self):
        assert "t:" in make_trace([0]).describe()


class TestRelocation:
    def test_offsets_addresses_and_pcs(self):
        trace = make_trace([0, 1], pcs=[5, 6])
        moved = trace.relocated(tag=1, tag_shift=10)
        assert moved.addresses.tolist() == [1024, 1024 + 64]
        assert moved.pcs.tolist() == [5 + 1024, 6 + 1024]

    def test_tag_zero_is_identity(self):
        trace = make_trace([3, 4])
        moved = trace.relocated(0)
        assert moved.addresses.tolist() == trace.addresses.tolist()

    def test_distinct_tags_disjoint(self):
        trace = make_trace([0, 1, 2])
        a = trace.relocated(1)
        b = trace.relocated(2)
        assert not set(a.addresses.tolist()) & set(b.addresses.tolist())

    def test_rejects_negative_tag(self):
        with pytest.raises(TraceError):
            make_trace([0]).relocated(-1)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        trace = make_trace([0, 1, 2], pcs=[4, 5, 6], writes=[True, False, True], gap=2)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == trace.name
        assert loaded.addresses.tolist() == trace.addresses.tolist()
        assert loaded.pcs.tolist() == trace.pcs.tolist()
        assert loaded.is_write.tolist() == trace.is_write.tolist()
        assert loaded.instruction_gap == 2

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            Trace.load(tmp_path / "nope.npz")


class TestCorruptFiles:
    """Every way a trace file can be bad raises TraceError naming it."""

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(TraceError, match="garbage.npz"):
            Trace.load(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        with pytest.raises(TraceError, match="empty.npz"):
            Trace.load(path)

    def test_truncated_archive(self, tmp_path):
        path = tmp_path / "cut.npz"
        make_trace(list(range(200))).save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(TraceError, match="cut.npz"):
            Trace.load(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, addresses=np.array([64], dtype=np.int64))
        with pytest.raises(TraceError, match="missing field"):
            Trace.load(path)

    def test_wrong_shaped_field(self, tmp_path):
        path = tmp_path / "shape.npz"
        np.savez(
            path,
            name=np.array("t"),
            addresses=np.array([64], dtype=np.int64),
            pcs=np.array([0], dtype=np.int64),
            is_write=np.array([False]),
            instruction_gap=np.array([1, 2]),  # vector where a scalar belongs
        )
        with pytest.raises(TraceError, match="shape.npz"):
            Trace.load(path)

    def test_invalid_arrays_name_the_file(self, tmp_path):
        path = tmp_path / "negative.npz"
        np.savez(
            path,
            name=np.array("t"),
            addresses=np.array([-64], dtype=np.int64),
            pcs=np.array([0], dtype=np.int64),
            is_write=np.array([False]),
            instruction_gap=np.array(0),
        )
        with pytest.raises(TraceError, match="negative.npz"):
            Trace.load(path)
