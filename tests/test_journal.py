"""Tests for the run journal, graceful interrupts, and resume."""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.common.errors import ExecError, RunInterrupted
from repro.exec import (
    ResultStore,
    RunJournal,
    Scheduler,
    SimJob,
    execute_job,
)
from repro.exec import context as exec_context
from repro.exec import journal as run_journal
from repro.exec.store import STORE_ENV_VAR

ACCESSES = 4_000


@pytest.fixture(autouse=True)
def _isolated_runs(tmp_path, monkeypatch):
    """Each test gets its own store base (hence its own runs directory)."""
    monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "base"))
    exec_context.reset()
    yield
    exec_context.reset()


def _grid():
    return [
        SimJob.single(name, policy, ACCESSES)
        for name in ("hmmer_like", "art_like")
        for policy in ("lru", "nucache")
    ]


# ----------------------------------------------------------------------
# Journal format, listing, resume planning
# ----------------------------------------------------------------------


class TestRunJournal:
    def test_create_writes_start_record(self):
        journal = RunJournal.create(["fig5", "fig6"], jobs=4, use_cache=True)
        records = run_journal.read_records(journal.path)
        assert records[0]["record"] == "start"
        assert records[0]["experiments"] == ["fig5", "fig6"]
        assert records[0]["jobs"] == 4
        assert journal.path.parent == run_journal.default_runs_dir()

    def test_full_lifecycle_and_summary(self):
        journal = RunJournal.create(["fig5", "fig6"])
        journal.record_experiment_start("fig5")
        journal.record_batch(
            {"k1": {"status": "completed"}}, None, label="grid"
        )
        journal.record_experiment_end("fig5", status="ok", elapsed=1.0)
        journal.record_experiment_start("fig6")
        journal.close("interrupted")
        summary = run_journal.summarize(journal.path)
        assert summary.run_id == journal.run_id
        assert summary.status == "interrupted"
        assert summary.completed == ["fig5"]
        assert summary.pending == ["fig6"]
        assert journal.run_id in summary.describe()

    def test_append_after_close_is_ignored(self):
        journal = RunJournal.create(["fig5"])
        journal.close("completed")
        journal.record_experiment_start("fig5")
        kinds = [r["record"] for r in run_journal.read_records(journal.path)]
        assert kinds == ["start", "end"]

    def test_reader_tolerates_torn_tail(self):
        journal = RunJournal.create(["fig5"])
        journal.record_experiment_start("fig5")
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "experiment_end", "experi')  # hard kill
        records = run_journal.read_records(journal.path)
        assert [r["record"] for r in records] == ["start", "experiment_start"]
        # A journal with no end record reads as aborted, not running.
        assert run_journal.summarize(journal.path).status == "aborted"

    def test_load_journal_warns_on_torn_tail(self):
        journal = RunJournal.create(["fig5"])
        journal.record_experiment_start("fig5")
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "experiment_end", "experi')  # hard kill
        records, warnings = run_journal.load_journal(journal.path)
        assert [r["record"] for r in records] == ["start", "experiment_start"]
        assert len(warnings) == 1
        assert "torn trailing record" in warnings[0]

    def test_load_journal_warns_on_midfile_corruption(self):
        journal = RunJournal.create(["fig5"])
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        journal.record_experiment_start("fig5")
        journal.close("completed")
        records, warnings = run_journal.load_journal(journal.path)
        # The valid records around the corruption all survive...
        assert [r["record"] for r in records] == [
            "start", "experiment_start", "end",
        ]
        # ...and the bad line is called out as corruption, not a torn tail.
        assert len(warnings) == 1
        assert "line 2 is corrupt" in warnings[0]

    def test_load_journal_clean_file_has_no_warnings(self):
        journal = RunJournal.create(["fig5"])
        journal.close("completed")
        _records, warnings = run_journal.load_journal(journal.path)
        assert warnings == []

    def test_list_runs_newest_first(self):
        first = RunJournal.create(["fig5"], run_id="20250101-000000-p1")
        second = RunJournal.create(["fig6"], run_id="20250102-000000-p1")
        first.close("completed")
        second.close("completed")
        listed = run_journal.list_runs()
        assert [s.run_id for s in listed] == [second.run_id, first.run_id]

    def test_find_run_exact_prefix_ambiguous_missing(self):
        RunJournal.create(["fig5"], run_id="20250101-000000-p1").close("completed")
        RunJournal.create(["fig6"], run_id="20250102-000000-p1").close("completed")
        assert run_journal.find_run("20250101-000000-p1").experiments == ["fig5"]
        assert run_journal.find_run("20250102").experiments == ["fig6"]
        with pytest.raises(ExecError, match="ambiguous"):
            run_journal.find_run("2025")
        with pytest.raises(ExecError, match="no run journal"):
            run_journal.find_run("nope")

    def test_batch_records_flow_through_run_jobs(self):
        journal = RunJournal.create(["adhoc"])
        exec_context.set_journal(journal)
        try:
            exec_context.run_jobs(_grid()[:2], label="unit")
        finally:
            exec_context.set_journal(None)
        batches = [
            r for r in run_journal.read_records(journal.path)
            if r["record"] == "batch"
        ]
        assert len(batches) == 1
        assert batches[0]["label"] == "unit"
        assert batches[0]["jobs"] == 2
        assert batches[0]["report"]["total"] == 2
        statuses = {o["status"] for o in batches[0]["outcomes"].values()}
        assert statuses == {"completed"}


# ----------------------------------------------------------------------
# Graceful interrupts in the scheduler
# ----------------------------------------------------------------------


class TestInterrupt:
    def test_sigint_drains_persists_and_raises_resumable(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        batch = _grid()
        fired = []

        def signalling_execute(job):
            result = execute_job(job)
            if not fired:
                fired.append(job.key())
                os.kill(os.getpid(), signal.SIGINT)
            return result

        scheduler = Scheduler(jobs=1, store=store, execute=signalling_execute)
        with pytest.raises(RunInterrupted) as raised:
            scheduler.run(batch)
        report = raised.value.report
        # The in-flight job drained to completion and was persisted...
        assert report.completed == 1
        assert store.get(batch[0]) is not None
        # ...and the rest are marked for the resume, not failed.
        assert report.interrupted == len(batch) - 1
        assert report.failed == 0
        statuses = [o["status"] for o in raised.value.outcomes.values()]
        assert statuses.count("completed") == 1
        assert statuses.count("interrupted") == len(batch) - 1

        # A rerun serves the settled job from the store and finishes the
        # rest, byte-identical to a clean serial run.
        resumed = Scheduler(jobs=1, store=store)
        results = resumed.run(batch)
        assert resumed.last_report.cached == 1
        clean = Scheduler(jobs=1).run(batch)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in clean]

    def test_signal_handlers_are_restored(self):
        before = signal.getsignal(signal.SIGINT)
        Scheduler(jobs=1).run(_grid()[:1])
        assert signal.getsignal(signal.SIGINT) is before

    def test_interrupted_batch_is_journalled(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        journal = RunJournal.create(["adhoc"])
        exec_context.set_journal(journal)
        exec_context.configure(jobs=1)

        def signalling_execute(job):
            result = execute_job(job)
            os.kill(os.getpid(), signal.SIGINT)
            return result

        import repro.exec.context as ctx

        original = ctx.execute_job
        ctx.execute_job = signalling_execute
        try:
            with pytest.raises(RunInterrupted):
                exec_context.run_jobs(_grid(), label="chaos")
        finally:
            ctx.execute_job = original
            exec_context.set_journal(None)
        batches = [
            r for r in run_journal.read_records(journal.path)
            if r["record"] == "batch"
        ]
        assert len(batches) == 1
        assert batches[0]["status"] == "interrupted"
        statuses = [o["status"] for o in batches[0]["outcomes"].values()]
        assert "interrupted" in statuses


# ----------------------------------------------------------------------
# CLI: journaling runs, runs list/show, --resume
# ----------------------------------------------------------------------


class TestCliRuns:
    def test_run_writes_journal_and_lists(self, capsys):
        from repro.cli import main

        assert main(["run", "table1"]) == 0
        captured = capsys.readouterr()
        assert "[run] id=" in captured.err
        assert main(["runs", "list"]) == 0
        listing = capsys.readouterr().out
        assert "completed" in listing
        run_id = listing.split()[0]
        assert main(["runs", "show", run_id]) == 0
        shown = capsys.readouterr().out
        assert "table1: ok" in shown
        assert "end: completed" in shown

    def test_runs_show_requires_id(self, capsys):
        from repro.cli import main

        assert main(["runs", "show"]) == 2

    def test_runs_show_renders_torn_journal_with_warning(self, capsys):
        # Regression: `runs show` on a journal with a torn tail (hard
        # kill mid-append) must render the valid prefix and warn, not
        # silently swallow the damage.
        from repro.cli import main

        journal = RunJournal.create(["fig5"])
        journal.record_experiment_start("fig5")
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "experiment_end"')  # torn write
        assert main(["runs", "show", journal.run_id]) == 0
        captured = capsys.readouterr()
        assert "fig5: started" in captured.out  # valid prefix rendered
        assert "torn trailing record" in captured.err
        assert "warning:" in captured.err

    def test_run_rejects_experiments_plus_resume(self, capsys):
        from repro.cli import main

        assert main(["run", "table1", "--resume", "x"]) == 2
        assert main(["run"]) == 2

    def test_resume_skips_completed_experiments(self, capsys):
        from repro.cli import main

        journal = RunJournal.create(["table1", "table2"])
        journal.record_experiment_end("table1", status="ok")
        journal.close("interrupted")
        assert main(["run", "--resume", journal.run_id]) == 0
        captured = capsys.readouterr()
        assert "skipping table1" in captured.err
        assert "== table2" in captured.out
        assert "== table1" not in captured.out

    def test_resume_of_finished_run_is_a_noop(self, capsys):
        from repro.cli import main

        journal = RunJournal.create(["table1"])
        journal.record_experiment_end("table1", status="ok")
        journal.close("completed")
        assert main(["run", "--resume", journal.run_id]) == 0
        assert "nothing left to run" in capsys.readouterr().err

    def test_interrupted_cli_run_resumes_byte_identical(self, capsys, monkeypatch):
        from repro.cli import main
        import repro.exec.context as ctx

        monkeypatch.setenv("REPRO_SCALE", "0.05")
        calls = []
        original = ctx.execute_job

        def signalling_execute(job):
            result = original(job)
            calls.append(job.key())
            if len(calls) == 3:
                os.kill(os.getpid(), signal.SIGINT)
            return result

        monkeypatch.setattr(ctx, "execute_job", signalling_execute)
        assert main(["run", "fig3"]) == 130
        interrupted = capsys.readouterr()
        assert interrupted.out == ""  # no partial tables
        assert "resume with" in interrupted.err
        run_id = next(
            line.split("id=")[1].split()[0]
            for line in interrupted.err.splitlines()
            if "[run] id=" in line
        )

        monkeypatch.setattr(ctx, "execute_job", original)
        assert main(["run", "--resume", run_id]) == 0
        resumed = capsys.readouterr()
        assert "== fig3" in resumed.out
        # Settled jobs came from the store on resume.
        assert "cached" in resumed.err

        assert main(["run", "fig3"]) == 0
        clean = capsys.readouterr()
        assert resumed.out == clean.out  # byte-identical output

def test_journal_payloads_are_json_lines():
    journal = RunJournal.create(["fig5"])
    journal.record_batch({"k": {"status": "cached"}}, None)
    journal.close("completed")
    for line in journal.path.read_text(encoding="utf-8").splitlines():
        assert isinstance(json.loads(line), dict)
