"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_experiments(self):
        args = build_parser().parse_args(["run", "fig5", "fig6"])
        assert args.experiments == ["fig5", "fig6"]

    def test_sim_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim"])

    def test_sim_mix_and_benchmark_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sim", "--mix", "mix2_1", "--benchmark", "art_like"]
            )

    def test_sim_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim", "--mix", "mix2_1", "--policy", "magic"])

    def test_run_jobs_and_no_cache_flags(self):
        args = build_parser().parse_args(["run", "fig5", "--jobs", "4", "--no-cache"])
        assert args.jobs == 4
        assert args.no_cache is True

    def test_sim_seed_flag(self):
        args = build_parser().parse_args(
            ["sim", "--benchmark", "art_like", "--seed", "7"]
        )
        assert args.seed == 7

    def test_cache_actions(self):
        assert build_parser().parse_args(["cache", "stats"]).action == "stats"
        args = build_parser().parse_args(
            ["cache", "prune", "--keep", "10", "--max-age-days", "30"]
        )
        assert args.keep == 10
        assert args.max_age_days == 30.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "defrag"])


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "art_like" in out
        assert "mix4_1" in out

    def test_run_table(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Simulated system configuration" in capsys.readouterr().out

    def test_sim_benchmark(self, capsys):
        assert main([
            "sim", "--benchmark", "hmmer_like", "--policy", "lru",
            "--accesses", "5000",
        ]) == 0
        out = capsys.readouterr().out
        assert "hmmer_like under lru" in out
        assert "ipc=" in out

    def test_sim_mix(self, capsys):
        assert main([
            "sim", "--mix", "mix2_9", "--policy", "lru", "--accesses", "5000",
        ]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out

    def test_sim_seed_changes_the_run(self, capsys):
        base = ["sim", "--benchmark", "hmmer_like", "--policy", "lru",
                "--accesses", "5000"]
        assert main(base) == 0
        default_out = capsys.readouterr().out
        assert main(base + ["--seed", "12345"]) == 0
        seeded_out = capsys.readouterr().out
        assert seeded_out != default_out

    def test_cache_stats_and_clear(self, capsys):
        assert main(["cache", "stats"]) == 0
        assert "entries" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out

    def test_cache_prune_requires_a_bound(self, capsys):
        assert main(["cache", "prune"]) == 2

    def test_run_reports_exec_summary(self, capsys):
        import os

        from repro.exec import context as exec_context

        os.environ["REPRO_SCALE"] = "0.05"
        try:
            assert main(["run", "fig3", "--jobs", "2"]) == 0
        finally:
            del os.environ["REPRO_SCALE"]
            exec_context.reset()
        captured = capsys.readouterr()
        assert "== fig3" in captured.out
        assert "[exec] fig3:" in captured.err
        assert "cached" in captured.err


class TestNewSubcommands:
    def test_characterize(self, capsys):
        assert main(["characterize", "hmmer_like", "--accesses", "5000"]) == 0
        out = capsys.readouterr().out
        assert "hmmer_like:" in out
        assert "miss ratio" in out
        assert "pc 0x" in out

    def test_trace_export_text(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        assert main(["trace", "hmmer_like", "-o", str(out_file),
                     "--accesses", "500"]) == 0
        assert out_file.exists()
        from repro.workloads.textio import load_text

        assert len(load_text(out_file)) == 500

    def test_trace_export_npz(self, tmp_path):
        out_file = tmp_path / "t.npz"
        assert main(["trace", "twolf_like", "-o", str(out_file),
                     "--accesses", "500"]) == 0
        from repro.workloads.trace import Trace

        assert len(Trace.load(out_file)) == 500


class TestCheckSubcommand:
    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["check", "--quick", "--seed", "7", "--policies", "lru", "nucache",
             "--accesses", "500", "--force-violation"]
        )
        assert args.quick and args.force_violation
        assert args.seed == 7
        assert args.policies == ["lru", "nucache"]
        assert args.accesses == 500
        assert args.replay is None

    def test_clean_sweep_exits_zero(self, capsys):
        assert main(["check", "--quick", "--policies", "lru",
                     "--accesses", "300"]) == 0
        captured = capsys.readouterr()
        assert "all clean" in captured.out
        assert "ok" in captured.err  # per-case progress goes to stderr

    def test_forced_violation_round_trips(self, tmp_path, monkeypatch, capsys):
        from repro.exec.store import STORE_ENV_VAR

        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path))
        assert main(["check", "--quick", "--policies", "nucache",
                     "--accesses", "400", "--force-violation"]) == 0
        out = capsys.readouterr().out
        assert "DIVERGED" in out
        assert "forced violation detected as expected" in out
        (reproducer,) = (tmp_path / "check").glob("repro-*.json")

        assert main(["check", "--replay", str(reproducer)]) == 1
        assert "violation reproduced" in capsys.readouterr().out

    def test_replay_unreadable_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{ nope")
        assert main(["check", "--replay", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestFailedOutcomeRendering:
    def test_renders_forensics(self, capsys):
        from repro.cli import _print_failed_outcome

        _print_failed_outcome("abcdef1234567890", {
            "label": "sim hmmer_like lru",
            "attempts": 2,
            "error": "InvariantViolation('set 3: broken')",
            "violations": ["set 3: broken"],
            "traceback": "Traceback (most recent call last):\n  boom\n",
            "snapshot": {"policy": "lru"},
        })
        out = capsys.readouterr().out
        assert "failed abcdef123456" in out
        assert "violated: set 3: broken" in out
        assert "| Traceback" in out
        assert '"policy": "lru"' in out

    def test_compact_without_forensics(self, capsys):
        from repro.cli import _print_failed_outcome

        _print_failed_outcome("feedbeef", {
            "label": "sim art_like lru", "attempts": 1, "error": "boom",
        })
        out = capsys.readouterr().out
        assert "failed feedbeef" in out
        assert "violated" not in out
        assert "|" not in out
