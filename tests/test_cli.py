"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_experiments(self):
        args = build_parser().parse_args(["run", "fig5", "fig6"])
        assert args.experiments == ["fig5", "fig6"]

    def test_sim_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim"])

    def test_sim_mix_and_benchmark_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sim", "--mix", "mix2_1", "--benchmark", "art_like"]
            )

    def test_sim_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sim", "--mix", "mix2_1", "--policy", "magic"])


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "art_like" in out
        assert "mix4_1" in out

    def test_run_table(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Simulated system configuration" in capsys.readouterr().out

    def test_sim_benchmark(self, capsys):
        assert main([
            "sim", "--benchmark", "hmmer_like", "--policy", "lru",
            "--accesses", "5000",
        ]) == 0
        out = capsys.readouterr().out
        assert "hmmer_like under lru" in out
        assert "ipc=" in out

    def test_sim_mix(self, capsys):
        assert main([
            "sim", "--mix", "mix2_9", "--policy", "lru", "--accesses", "5000",
        ]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out


class TestNewSubcommands:
    def test_characterize(self, capsys):
        assert main(["characterize", "hmmer_like", "--accesses", "5000"]) == 0
        out = capsys.readouterr().out
        assert "hmmer_like:" in out
        assert "miss ratio" in out
        assert "pc 0x" in out

    def test_trace_export_text(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        assert main(["trace", "hmmer_like", "-o", str(out_file),
                     "--accesses", "500"]) == 0
        assert out_file.exists()
        from repro.workloads.textio import load_text

        assert len(load_text(out_file)) == 500

    def test_trace_export_npz(self, tmp_path):
        out_file = tmp_path / "t.npz"
        assert main(["trace", "twolf_like", "-o", str(out_file),
                     "--accesses", "500"]) == 0
        from repro.workloads.trace import Trace

        assert len(Trace.load(out_file)) == 500
