"""Tests for the memory models, core model and multicore engine."""

from __future__ import annotations

import pytest

from repro.cache.cache import LEVEL_L1, LEVEL_MEMORY
from repro.common.config import tiny_system_config
from repro.common.errors import ConfigError, SimulationError
from repro.sim.core import CoreModel
from repro.sim.engine import MulticoreEngine
from repro.sim.memory import BandwidthLimitedMemory, FixedLatencyMemory
from repro.sim.policies import make_llc, policy_names

from conftest import make_trace


class TestFixedLatencyMemory:
    def test_constant_latency(self):
        memory = FixedLatencyMemory(100)
        assert memory.service(0) == 100
        assert memory.service(5000) == 100
        assert memory.requests == 2

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigError):
            FixedLatencyMemory(0)


class TestBandwidthLimitedMemory:
    def test_idle_channel_is_fixed_latency(self):
        memory = BandwidthLimitedMemory(latency=100, gap=10)
        assert memory.service(0) == 100
        assert memory.service(1000) == 100

    def test_back_to_back_requests_queue(self):
        memory = BandwidthLimitedMemory(latency=100, gap=10)
        assert memory.service(0) == 100
        assert memory.service(0) == 110  # waits for the channel
        assert memory.service(0) == 120

    def test_rejects_bad_gap(self):
        with pytest.raises(ConfigError):
            BandwidthLimitedMemory(100, 0)


class TestCoreModel:
    def _core(self, blocks, gap=0, warmup=0, config=None):
        config = config or tiny_system_config(1)
        trace = make_trace(blocks, gap=gap)
        return CoreModel(0, trace, config, warmup_accesses=warmup), config

    def test_first_access_costs_memory_latency(self):
        core, config = self._core([0], gap=2)
        llc = make_llc("lru", config)
        level = core.step(llc, FixedLatencyMemory(config.latency.memory))
        assert level == LEVEL_MEMORY
        assert core.clock == 2 + config.latency.memory

    def test_repeat_access_hits_l1(self):
        core, config = self._core([0, 0])
        llc = make_llc("lru", config)
        memory = FixedLatencyMemory(config.latency.memory)
        core.step(llc, memory)
        assert core.step(llc, memory) == LEVEL_L1

    def test_completion_freezes_stats(self):
        core, config = self._core([0, 1])
        llc = make_llc("lru", config)
        memory = FixedLatencyMemory(config.latency.memory)
        core.step(llc, memory)
        core.step(llc, memory)
        assert core.first_pass_done
        clock_at_completion = core.completion_clock
        core.step(llc, memory)  # wraps around
        assert core.completion_clock == clock_at_completion
        assert core.llc_misses() == 2

    def test_warmup_excluded_from_stats(self):
        core, config = self._core([0, 1, 2, 3], warmup=2)
        llc = make_llc("lru", config)
        memory = FixedLatencyMemory(config.latency.memory)
        for _ in range(4):
            core.step(llc, memory)
        assert core.llc_misses() == 2  # only accesses 2 and 3 measured
        assert core.measured_accesses == 2
        assert core.cycles() < core.clock

    def test_warmup_bounds_checked(self):
        config = tiny_system_config(1)
        with pytest.raises(ValueError):
            CoreModel(0, make_trace([0, 1]), config, warmup_accesses=2)

    def test_ipc_mid_pass(self):
        core, config = self._core([0, 1, 2], gap=1)
        llc = make_llc("lru", config)
        memory = FixedLatencyMemory(config.latency.memory)
        core.step(llc, memory)
        assert 0 < core.ipc() < 1

    def test_mpki(self):
        core, config = self._core([0, 0, 0, 0], gap=0)
        llc = make_llc("lru", config)
        memory = FixedLatencyMemory(config.latency.memory)
        for _ in range(4):
            core.step(llc, memory)
        assert core.mpki() == 250.0  # 1 miss / 4 instructions


class TestMulticoreEngine:
    def test_requires_matching_trace_count(self):
        config = tiny_system_config(2)
        with pytest.raises(SimulationError):
            MulticoreEngine([make_trace([0])], make_llc("lru", config), config)

    def test_rejects_bad_warmup(self):
        config = tiny_system_config(1)
        with pytest.raises(SimulationError):
            MulticoreEngine([make_trace([0])], make_llc("lru", config), config,
                            warmup_fraction=1.0)

    def test_single_core_completes(self):
        config = tiny_system_config(1)
        engine = MulticoreEngine(
            [make_trace([0, 1, 2, 0, 1, 2])], make_llc("lru", config), config
        )
        result = engine.run()
        assert result.cores[0].instructions == 6
        assert result.cores[0].llc_misses == 3

    def test_cores_interleave_by_clock(self):
        config = tiny_system_config(2)
        # Core 0: all misses (slow). Core 1: repeated block (fast after
        # first access).  Core 1 must finish far more cheaply.
        traces = [
            make_trace(list(range(0, 4096, 1)), name="misses"),
            make_trace([0] * 10, name="hits"),
        ]
        engine = MulticoreEngine(traces, make_llc("lru", config), config)
        result = engine.run()
        assert result.core(1).cycles < result.core(0).cycles

    def test_all_cores_complete_first_pass(self):
        config = tiny_system_config(2)
        traces = [make_trace([0, 1, 2]), make_trace([5, 6, 7, 8, 9])]
        result = MulticoreEngine(traces, make_llc("lru", config), config).run()
        assert all(core.instructions > 0 for core in result.cores)
        assert all(core.cycles > 0 for core in result.cores)

    def test_max_steps_guard(self):
        config = tiny_system_config(1)
        engine = MulticoreEngine(
            [make_trace(list(range(100)))], make_llc("lru", config), config
        )
        engine.run(max_steps=5)
        assert engine.cores[0].cursor == 5

    def test_nucache_extra_reported(self):
        config = tiny_system_config(1)
        engine = MulticoreEngine(
            [make_trace([0, 1, 2])], make_llc("nucache", config), config
        )
        result = engine.run()
        assert "deli_hits" in result.llc_extra
        assert "retentions" in result.llc_extra

    def test_core_lookup_error(self):
        config = tiny_system_config(1)
        result = MulticoreEngine(
            [make_trace([0])], make_llc("lru", config), config
        ).run()
        with pytest.raises(SimulationError):
            result.core(7)


class TestPolicyFactory:
    def test_all_policies_buildable_and_runnable(self):
        config = tiny_system_config(2)
        traces = [make_trace(list(range(30))), make_trace(list(range(50, 90)))]
        for policy in policy_names():
            llc = make_llc(policy, config, seed=1)
            result = MulticoreEngine(traces, llc, config).run()
            assert result.policy == policy
            assert result.total_llc_misses > 0

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_llc("magic", tiny_system_config(1))
