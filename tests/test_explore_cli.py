"""Tests for the ``nucache-repro explore`` CLI and journal rendering."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exec import context as exec_context
from repro.exec import journal as run_journal
from repro.exec.store import STORE_ENV_VAR


@pytest.fixture(autouse=True)
def _isolated_cli(tmp_path, monkeypatch):
    monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "base"))
    monkeypatch.setenv("REPRO_SCALE", "0.05")
    exec_context.reset()
    yield
    exec_context.reset()


class TestExploreList:
    def test_lists_studies_algorithms_objectives(self, capsys):
        assert main(["explore", "list"]) == 0
        out = capsys.readouterr().out
        assert "nucache-split" in out
        assert "nucache-quota" in out
        assert "explore-smoke" in out
        assert "ga, grid, hill, random" in out
        assert "ws" in out


class TestExploreRun:
    def test_run_writes_report_and_prints_best(self, capsys, tmp_path):
        report_path = tmp_path / "explore.json"
        code = main([
            "explore", "run", "explore-smoke",
            "--algo", "random", "--budget", "3", "--seed", "5",
            "-o", str(report_path),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "best configuration" in captured.out
        assert "trajectory" in captured.out
        assert "cache-served" in captured.err
        payload = json.loads(report_path.read_text())
        assert payload["search"] == {"algo": "random", "seed": 5, "budget": 3}
        assert len(payload["probes"]) == 3

    def test_default_report_location(self, capsys, tmp_path):
        assert main([
            "explore", "run", "explore-smoke",
            "--algo", "grid", "--budget", "2",
        ]) == 0
        reports = list((tmp_path / "base" / "explore").glob("*.json"))
        assert len(reports) == 1

    def test_unknown_study_fails_cleanly(self, capsys):
        assert main(["explore", "run", "nope", "--budget", "2"]) == 2
        assert "unknown study" in capsys.readouterr().err

    def test_rerun_is_cache_served_and_identical(self, capsys, tmp_path):
        argv = [
            "explore", "run", "explore-smoke",
            "--algo", "random", "--budget", "3", "--seed", "5",
        ]
        assert main(argv + ["-o", str(tmp_path / "a.json")]) == 0
        first = capsys.readouterr()
        assert main(argv + ["-o", str(tmp_path / "b.json"), "--jobs", "2"]) == 0
        second = capsys.readouterr()
        assert first.out == second.out
        assert "100.0% cache-served" in second.err
        assert (tmp_path / "a.json").read_bytes() == \
            (tmp_path / "b.json").read_bytes()


class TestExploreShowAndRuns:
    def _run_one(self, tmp_path):
        assert main([
            "explore", "run", "explore-smoke",
            "--algo", "grid", "--budget", "3",
            "-o", str(tmp_path / "r.json"),
        ]) == 0
        [summary] = run_journal.list_runs()
        return summary.run_id

    def test_show_by_run_id_renders_provenance(self, capsys, tmp_path):
        run_id = self._run_one(tmp_path)
        capsys.readouterr()
        assert main(["explore", "show", run_id]) == 0
        out = capsys.readouterr().out
        assert "best configuration" in out
        assert "probe provenance" in out
        assert "cache-hit" in out

    def test_show_by_report_path(self, capsys, tmp_path):
        self._run_one(tmp_path)
        capsys.readouterr()
        assert main(["explore", "show", str(tmp_path / "r.json")]) == 0
        assert "best configuration" in capsys.readouterr().out

    def test_show_rejects_plain_runs(self, capsys, tmp_path):
        journal = run_journal.RunJournal.create(["fig5"])
        journal.close("completed")
        assert main(["explore", "show", journal.run_id]) == 2
        assert "not an exploration run" in capsys.readouterr().err

    def test_runs_show_renders_probe_records(self, capsys, tmp_path):
        run_id = self._run_one(tmp_path)
        capsys.readouterr()
        assert main(["runs", "show", run_id]) == 0
        out = capsys.readouterr().out
        assert "explore: study=explore-smoke algo=grid" in out
        assert "probe   0:" in out
        assert "cache-hit" in out or "no jobs" in out

    def test_resume_completed_run_via_cli(self, capsys, tmp_path):
        run_id = self._run_one(tmp_path)
        before = (tmp_path / "r.json").read_bytes()
        capsys.readouterr()
        assert main(["explore", "resume", run_id]) == 0
        err = capsys.readouterr().err
        assert "replayed from journal" in err
        assert (tmp_path / "r.json").read_bytes() == before
