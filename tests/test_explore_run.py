"""End-to-end tests for the exploration driver: determinism, cache, resume."""

from __future__ import annotations

import pytest

from repro.common.errors import RunInterrupted
from repro.exec import context as exec_context
from repro.exec import journal as run_journal
from repro.exec.store import STORE_ENV_VAR
from repro.explore import (
    ExploreError,
    ParamSpace,
    Study,
    get_objective,
    int_range,
    load_search_settings,
    log_range,
    resume_search,
    run_search,
    trajectory,
)
from repro.explore.space import choice
from repro.explore.studies import STUDIES


@pytest.fixture(autouse=True)
def _isolated_search(tmp_path, monkeypatch):
    """Fresh store base (hence fresh journal dir) and short traces."""
    monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "base"))
    monkeypatch.setenv("REPRO_SCALE", "0.05")
    exec_context.reset()
    yield
    exec_context.reset()


def _tiny_study() -> Study:
    return Study(
        name="test-split",
        title="tiny split study for tests",
        space=ParamSpace(
            [int_range("deli_ways", 2, 4, step=2),
             log_range("epoch_misses", 5_000, 10_000)],
            num_cores=2,
        ),
        mix="mix2_1",
        accesses=12_000,
        objective="ws",
    )


class TestRunSearch:
    def test_exhaustive_run_produces_report(self, tmp_path):
        out = run_search(_tiny_study(), algo="grid", budget=4, seed=1,
                         output=tmp_path / "r.json")
        assert len(out.probes) == 4
        assert out.report_path.is_file()
        assert out.report["best"] is not None
        assert len(out.report["probes"]) == 4
        curve = trajectory(out.report)
        finite = [v for v in curve if v is not None]
        assert finite == sorted(finite)  # best-so-far is monotone for max

    def test_bad_budget_rejected(self):
        with pytest.raises(ExploreError, match="budget"):
            run_search(_tiny_study(), budget=0)

    def test_report_is_identical_serial_and_parallel(self, tmp_path):
        study = _tiny_study()
        run_search(study, algo="random", budget=4, seed=7,
                   output=tmp_path / "serial.json")
        exec_context.configure(jobs=4)
        run_search(study, algo="random", budget=4, seed=7,
                   output=tmp_path / "parallel.json")
        serial = (tmp_path / "serial.json").read_bytes()
        parallel = (tmp_path / "parallel.json").read_bytes()
        assert serial == parallel

    def test_warm_rerun_is_cache_served(self, tmp_path):
        study = _tiny_study()
        cold = run_search(study, algo="random", budget=4, seed=7,
                          output=tmp_path / "cold.json")
        warm = run_search(study, algo="random", budget=4, seed=7,
                          output=tmp_path / "warm.json")
        assert cold.computed_jobs > 0
        assert warm.cache_fraction >= 0.9
        assert (tmp_path / "cold.json").read_bytes() == \
            (tmp_path / "warm.json").read_bytes()

    def test_min_objective_best_is_lowest(self, tmp_path):
        out = run_search(_tiny_study(), algo="grid", budget=4, seed=1,
                         objective="mpki", output=tmp_path / "m.json")
        values = [p["objective"] for p in out.report["probes"]]
        assert out.report["best"]["objective"] == min(values)
        assert out.report["objective"]["direction"] == "min"

    def test_invalid_points_scored_without_simulation(self, tmp_path):
        study = Study(
            name="test-invalid",
            title="cross-dimension invalid corner",
            space=ParamSpace(
                [choice("num_candidate_pcs", (16, 32)),
                 choice("max_selected_pcs", (8, 24))],
                num_cores=2,
            ),
            mix="mix2_1",
            accesses=12_000,
            objective="ipc",
        )
        out = run_search(study, algo="grid", budget=4, seed=1,
                         output=tmp_path / "inv.json")
        rows = out.report["probes"]
        invalid = [r for r in rows if not r["valid"]]
        assert len(invalid) == 1
        assert invalid[0]["params"] == {
            "num_candidate_pcs": 16, "max_selected_pcs": 24,
        }
        assert invalid[0]["objective"] is None
        assert invalid[0]["job_keys"] == []
        assert out.report["best"]["params"]["max_selected_pcs"] != 24 or \
            out.report["best"]["params"]["num_candidate_pcs"] == 32


class TestJournalAndResume:
    def _interrupt_after(self, n: int):
        state = {"count": 0}

        def hook(_event):
            state["count"] += 1
            if state["count"] >= n:
                raise KeyboardInterrupt

        return hook

    def test_interrupt_closes_journal_and_names_run(self):
        study = _tiny_study()
        with pytest.raises(RunInterrupted) as excinfo:
            run_search(study, algo="grid", budget=4, seed=1,
                       progress=self._interrupt_after(2))
        run_id = excinfo.value.run_id
        summary = run_journal.find_run(run_id)
        assert summary.status == "interrupted"
        records = run_journal.read_records(summary.path)
        probes = [r for r in records if r.get("record") == "probe"]
        assert len(probes) == 2

    def test_resume_completes_without_reevaluating(self, tmp_path, monkeypatch):
        study = _tiny_study()
        monkeypatch.setitem(STUDIES, study.name, study)
        baseline = run_search(study, algo="grid", budget=4, seed=1,
                              output=tmp_path / "base.json")
        with pytest.raises(RunInterrupted) as excinfo:
            run_search(study, algo="grid", budget=4, seed=1,
                       output=tmp_path / "int.json",
                       progress=self._interrupt_after(2))
        resumed = resume_search(excinfo.value.run_id)
        assert resumed.replayed == 2
        assert len(resumed.probes) == 4
        assert resumed.report_path == (tmp_path / "int.json").resolve()
        assert (tmp_path / "int.json").read_bytes() == \
            (tmp_path / "base.json").read_bytes()
        # The two journaled probes replayed; their jobs never re-ran.
        assert all(not p.valid or p.objective is not None
                   for p in resumed.probes)

    def test_resume_of_completed_run_is_pure_replay(self, tmp_path, monkeypatch):
        study = _tiny_study()
        monkeypatch.setitem(STUDIES, study.name, study)
        out = run_search(study, algo="random", budget=4, seed=3,
                         output=tmp_path / "done.json")
        first = out.report_path.read_bytes()
        again = resume_search(out.run_id)
        assert again.replayed == 4
        assert again.computed_jobs == again.cached_jobs == 0
        assert again.report_path.read_bytes() == first

    def test_resume_rejects_non_explore_runs(self):
        journal = run_journal.RunJournal.create(["fig5"])
        journal.close("completed")
        with pytest.raises(ExploreError, match="not an exploration run"):
            load_search_settings(journal.run_id)

    def test_replay_mismatch_is_an_error(self):
        study = _tiny_study()
        bogus = {0: {"record": "probe", "index": 0,
                     "params": {"deli_ways": 99, "epoch_misses": 5_000},
                     "valid": True, "objective": 1.0}}
        with pytest.raises(ExploreError, match="replay mismatch"):
            run_search(study, algo="grid", budget=4, seed=1, transcript=bogus)

    def test_probe_records_carry_provenance(self):
        study = _tiny_study()
        out = run_search(study, algo="grid", budget=4, seed=1)
        records = run_journal.read_records(
            run_journal.find_run(out.run_id).path
        )
        start = [r for r in records if r.get("record") == "explore_start"]
        assert start and start[0]["space_hash"] == study.space.space_hash()
        probes = [r for r in records if r.get("record") == "probe"]
        assert len(probes) == 4
        for record in probes:
            assert record["cached"] + record["computed"] == len(record["job_keys"])
        # Something actually simulated, and its settle time was recorded.
        assert any(record["settle"] for record in probes)

    def test_search_seed_does_not_affect_store_keys(self, tmp_path):
        # Different --seed explores in a different order but shares every
        # store entry: the sim seed belongs to the study.
        study = _tiny_study()
        first = run_search(study, algo="random", budget=4, seed=1,
                           output=tmp_path / "a.json")
        second = run_search(study, algo="random", budget=4, seed=2,
                            output=tmp_path / "b.json")
        assert first.computed_jobs > 0
        assert second.computed_jobs == 0  # 4 probes = whole 4-point space

    def test_objective_validation(self):
        with pytest.raises(ExploreError, match="unknown objective"):
            run_search(_tiny_study(), objective="latency", budget=2)
        assert get_objective("ws").needs_alone
