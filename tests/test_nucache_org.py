"""Tests for the NUcache way organization (MainWays + DeliWays)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.basic import lru_factory
from repro.common.config import CacheGeometry, NUcacheConfig
from repro.common.errors import ConfigError
from repro.nucache.organization import NUCache

from conftest import ReferenceLRUCache


def _geometry(sets=4, ways=4):
    return CacheGeometry(size_bytes=sets * ways * 64, block_bytes=64, ways=ways)


def _nucache(sets=4, ways=4, deli=2, **overrides):
    defaults = dict(
        deli_ways=deli,
        num_candidate_pcs=4,
        epoch_misses=20,
        history_capacity=64,
        max_selected_pcs=2,
    )
    defaults.update(overrides)
    return NUCache(_geometry(sets, ways), NUcacheConfig(**defaults))


def _force_selection(cache, core, pc):
    """Make (core, pc) a selected candidate via controller internals."""
    controller = cache.controller
    controller._slot_of = {(core, pc): 0}
    controller._slot_keys = [(core, pc)]
    controller._selected = frozenset([0])
    controller.profiler.begin_epoch(1)


class TestBasicBehaviour:
    def test_miss_then_hit(self):
        cache = _nucache()
        assert not cache.access(0, 0, 0, False)
        assert cache.access(0, 0, 0, False)

    def test_rejects_deli_equal_ways(self):
        with pytest.raises(ConfigError):
            NUCache(_geometry(ways=4), NUcacheConfig(deli_ways=4, num_candidate_pcs=4,
                                                     max_selected_pcs=2))

    def test_unselected_victims_are_evicted(self):
        cache = _nucache(sets=1, ways=4, deli=2)  # 2 MainWays
        cache.access(0, 0, 0, False)
        cache.access(1, 0, 0, False)
        cache.access(2, 0, 0, False)  # evicts 0; nothing selected
        assert not cache.access(0, 0, 0, False)
        assert cache.stats.total.evictions >= 1

    def test_selected_victims_enter_deliways(self):
        cache = _nucache(sets=1, ways=4, deli=2)
        _force_selection(cache, 0, 0x40)
        cache.access(0, 0, 0x40, False)
        cache.access(1, 0, 0x99, False)
        cache.access(2, 0, 0x99, False)  # evicts 0 -> retained
        assert cache.retentions == 1
        assert cache.access(0, 0, 0x40, False)  # deli hit
        assert cache.deli_hits == 1

    def test_deli_hit_promotes_to_main(self):
        cache = _nucache(sets=1, ways=4, deli=2)
        _force_selection(cache, 0, 0x40)
        cache.access(0, 0, 0x40, False)
        cache.access(1, 0, 0x99, False)
        cache.access(2, 0, 0x99, False)  # 0 -> deli
        cache.access(0, 0, 0x40, False)  # deli hit -> promote
        nu_set = cache.set_of(0)
        assert 0 in nu_set.main_tag_to_way
        assert 0 not in nu_set.deli

    def test_deli_fifo_overflow_evicts_oldest(self):
        cache = _nucache(sets=1, ways=4, deli=2)
        _force_selection(cache, 0, 0x40)
        # Bring in three selected lines and push each out of main.
        for block in (0, 1, 2):
            cache.access(block, 0, 0x40, False)
        # main has 2 ways: 0 was already evicted into deli by block 2.
        cache.access(3, 0, 0x40, False)  # evicts 1 -> deli [0, 1]
        cache.access(4, 0, 0x40, False)  # evicts 2 -> deli [1, 2], 0 out
        assert not cache.access(0, 0, 0x40, False)

    def test_dirty_retained_line_writes_back_on_deli_eviction(self):
        cache = _nucache(sets=1, ways=4, deli=1)  # 3 MainWays + 1 DeliWay
        _force_selection(cache, 0, 0x40)
        cache.access(0, 0, 0x40, True)  # dirty
        cache.access(1, 0, 0x40, False)
        cache.access(2, 0, 0x40, False)
        cache.access(3, 0, 0x40, False)  # evicts 0 -> deli (dirty)
        cache.access(4, 0, 0x40, False)  # evicts 1 -> deli; 0 pushed out
        assert cache.stats.total.writebacks >= 1

    def test_write_hit_in_deli_marks_dirty(self):
        cache = _nucache(sets=1, ways=4, deli=2, deli_replacement="lru")
        _force_selection(cache, 0, 0x40)
        cache.access(0, 0, 0x40, False)
        cache.access(1, 0, 0x99, False)
        cache.access(2, 0, 0x99, False)  # 0 -> deli
        assert cache.access(0, 0, 0x40, True)  # write hit in deli
        nu_set = cache.set_of(0)
        assert nu_set.deli[0].dirty

    def test_occupancy_counts_both_structures(self):
        cache = _nucache(sets=1, ways=4, deli=2)
        _force_selection(cache, 0, 0x40)
        for block in (0, 1, 2):
            cache.access(block, 0, 0x40, False)
        assert cache.occupancy == 3  # 2 main + 1 deli

    def test_resident_blocks_reports_location(self):
        cache = _nucache(sets=1, ways=4, deli=2)
        _force_selection(cache, 0, 0x40)
        for block in (0, 1, 2):
            cache.access(block, 0, 0x40, False)
        locations = dict(cache.resident_blocks())
        assert locations[0] is True  # in deli
        assert locations[1] is False and locations[2] is False

    def test_occupancy_by_core(self):
        cache = _nucache(sets=2, ways=4, deli=2)
        cache.access(0, 0, 0, False)
        cache.access(1, 1, 0, False)
        assert cache.occupancy_by_core() == {0: 1, 1: 1}


class TestDeliLRUMode:
    def test_deli_hit_refreshes_instead_of_promoting(self):
        cache = _nucache(sets=1, ways=4, deli=2, deli_replacement="lru")
        _force_selection(cache, 0, 0x40)
        cache.access(0, 0, 0x40, False)
        cache.access(1, 0, 0x99, False)
        cache.access(2, 0, 0x99, False)  # 0 -> deli
        assert cache.access(0, 0, 0x40, False)  # hit, stays in deli
        nu_set = cache.set_of(0)
        assert 0 in nu_set.deli
        assert 0 not in nu_set.main_tag_to_way


class TestLRUEquivalence:
    """With deli_ways=0 NUcache must behave exactly like an LRU cache."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    def test_matches_lru_with_zero_deliways(self, blocks):
        nucache = _nucache(sets=4, ways=4, deli=0)
        reference = ReferenceLRUCache(num_sets=4, ways=4)
        for block in blocks:
            assert nucache.access(block, 0, block % 7, False) == reference.access(block)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    def test_nothing_selected_matches_mainways_lru(self, blocks):
        # With no PCs ever selected, NUcache is an M-way LRU cache.
        nucache = _nucache(sets=4, ways=4, deli=2, epoch_misses=10**9)
        reference = ReferenceLRUCache(num_sets=4, ways=2)
        for block in blocks:
            assert nucache.access(block, 0, 0, False) == reference.access(block)


class TestEpochIntegration:
    def test_selection_emerges_from_traffic(self):
        """A thrash-plus-stream pattern must select the loop PC online."""
        cache = _nucache(sets=4, ways=4, deli=2, epoch_misses=200,
                         history_capacity=256)
        loop_blocks = list(range(12))  # 3 lines/set: thrashes 2 MainWays
        stream_block = 1000
        for _ in range(3000):
            for block in loop_blocks:
                cache.access(block, 0, 0xA, False)
                cache.access(stream_block, 0, 0xB, False)
                stream_block += 1
            if (0, 0xA) in cache.controller.selected_keys():
                break
        assert (0, 0xA) in cache.controller.selected_keys()
        assert (0, 0xB) not in cache.controller.selected_keys()

    def test_remap_clears_stale_slots(self):
        cache = _nucache(sets=1, ways=4, deli=2)
        _force_selection(cache, 0, 0x40)
        cache.access(0, 0, 0x40, False)
        cache.controller.rotate(cache._remap_slots)
        nu_set = cache.set_of(0)
        way = nu_set.main_tag_to_way[0]
        line = nu_set.main_lines[way]
        # (0, 0x40) missed once; it stays a candidate, so the slot must
        # be remapped to a valid slot, not left stale.
        slot = cache.controller.slot_of(0, 0x40)
        assert line.pc_slot == slot

    def test_split_address_roundtrip(self):
        cache = _nucache(sets=4, ways=4)
        for block in (0, 3, 4, 17):
            index, tag = cache.split_address(block)
            assert (tag << 2) | index == block

    def test_selection_report_empty_initially(self):
        assert _nucache().selection_report() == []
