"""Tiny-scale smoke tests for the experiment drivers.

The benchmark harness runs each driver at realistic scale with shape
assertions; these tests only verify the drivers' *plumbing* (rows,
columns, summaries, determinism hooks) at the smallest useful trace
length, so a refactor that breaks a driver fails fast in the unit
suite.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig1_delinquent_pcs,
    fig2_nextuse_cdf,
    fig3_single_core,
    fig4_deliway_sweep,
    fig9_selection_ablation,
    fig10_hardware_ablations,
    fig12_prefetch,
    fig14_phases,
)

TINY = 15_000


class TestCharacterizationDrivers:
    def test_fig1_rows_and_summary(self):
        result = fig1_delinquent_pcs.run(accesses=TINY)
        assert len(result.rows) >= 14
        for row in result.rows:
            assert 0.0 <= row["top1"] <= row["top8"] <= 1.0
        assert "mean_top8_coverage" in result.summary

    def test_fig2_cdf_monotone(self):
        result = fig2_nextuse_cdf.run(accesses=TINY)
        for row in result.rows:
            cdf = [row[f"<= {edge}"] for edge in fig2_nextuse_cdf.BUCKET_EDGES]
            assert all(a <= b + 1e-9 for a, b in zip(cdf, cdf[1:])), row


class TestPolicyDrivers:
    def test_fig3_has_all_benchmarks(self):
        result = fig3_single_core.run(accesses=TINY)
        from repro.workloads.spec_like import benchmark_names

        assert {row["benchmark"] for row in result.rows} == set(benchmark_names())
        assert result.summary["gmean_speedup"] > 0

    def test_fig4_d0_is_lru(self):
        result = fig4_deliway_sweep.run(accesses=TINY)
        for row in result.rows[:-1]:
            assert row["D=0"] == pytest.approx(1.0, abs=1e-6)

    def test_fig9_row_tags(self):
        result = fig9_selection_ablation.run(accesses=TINY)
        tags = {row["ablation"] for row in result.rows}
        assert tags == {"selector", "epoch"}

    def test_fig10_row_tags(self):
        result = fig10_hardware_ablations.run(accesses=TINY)
        tags = {row["ablation"] for row in result.rows}
        assert tags == {"sampling", "history", "deli-hit"}


class TestExtensionDrivers:
    def test_fig12_grid_complete(self):
        result = fig12_prefetch.run(accesses=TINY)
        for row in result.rows:
            for prefetcher in fig12_prefetch.PREFETCHERS:
                assert f"{prefetcher}:gain" in row

    def test_fig14_three_configurations(self):
        result = fig14_phases.run(accesses=4 * TINY)
        assert len(result.rows) == 3
        assert result.rows[0]["configuration"] == "lru"
        assert result.summary["adaptive_vs_frozen"] > 0
