"""Tests for the access-pattern primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import WorkloadError
from repro.common.rng import make_rng
from repro.workloads.patterns import HotSpot, PointerChase, StridedLoop, UniformRandom


@pytest.fixture
def rng():
    return make_rng(1, "patterns-test")


class TestStridedLoop:
    def test_walks_with_stride(self, rng):
        loop = StridedLoop(base=0, region_bytes=256, stride=64)
        assert loop.generate(4, rng).tolist() == [0, 64, 128, 192]

    def test_wraps_at_region(self, rng):
        loop = StridedLoop(base=0, region_bytes=256, stride=64)
        loop.generate(4, rng)
        assert loop.generate(2, rng).tolist() == [0, 64]

    def test_base_offset(self, rng):
        loop = StridedLoop(base=1024, region_bytes=128, stride=64)
        assert loop.generate(2, rng).tolist() == [1024, 1088]

    def test_cursor_persists_across_calls(self, rng):
        loop = StridedLoop(base=0, region_bytes=4096, stride=64)
        first = loop.generate(3, rng)
        second = loop.generate(3, rng)
        assert second[0] == first[-1] + 64

    def test_zero_count(self, rng):
        loop = StridedLoop(base=0, region_bytes=256, stride=64)
        assert len(loop.generate(0, rng)) == 0

    def test_rejects_bad_stride(self):
        with pytest.raises(WorkloadError):
            StridedLoop(0, 256, stride=0)
        with pytest.raises(WorkloadError):
            StridedLoop(0, 250, stride=64)

    def test_rejects_negative_count(self, rng):
        with pytest.raises(WorkloadError):
            StridedLoop(0, 256, 64).generate(-1, rng)


class TestUniformRandom:
    def test_stays_in_region(self, rng):
        pattern = UniformRandom(base=4096, region_bytes=1024)
        addresses = pattern.generate(500, rng)
        assert (addresses >= 4096).all()
        assert (addresses < 4096 + 1024).all()

    def test_block_aligned(self, rng):
        pattern = UniformRandom(base=0, region_bytes=1024)
        assert (pattern.generate(100, rng) % 64 == 0).all()

    def test_covers_region(self, rng):
        pattern = UniformRandom(base=0, region_bytes=4 * 64)
        addresses = set(pattern.generate(200, rng).tolist())
        assert addresses == {0, 64, 128, 192}

    def test_rejects_sub_block_region(self):
        with pytest.raises(WorkloadError):
            UniformRandom(0, 32)


class TestPointerChase:
    def test_visits_every_block_once_per_lap(self, rng):
        pattern = PointerChase(base=0, region_bytes=8 * 64, rng=rng)
        lap = pattern.generate(8, rng)
        assert sorted(lap.tolist()) == [i * 64 for i in range(8)]

    def test_order_repeats_across_laps(self, rng):
        pattern = PointerChase(base=0, region_bytes=8 * 64, rng=rng)
        first = pattern.generate(8, rng).tolist()
        second = pattern.generate(8, rng).tolist()
        assert first == second

    def test_order_is_shuffled(self):
        rng = make_rng(1, "chase")
        pattern = PointerChase(base=0, region_bytes=64 * 64, rng=rng)
        lap = pattern.generate(64, rng).tolist()
        assert lap != sorted(lap)

    def test_rejects_empty_region(self, rng):
        with pytest.raises(WorkloadError):
            PointerChase(0, 32, rng)


class TestHotSpot:
    def test_stays_in_region(self, rng):
        pattern = HotSpot(base=128, region_bytes=4 * 64)
        addresses = pattern.generate(300, rng)
        assert (addresses >= 128).all()
        assert (addresses < 128 + 256).all()

    def test_skewed_toward_first_blocks(self, rng):
        pattern = HotSpot(base=0, region_bytes=64 * 64, skew=1.2)
        addresses = pattern.generate(3000, rng)
        first_block_share = np.mean(addresses == 0)
        assert first_block_share > 1.0 / 64 * 3  # well above uniform

    def test_rejects_bad_skew(self):
        with pytest.raises(WorkloadError):
            HotSpot(0, 256, skew=0)


class TestCommonValidation:
    def test_rejects_negative_base(self):
        with pytest.raises(WorkloadError):
            StridedLoop(-64, 256, 64)

    def test_rejects_zero_region(self):
        with pytest.raises(WorkloadError):
            UniformRandom(0, 0)
