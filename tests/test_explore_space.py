"""Tests for the declarative parameter-space model (repro.explore.space)."""

from __future__ import annotations

import pytest

from repro.explore.space import (
    Dimension,
    ExploreError,
    ParamSpace,
    choice,
    int_range,
    log_range,
)


class TestDimensionFactories:
    def test_int_range_inclusive_with_step(self):
        dim = int_range("deli_ways", 2, 12, step=2)
        assert dim.values == (2, 4, 6, 8, 10, 12)
        assert dim.kind == "int"

    def test_log_range_geometric(self):
        dim = log_range("epoch_misses", 2_500, 40_000)
        assert dim.values == (2_500, 5_000, 10_000, 20_000, 40_000)
        assert dim.kind == "log"

    def test_choice_preserves_order(self):
        dim = choice("selector", ("greedy", "topk", "all"))
        assert dim.values == ("greedy", "topk", "all")

    def test_empty_and_duplicate_values_rejected(self):
        with pytest.raises(ExploreError, match="empty"):
            int_range("deli_ways", 5, 2)
        with pytest.raises(ExploreError, match="duplicate"):
            Dimension("deli_ways", (2, 2))
        with pytest.raises(ExploreError, match="no values"):
            Dimension("deli_ways", ())

    def test_bad_step_and_factor_rejected(self):
        with pytest.raises(ExploreError, match="step"):
            int_range("deli_ways", 1, 4, step=0)
        with pytest.raises(ExploreError, match="factor"):
            log_range("epoch_misses", 100, 200, factor=1)

    def test_non_scalar_value_rejected(self):
        with pytest.raises(ExploreError, match="not a scalar"):
            Dimension("deli_ways", ((1, 2),))  # type: ignore[arg-type]


def _small_space() -> ParamSpace:
    return ParamSpace(
        [int_range("deli_ways", 2, 8, step=2), log_range("epoch_misses", 2_500, 20_000)],
        num_cores=2,
    )


class TestParamSpaceValidation:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ExploreError, match="not a NUcacheConfig parameter"):
            ParamSpace([choice("warp_drive", (1, 2))])

    def test_out_of_domain_value_rejected_at_declaration(self):
        # deli_ways must leave at least one MainWay in the 16-way LLC.
        with pytest.raises(ExploreError, match="deli_ways"):
            ParamSpace([int_range("deli_ways", 14, 20)], num_cores=2)

    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(ExploreError, match="duplicate"):
            ParamSpace([choice("deli_ways", (2,)), choice("deli_ways", (4,))])

    def test_empty_space_rejected(self):
        with pytest.raises(ExploreError, match="at least one dimension"):
            ParamSpace([])

    def test_point_error_catches_cross_dimension_violations(self):
        # Each value is valid alone (against the paper defaults), but
        # max_selected_pcs=24 with num_candidate_pcs=16 is jointly invalid.
        space = ParamSpace(
            [
                choice("num_candidate_pcs", (16, 32)),
                choice("max_selected_pcs", (8, 24)),
            ],
            num_cores=2,
        )
        ok = {"num_candidate_pcs": 32, "max_selected_pcs": 24}
        bad = {"num_candidate_pcs": 16, "max_selected_pcs": 24}
        assert space.point_error(ok) is None
        assert "max_selected_pcs" in str(space.point_error(bad))


class TestPointEncoding:
    def test_point_indices_round_trip(self):
        space = _small_space()
        for indices in space.iter_indices():
            point = space.point(indices)
            assert space.indices(point) == indices

    def test_size_and_shape(self):
        space = _small_space()
        assert space.shape == (4, 4)
        assert space.size == 16
        assert len(list(space.iter_indices())) == 16

    def test_bad_index_vector_rejected(self):
        space = _small_space()
        with pytest.raises(ExploreError, match="length"):
            space.point((0,))
        with pytest.raises(ExploreError, match="out of range"):
            space.point((0, 99))

    def test_bad_point_rejected(self):
        space = _small_space()
        with pytest.raises(ExploreError, match="do not match"):
            space.indices({"deli_ways": 2})
        with pytest.raises(ExploreError, match="not on dimension"):
            space.indices({"deli_ways": 3, "epoch_misses": 2_500})


class TestContentAddressing:
    def test_space_hash_is_stable(self):
        assert _small_space().space_hash() == _small_space().space_hash()

    def test_space_hash_tracks_content(self):
        base = _small_space()
        wider = ParamSpace(
            [int_range("deli_ways", 2, 10, step=2),
             log_range("epoch_misses", 2_500, 20_000)],
            num_cores=2,
        )
        reordered = ParamSpace(
            [log_range("epoch_misses", 2_500, 20_000),
             int_range("deli_ways", 2, 8, step=2)],
            num_cores=2,
        )
        assert base.space_hash() != wider.space_hash()
        assert base.space_hash() != reordered.space_hash()

    def test_describe_mentions_every_dimension(self):
        text = _small_space().describe()
        assert "deli_ways" in text and "epoch_misses" in text
