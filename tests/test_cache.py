"""Tests for CacheLine, CacheSet, SetAssociativeCache and the hierarchy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import (
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    LEVEL_MEMORY,
    PrivateHierarchy,
    SetAssociativeCache,
)
from repro.cache.line import NO_PC_SLOT, CacheLine
from repro.cache.replacement.basic import LRUPolicy, lru_factory
from repro.cache.set_ import CacheSet
from repro.common.config import CacheGeometry

from conftest import ReferenceLRUCache


class TestCacheLine:
    def test_starts_invalid(self):
        line = CacheLine()
        assert not line.valid
        assert line.pc_slot == NO_PC_SLOT

    def test_fill(self):
        line = CacheLine()
        line.fill(tag=7, core=2, pc=0x400, dirty=True)
        assert line.valid and line.dirty
        assert (line.tag, line.core, line.pc) == (7, 2, 0x400)
        assert line.pc_slot == NO_PC_SLOT

    def test_invalidate_clears(self):
        line = CacheLine()
        line.fill(tag=7, core=0, pc=0, dirty=True)
        line.invalidate()
        assert not line.valid and not line.dirty


class TestCacheSet:
    def _set(self, ways=4):
        return CacheSet(ways, LRUPolicy(ways))

    def test_find_miss(self):
        assert self._set().find(1) == -1

    def test_allocate_and_find(self):
        cache_set = self._set()
        assert cache_set.allocate(5, core=0, pc=0, is_write=False) is None
        assert cache_set.find(5) >= 0

    def test_fills_invalid_ways_first(self):
        cache_set = self._set(2)
        assert cache_set.allocate(1, 0, 0, False) is None
        assert cache_set.allocate(2, 0, 0, False) is None
        assert cache_set.occupancy == 2

    def test_eviction_returns_victim(self):
        cache_set = self._set(2)
        cache_set.allocate(1, 0, 0, False)
        cache_set.allocate(2, 0, 0, True)
        evicted = cache_set.allocate(3, 0, 0, False)
        assert evicted == (1, False)  # LRU victim, clean

    def test_eviction_reports_dirty(self):
        cache_set = self._set(1)
        cache_set.allocate(1, 0, 0, True)
        assert cache_set.allocate(2, 0, 0, False) == (1, True)

    def test_touch_write_sets_dirty(self):
        cache_set = self._set(2)
        cache_set.allocate(1, 0, 0, False)
        cache_set.touch(cache_set.find(1), core=0, is_write=True)
        assert cache_set.allocate(2, 0, 0, False) is None
        assert cache_set.allocate(3, 0, 0, False) == (1, True)

    def test_invalidate(self):
        cache_set = self._set(2)
        cache_set.allocate(1, 0, 0, False)
        assert cache_set.invalidate(1)
        assert cache_set.find(1) == -1
        assert not cache_set.invalidate(1)
        assert cache_set.occupancy == 0

    def test_valid_lines(self):
        cache_set = self._set(4)
        cache_set.allocate(1, 0, 0, False)
        cache_set.allocate(2, 0, 0, False)
        assert sorted(line.tag for line in cache_set.valid_lines()) == [1, 2]


class TestSetAssociativeCache:
    def _cache(self, sets=4, ways=2):
        geometry = CacheGeometry(size_bytes=sets * ways * 64, block_bytes=64, ways=ways)
        return SetAssociativeCache(geometry, lru_factory(), "test")

    def test_miss_then_hit(self):
        cache = self._cache()
        assert not cache.access(0, 0, 0, False)
        assert cache.access(0, 0, 0, False)

    def test_distinct_sets_do_not_conflict(self):
        cache = self._cache(sets=4, ways=1)
        assert not cache.access(0, 0, 0, False)
        assert not cache.access(1, 0, 0, False)
        assert cache.access(0, 0, 0, False)
        assert cache.access(1, 0, 0, False)

    def test_lru_eviction_within_set(self):
        cache = self._cache(sets=1, ways=2)
        cache.access(0, 0, 0, False)
        cache.access(1, 0, 0, False)
        cache.access(2, 0, 0, False)  # evicts 0
        assert not cache.access(0, 0, 0, False)

    def test_probe_does_not_disturb(self):
        cache = self._cache(sets=1, ways=2)
        cache.access(0, 0, 0, False)
        cache.access(1, 0, 0, False)
        for _ in range(5):
            assert cache.probe(0)
        cache.access(2, 0, 0, False)  # LRU is still 0
        assert not cache.probe(0)

    def test_invalidate(self):
        cache = self._cache()
        cache.access(0, 0, 0, False)
        assert cache.invalidate(0)
        assert not cache.probe(0)
        assert not cache.invalidate(0)

    def test_stats_per_core(self):
        cache = self._cache()
        cache.access(0, core=1, pc=0, is_write=False)
        cache.access(0, core=2, pc=0, is_write=False)
        assert cache.stats.core_stats(1).misses == 1
        assert cache.stats.core_stats(2).hits == 1

    def test_writeback_counting(self):
        cache = self._cache(sets=1, ways=1)
        cache.access(0, 0, 0, True)
        cache.access(1, 0, 0, False)
        assert cache.stats.total.writebacks == 1
        assert cache.stats.total.evictions == 1

    def test_split_address_roundtrip(self):
        cache = self._cache(sets=8, ways=2)
        for block in (0, 7, 8, 123):
            index, tag = cache.split_address(block)
            assert (tag << 3) | index == block

    def test_occupancy_and_valid_lines(self):
        cache = self._cache(sets=2, ways=2)
        for block in range(4):
            cache.access(block, core=block % 2, pc=0, is_write=False)
        assert cache.occupancy == 4
        assert len(list(cache.valid_lines())) == 4
        occupancy = cache.occupancy_by_core()
        assert occupancy == {0: 2, 1: 2}

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    def test_matches_reference_lru(self, blocks):
        cache = self._cache(sets=4, ways=4)
        reference = ReferenceLRUCache(num_sets=4, ways=4)
        for block in blocks:
            assert cache.access(block, 0, 0, False) == reference.access(block)

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 127), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = self._cache(sets=4, ways=2)
        for block in blocks:
            cache.access(block, 0, 0, False)
        assert cache.occupancy <= 8
        for cache_set in cache.sets:
            assert cache_set.occupancy <= 2


class TestPrivateHierarchy:
    def _parts(self):
        l1 = SetAssociativeCache(
            CacheGeometry(size_bytes=2 * 64, block_bytes=64, ways=1), lru_factory(), "l1"
        )
        l2 = SetAssociativeCache(
            CacheGeometry(size_bytes=8 * 64, block_bytes=64, ways=2), lru_factory(), "l2"
        )
        llc = SetAssociativeCache(
            CacheGeometry(size_bytes=32 * 64, block_bytes=64, ways=4), lru_factory(), "llc"
        )
        return PrivateHierarchy(l1, l2, core_id=0), llc

    def test_first_access_goes_to_memory(self):
        hierarchy, llc = self._parts()
        assert hierarchy.access(0, 0, False, llc) == LEVEL_MEMORY

    def test_second_access_hits_l1(self):
        hierarchy, llc = self._parts()
        hierarchy.access(0, 0, False, llc)
        assert hierarchy.access(0, 0, False, llc) == LEVEL_L1

    def test_l1_conflict_hits_l2(self):
        hierarchy, llc = self._parts()
        hierarchy.access(0, 0, False, llc)
        hierarchy.access(2, 0, False, llc)  # same L1 set (2 sets), evicts 0 from L1
        assert hierarchy.access(0, 0, False, llc) == LEVEL_L2

    def test_llc_catches_l2_victims(self):
        hierarchy, llc = self._parts()
        # L2 has 4 sets x 2 ways; blocks 0,4,8 collide in L2 set 0.
        for block in (0, 4, 8):
            hierarchy.access(block, 0, False, llc)
        assert hierarchy.access(0, 0, False, llc) == LEVEL_LLC
