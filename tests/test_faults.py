"""Chaos tests: the crash/timeout/corruption matrix.

Every test drives the scheduler through deterministic injected faults
(:mod:`repro.exec.faults`) and asserts the end state is byte-identical
to an undisturbed serial run — the resilience layer must be
observationally invisible.  Also covers result validation and the
store's quarantine path: a bad entry is never served and never deleted.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ExecError
from repro.exec import (
    FaultPlan,
    FaultyExecute,
    FaultyStore,
    InjectedFault,
    ResultStore,
    Scheduler,
    SimJob,
    execute_job,
    validate_result,
)
from repro.exec import context as exec_context
from repro.exec.faults import FAULTS_ENV_VAR, FAULTS_SEED_ENV_VAR

ACCESSES = 4_000


@pytest.fixture(autouse=True)
def _fresh_exec_context():
    exec_context.reset()
    yield
    exec_context.reset()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def _grid():
    return [
        SimJob.single(name, policy, ACCESSES)
        for name in ("hmmer_like", "art_like")
        for policy in ("lru", "nucache")
    ]


def _clean_results(batch):
    return [r.to_dict() for r in Scheduler(jobs=1).run(batch)]


# ----------------------------------------------------------------------
# FaultPlan mechanics
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_spec(self, tmp_path):
        plan = FaultPlan.parse("flake=0.5, crash=0.25,hang", scratch=str(tmp_path))
        assert plan.flake == 0.5
        assert plan.crash == 0.25
        assert plan.hang == 1.0
        assert plan.corrupt == 0.0
        assert plan.active()

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ExecError, match="unknown fault kind"):
            FaultPlan.parse("segfault=1.0")
        with pytest.raises(ExecError, match="bad fault rate"):
            FaultPlan.parse("flake=lots")
        with pytest.raises(ExecError, match="outside"):
            FaultPlan(flake=1.5)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV_VAR, "flake=0.5")
        monkeypatch.setenv(FAULTS_SEED_ENV_VAR, "9")
        plan = FaultPlan.from_env()
        assert plan.flake == 0.5
        assert plan.seed == 9

    def test_selection_is_deterministic_and_seeded(self, tmp_path):
        keys = [job.key() for job in _grid()]
        a = FaultPlan(flake=0.5, seed=1, scratch=str(tmp_path))
        b = FaultPlan(flake=0.5, seed=1, scratch=str(tmp_path))
        c = FaultPlan(flake=0.5, seed=2, scratch=str(tmp_path))
        picks = [a.selected("flake", key) for key in keys]
        assert picks == [b.selected("flake", key) for key in keys]
        assert picks != [c.selected("flake", key) for key in keys]

    def test_fire_is_once_per_kind_and_key(self, tmp_path):
        plan = FaultPlan(flake=1.0, crash=1.0, scratch=str(tmp_path))
        assert plan.fire("flake", "k1") is True
        assert plan.fire("flake", "k1") is False  # marker persists
        assert plan.fire("crash", "k1") is True  # independent per kind
        assert plan.fire("flake", "k2") is True

    def test_env_activates_scheduler_wrappers(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULTS_ENV_VAR, "flake=1.0")
        scheduler = exec_context.get_scheduler()
        assert isinstance(scheduler.execute, FaultyExecute)
        assert isinstance(scheduler.store, FaultyStore)
        monkeypatch.delenv(FAULTS_ENV_VAR)
        scheduler = exec_context.get_scheduler()
        assert scheduler.execute is execute_job
        assert isinstance(scheduler.store, ResultStore)


# ----------------------------------------------------------------------
# Injected faults: results must stay byte-identical to a clean run
# ----------------------------------------------------------------------


class TestChaosEquivalence:
    def test_flake_every_job_recovers_identically(self, store, tmp_path):
        batch = _grid()
        plan = FaultPlan(flake=1.0, seed=3, scratch=str(tmp_path / "markers"))
        scheduler = Scheduler(
            jobs=1, store=store, retries=1,
            execute=FaultyExecute(plan), backoff_base=0.001,
        )
        chaotic = scheduler.run(batch)
        assert scheduler.last_report.retried == len(batch)
        assert scheduler.last_report.failed == 0
        assert [r.to_dict() for r in chaotic] == _clean_results(batch)

    def test_flake_exhausting_retries_fails_cleanly(self, tmp_path):
        # Rate 1.0 with no marker reuse: a fresh scratch per attempt is
        # impossible, so instead deny retries entirely.
        plan = FaultPlan(flake=1.0, seed=3, scratch=str(tmp_path / "markers"))
        scheduler = Scheduler(
            jobs=1, retries=0, strict=False, execute=FaultyExecute(plan),
        )
        results = scheduler.run(_grid()[:1])
        # The single flake was absorbed... by the only attempt: failure.
        assert results == [None]
        assert scheduler.last_report.failed == 1
        assert "InjectedFault" in scheduler.last_outcomes[_grid()[0].key()]["error"]

    def test_inline_crash_degrades_to_exception(self, tmp_path):
        plan = FaultPlan(crash=1.0, seed=0, scratch=str(tmp_path / "markers"))
        job = _grid()[0]
        with pytest.raises(InjectedFault, match="inline"):
            FaultyExecute(plan)(job)
        # Second call runs clean (marker consumed the fault).
        assert FaultyExecute(plan)(job).to_dict() == execute_job(job).to_dict()

    def test_worker_crash_in_pool_recovers_identically(self, store, tmp_path):
        batch = _grid()
        plan = FaultPlan(crash=0.3, seed=13, scratch=str(tmp_path / "markers"))
        crashed = [job.key() for job in batch if plan.selected("crash", job.key())]
        # One crashing job: an innocent observer of the broken pool can
        # be charged at most once, so retries=2 always suffices.
        assert len(crashed) == 1, "seed must select exactly one crash"
        scheduler = Scheduler(
            jobs=2, store=store, retries=2,
            execute=FaultyExecute(plan), backoff_base=0.001,
        )
        chaotic = scheduler.run(batch)
        assert scheduler.last_report.failed == 0
        assert [r.to_dict() for r in chaotic] == _clean_results(batch)

    def test_hang_trips_timeout_then_recovers_identically(self, store, tmp_path):
        batch = _grid()[:2]
        plan = FaultPlan(
            hang=1.0, seed=0, hang_seconds=20.0,
            scratch=str(tmp_path / "markers"),
        )
        scheduler = Scheduler(
            jobs=2, store=store, timeout=1.5, retries=1,
            execute=FaultyExecute(plan), backoff_base=0.001,
        )
        chaotic = scheduler.run(batch)
        assert scheduler.last_report.failed == 0
        assert scheduler.last_report.retried >= 1
        assert [r.to_dict() for r in chaotic] == _clean_results(batch)

    def test_corrupted_store_entries_recompute_identically(self, store, tmp_path):
        batch = _grid()
        plan = FaultPlan(corrupt=1.0, seed=7, scratch=str(tmp_path / "markers"))
        first = Scheduler(jobs=1, store=FaultyStore(store, plan))
        baseline = [r.to_dict() for r in first.run(batch)]
        assert baseline == _clean_results(batch)

        # Every entry was damaged on write: the rerun must quarantine
        # them all, recompute, and still match byte for byte.
        second = Scheduler(jobs=1, store=store)
        recovered = [r.to_dict() for r in second.run(batch)]
        assert recovered == baseline
        assert second.last_report.cached == 0
        assert second.last_report.completed == len(batch)
        assert store.stats().quarantined == len(batch)

        # Clean entries were re-persisted; a third run is all hits.
        third = Scheduler(jobs=1, store=store)
        served = [r.to_dict() for r in third.run(batch)]
        assert served == baseline
        assert third.last_report.cached == len(batch)


# ----------------------------------------------------------------------
# Result validation and quarantine
# ----------------------------------------------------------------------


class TestValidation:
    def test_valid_result_passes(self):
        job = _grid()[0]
        result = execute_job(job)
        assert validate_result(result, job) == []
        assert result.validate(job) == []

    def test_violations_are_reported(self):
        job = _grid()[0]
        result = execute_job(job)
        result.cores[0].llc_misses = result.cores[0].llc_accesses + 1
        violations = validate_result(result, job)
        assert any("exceeds" in v for v in violations)
        result.cores[0].ipc = float("inf")
        assert any("finite" in v for v in validate_result(result, job))

    def test_job_consistency_checked(self):
        job = _grid()[0]
        other = SimJob.single("twolf_like", job.policy, ACCESSES)
        result = execute_job(job)
        assert any("expected" in v for v in validate_result(result, other))

    def test_scheduler_never_returns_invalid_result(self, store):
        def sick_execute(job):
            result = execute_job(job)
            result.cores[0].llc_misses = result.cores[0].llc_accesses + 1
            return result

        job = _grid()[0]
        scheduler = Scheduler(
            jobs=1, store=store, retries=1, strict=False,
            execute=sick_execute, backoff_base=0.001,
        )
        (result,) = scheduler.run([job])
        assert result is None
        assert scheduler.last_report.failed == 1
        assert "invalid result" in scheduler.last_outcomes[job.key()]["error"]
        # The invalid result must never have been persisted either.
        assert store.get(job) is None
        assert store.stats().entries == 0

    def test_store_quarantines_invalid_entry_on_read(self, store):
        job = _grid()[0]
        path = store.put(job, execute_job(job))
        from repro.exec.stores.base import inflate_entry

        payload = json.loads(inflate_entry(path.read_bytes()))
        core = payload["result"]["cores"][0]
        core["llc_misses"] = int(core["llc_accesses"]) + 1
        # Written back as v1 plain text: the reader accepts both codecs.
        path.write_text(json.dumps(payload), encoding="utf-8")

        assert store.get(job) is None  # never served
        assert not path.exists()  # moved aside...
        quarantined = list(store.quarantined_entries())
        assert len(quarantined) == 1  # ...not deleted
        reason = quarantined[0].with_name(quarantined[0].name + ".reason")
        assert "exceeds" in reason.read_text(encoding="utf-8")
        assert store.stats().quarantined == 1

    def test_store_quarantines_truncated_entry(self, store):
        job = _grid()[0]
        path = store.put(job, execute_job(job))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert store.get(job) is None
        assert store.stats().quarantined == 1

    def test_contains_agrees_with_get_for_bad_entries(self, store):
        job = _grid()[0]
        path = store.put(job, execute_job(job))
        assert job in store
        path = store.put(job, execute_job(job))
        path.write_text("{ not json", encoding="utf-8")
        assert job not in store  # delegates to read-and-validate
        assert store.get(job) is None
