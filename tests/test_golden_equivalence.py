"""Golden equivalence tests for the fast-path access kernel.

The hot-path restructuring (slot-array :class:`CacheSet`, inlined LRU
stack operations, the engine's uninstrumented loop) is only legal if it
is *semantics-preserving*: every simulated number must be bit-identical
to the pre-optimization engine.  These tests pin that equivalence
against artifacts captured from the unoptimized kernel:

* ``tests/golden/simresults.json`` — ``SimResult.to_dict()`` payloads
  for 13 runs spanning every hot path (plain policies, NUcache, RRIP/
  SHiP/DIP families, UCP and the partitioned hybrid, prefetching, the
  bandwidth memory model).
* ``tests/golden/fig3_fig5_scale05.txt`` — full CLI stdout of
  ``REPRO_SCALE=0.05 run fig3 fig5``.
* Three pinned :meth:`SimJob.key` hashes — a semantics-preserving
  refactor must not bump :data:`~repro.exec.job.ENGINE_VERSION` or
  otherwise move results in the content-addressed store.

The same payload assertions run twice: once on the scalar engine and
once with ``REPRO_ENGINE=vector``, pinning the vector backend to the
identical golden bytes (see ``tests/test_vector_engine.py`` for the
kernel- and engine-level fuzzing behind that guarantee).

If a change legitimately alters simulated numbers, recapture the golden
files (see ``docs/benchmarking.md``) *and* bump ``ENGINE_VERSION`` —
these tests failing together with a forgotten version bump is exactly
the bug they exist to catch.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.exec.job import ENGINE_VERSION, SimJob
from repro.sim.runner import run_mix, run_single, run_workload

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Golden runs: key -> thunk producing the SimResult.
_SINGLE_POLICIES = ["lru", "nucache", "srrip", "ship", "dip", "sdbp"]
_MIX_POLICIES = ["lru", "nucache", "tadip", "drrip", "ucp", "nucache-ucp"]


def _golden_payloads() -> dict:
    with open(GOLDEN_DIR / "simresults.json", "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestSimResultGolden:
    """Every simulated payload matches the pre-optimization engine."""

    @pytest.mark.parametrize("policy", _SINGLE_POLICIES)
    def test_single_runs_byte_identical(self, policy):
        golden = _golden_payloads()[f"single:art_like:{policy}"]
        result = run_single("art_like", policy, 12_000, 20110212)
        assert result.to_dict() == golden

    @pytest.mark.parametrize("policy", _MIX_POLICIES)
    def test_mix_runs_byte_identical(self, policy):
        golden = _golden_payloads()[f"mix:mix2_1:{policy}"]
        result = run_mix("mix2_1", policy, 12_000, 20110212)
        assert result.to_dict() == golden

    def test_prefetch_bandwidth_run_byte_identical(self):
        golden = _golden_payloads()["workload:stride-bandwidth:nucache"]
        result = run_workload(
            ["art_like", "mcf_like"], "nucache", None, 12_000, 7, 0.25,
            "stride", "bandwidth",
        )
        assert result.to_dict() == golden


class TestSimResultGoldenVectorBackend:
    """The vector backend reproduces the same golden payloads.

    Same runs as :class:`TestSimResultGolden`, but with
    ``REPRO_ENGINE=vector`` so :func:`repro.sim.vector.make_engine`
    selects :class:`~repro.sim.vector.VectorEngine`.  Plain-LRU runs
    exercise the fully vectorized path; NUcache/RRIP/partitioned runs
    exercise the hybrid path; either way the payload must stay
    byte-identical to the scalar capture.
    """

    @pytest.fixture(autouse=True)
    def _vector_backend(self, monkeypatch):
        from repro.sim.vector import ENGINE_ENV

        monkeypatch.setenv(ENGINE_ENV, "vector")

    @pytest.mark.parametrize("policy", _SINGLE_POLICIES)
    def test_single_runs_byte_identical(self, policy):
        golden = _golden_payloads()[f"single:art_like:{policy}"]
        result = run_single("art_like", policy, 12_000, 20110212)
        assert result.to_dict() == golden

    @pytest.mark.parametrize("policy", _MIX_POLICIES)
    def test_mix_runs_byte_identical(self, policy):
        golden = _golden_payloads()[f"mix:mix2_1:{policy}"]
        result = run_mix("mix2_1", policy, 12_000, 20110212)
        assert result.to_dict() == golden

    def test_prefetch_bandwidth_run_byte_identical(self):
        golden = _golden_payloads()["workload:stride-bandwidth:nucache"]
        result = run_workload(
            ["art_like", "mcf_like"], "nucache", None, 12_000, 7, 0.25,
            "stride", "bandwidth",
        )
        assert result.to_dict() == golden


class TestStoreKeyStability:
    """Content-addressed store keys survive the refactor unchanged."""

    def test_engine_version_not_bumped(self):
        assert ENGINE_VERSION == 1

    def test_pinned_job_keys(self):
        assert SimJob.mix("mix2_1", "nucache", 50_000).key() == (
            "a8845177ceab456cbb1561e5b83e955a0cc35551abd1cff18380deb1ecec0c58"
        )
        assert SimJob.alone("art_like", 4, 50_000).key() == (
            "10ef1f7af280eb66b85b195e5588be84869b0c945e90a57652ec4da232d92452"
        )
        assert SimJob.single("art_like", "nucache", 20_000, deli_ways=4).key() == (
            "5ca17eb969a2f43e72347575488368bdad881c0e03fbb940a5e85c1182cf4e70"
        )


@pytest.mark.slow
class TestFigureStdoutGolden:
    """fig3 + fig5 CLI stdout is byte-identical to the captured run."""

    def test_fig3_fig5_stdout(self, monkeypatch, tmp_path, capsys):
        from repro.cli import main
        from repro.exec import context as exec_context

        monkeypatch.setenv("REPRO_SCALE", "0.05")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        exec_context.reset()
        try:
            assert main(["run", "fig3", "fig5"]) == 0
        finally:
            exec_context.reset()
        out = capsys.readouterr().out
        golden = (GOLDEN_DIR / "fig3_fig5_scale05.txt").read_text(encoding="utf-8")
        assert out == golden


def test_golden_artifacts_exist():
    """The captured artifacts ship with the repo (guards against loss)."""
    assert (GOLDEN_DIR / "simresults.json").is_file()
    assert (GOLDEN_DIR / "fig3_fig5_scale05.txt").is_file()
    assert os.path.getsize(GOLDEN_DIR / "simresults.json") > 1_000
