"""Tests for the synthetic benchmark generator and the catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import WorkloadError
from repro.workloads.spec_like import (
    benchmark,
    benchmark_class,
    benchmark_names,
    benchmarks_in_class,
    catalog,
)
from repro.workloads.synthetic import BenchmarkSpec, StreamSpec, generate_trace


def _spec(streams=None, name="bench"):
    if streams is None:
        streams = (
            StreamSpec("loop", region_bytes=4096, weight=0.5, num_pcs=2),
            StreamSpec("hot", region_bytes=1024, weight=0.5),
        )
    return BenchmarkSpec(name, tuple(streams))


class TestStreamSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(WorkloadError):
            StreamSpec("zigzag", 1024, 0.5)

    def test_rejects_zero_weight(self):
        with pytest.raises(WorkloadError):
            StreamSpec("loop", 1024, 0.0)

    def test_rejects_zero_pcs(self):
        with pytest.raises(WorkloadError):
            StreamSpec("loop", 1024, 0.5, num_pcs=0)

    def test_rejects_bad_write_fraction(self):
        with pytest.raises(WorkloadError):
            StreamSpec("loop", 1024, 0.5, write_fraction=1.5)


class TestBenchmarkSpec:
    def test_rejects_empty_streams(self):
        with pytest.raises(WorkloadError):
            BenchmarkSpec("b", ())

    def test_weights_normalized(self):
        spec = _spec((
            StreamSpec("loop", 1024, 2.0),
            StreamSpec("hot", 1024, 2.0),
        ))
        assert np.allclose(spec.weights, [0.5, 0.5])


class TestGenerateTrace:
    def test_deterministic(self):
        spec = _spec()
        a = generate_trace(spec, 1000, seed=5)
        b = generate_trace(spec, 1000, seed=5)
        assert (a.addresses == b.addresses).all()
        assert (a.pcs == b.pcs).all()
        assert (a.is_write == b.is_write).all()

    def test_seed_changes_trace(self):
        spec = _spec()
        a = generate_trace(spec, 1000, seed=5)
        b = generate_trace(spec, 1000, seed=6)
        assert not (a.addresses == b.addresses).all()

    def test_weights_approximately_respected(self):
        spec = _spec((
            StreamSpec("loop", 4096, 0.8),
            StreamSpec("hot", 1024, 0.2),
        ))
        trace = generate_trace(spec, 20_000, seed=1)
        loop_share = np.mean(trace.pcs < 2 * (1 << 20))
        assert 0.75 < loop_share < 0.85

    def test_streams_have_disjoint_regions_and_pcs(self):
        spec = _spec()
        trace = generate_trace(spec, 5000, seed=2)
        stream_of_pc = trace.pcs // (1 << 20)
        stream_of_addr = trace.addresses >> 34
        assert (stream_of_pc == stream_of_addr).all()

    def test_num_pcs_distinct(self):
        spec = _spec((StreamSpec("loop", 4096, 1.0, num_pcs=3),))
        trace = generate_trace(spec, 3000, seed=3)
        assert trace.unique_pcs() == 3

    def test_write_fraction(self):
        spec = _spec((StreamSpec("loop", 4096, 1.0, write_fraction=0.5),))
        trace = generate_trace(spec, 10_000, seed=4)
        assert 0.45 < trace.is_write.mean() < 0.55

    def test_rejects_zero_accesses(self):
        with pytest.raises(WorkloadError):
            generate_trace(_spec(), 0)

    def test_instruction_gap_propagates(self):
        spec = BenchmarkSpec("b", (StreamSpec("hot", 1024, 1.0),), instruction_gap=7)
        assert generate_trace(spec, 10, seed=1).instruction_gap == 7


class TestCatalog:
    def test_all_benchmarks_generate(self):
        for name in benchmark_names():
            trace = generate_trace(benchmark(name), 2000, seed=1)
            assert len(trace) == 2000

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            benchmark("spec2027_like")

    def test_classes_cover_catalog(self):
        for name in benchmark_names():
            assert benchmark_class(name) in {
                "delinquent", "streaming", "irregular", "friendly", "partition",
            }

    def test_class_lookup(self):
        assert "art_like" in benchmarks_in_class("delinquent")
        with pytest.raises(WorkloadError):
            benchmarks_in_class("mysterious")

    def test_catalog_rows(self):
        rows = catalog()
        assert len(rows) == len(benchmark_names())
        assert all(len(row) == 3 for row in rows)

    def test_expected_population(self):
        names = benchmark_names()
        assert len(names) >= 14
        assert "art_like" in names and "swim_like" in names
